//! Umbrella crate for the Anubis (ISCA'19) reproduction workspace.
//!
//! This root package exists to host the workspace-level `examples/` and
//! `tests/` directories; its library target simply re-exports the member
//! crates so examples can `use anubis_repro::...` or the crates directly.

pub use anubis;
pub use anubis_cache;
pub use anubis_crypto;
pub use anubis_itree;
pub use anubis_nvm;
pub use anubis_sim;
pub use anubis_workloads;
