//! Serving-layer walkthrough: handshake, durable writes over the wire,
//! then a *forced recovery episode* observed from the client side —
//! degraded reads from the last verified state, typed `Degraded` write
//! rejections, and the return to full service once the supervisor's
//! ladder finishes.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! The example starts an in-process [`anubis_server::Server`] with chaos
//! injection enabled (so it can corrupt its own device image on
//! request); a real deployment runs `anubis_serve` as a daemon and
//! never sets `ANUBIS_SERVE_CHAOS`.

use anubis_server::{
    ClientError, Inject, ServeClient, ServeConfig, ServeError, ServeMode, Server, TenantFamily,
    TenantSpec,
};
use std::time::{Duration, Instant};

fn payload(tag: u8) -> [u8; 64] {
    let mut b = [0u8; 64];
    for (i, slot) in b.iter_mut().enumerate() {
        *slot = tag ^ (i as u8);
    }
    b
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. An in-process two-tenant server on an ephemeral port. ------
    let dir = std::env::temp_dir().join(format!("anubis-serve-example-{}", std::process::id()));
    let cfg = ServeConfig {
        data_dir: dir.clone(),
        tenants: vec![
            TenantSpec::new("alpha", "alpha-token", TenantFamily::BonsaiAgitPlus),
            TenantSpec::new("beta", "beta-token", TenantFamily::SgxAsit),
        ],
        chaos: true, // unlocks the Inject opcode for the forced episode
        ..ServeConfig::default()
    };
    let server = Server::start(cfg)?;
    let addr = server.local_addr();
    println!(
        "server listening on {addr} (domains under {})",
        dir.display()
    );

    // -- 2. Handshake: version + tenant + token, session in return. ----
    let mut alpha = ServeClient::connect(addr, "alpha", "alpha-token")?;
    println!(
        "alpha: session {:#x}, mode at hello {:?}",
        alpha.session(),
        alpha.mode_at_hello()
    );
    match ServeClient::connect(addr, "alpha", "wrong-token").err() {
        Some(ClientError::Server(ServeError::AuthFailed)) => {
            println!("alpha: wrong token rejected with typed AuthFailed");
        }
        other => println!("alpha: unexpected rejection shape: {other:?}"),
    }

    // -- 3. Durable writes and reads over the wire. --------------------
    for addr_line in 0..8u64 {
        alpha.write(addr_line, payload(addr_line as u8), 500)?;
    }
    let (data, mode) = alpha.read(3, 500)?;
    assert_eq!(data, payload(3));
    println!("alpha: 8 lines written + read back (mode {mode:?})");
    // Drain the write-pending queue so the device image — not the WPQ's
    // read-through — backs the next reads; the forced corruption below
    // must hit persisted state to be detectable.
    alpha.flush()?;

    // -- 4. Force a recovery episode. ----------------------------------
    // Slow the ladder down so the degraded window is observable, then
    // corrupt a data line on the device (a bit pair in one 64-bit word —
    // a single flip would be silently ECC-corrected).
    alpha.inject(Inject::RecoveryStall { ms: 400 })?;
    alpha.inject(Inject::CorruptLine { addr: 5, bit: 9 })?;
    match alpha.read(5, 500) {
        Err(ClientError::Server(ServeError::Integrity { .. })) => {
            println!("alpha: tampered read -> typed Integrity, tenant entered recovery");
        }
        other => println!("alpha: unexpected tampered-read result: {other:?}"),
    }

    // -- 5. The degraded window, from the client's seat. ---------------
    // Reads still answer — from the last verified state, flagged by the
    // serving mode — while writes fail fast with a typed Degraded.
    let (data, mode) = alpha.read(3, 500)?;
    assert_eq!(data, payload(3));
    println!("alpha: degraded read of line 3 served from verified state (mode {mode:?})");
    match alpha.write(6, payload(0x66), 500) {
        Err(ClientError::Server(ServeError::Degraded { mode })) => {
            println!("alpha: write during recovery -> typed Degraded (mode {mode:?})");
        }
        other => println!("alpha: unexpected degraded-write result: {other:?}"),
    }

    // -- 6. Wait for the ladder, then full service again. --------------
    let started = Instant::now();
    loop {
        let stats = alpha.stats()?;
        if stats.mode == ServeMode::Full.code() {
            println!(
                "alpha: back to Full after {:?} (recoveries {}, degraded reads {}, \
                 degraded writes {}, last outcome {:?})",
                started.elapsed(),
                stats.recoveries,
                stats.degraded_reads,
                stats.degraded_writes,
                stats.last_outcome
            );
            break;
        }
        if started.elapsed() > Duration::from_secs(20) {
            return Err("tenant never returned to full service".into());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    alpha.write(6, payload(0x66), 500)?;
    let (data, _) = alpha.read(6, 500)?;
    assert_eq!(data, payload(0x66));
    println!("alpha: post-recovery write + read verified");

    // -- 7. Tenants are isolated domains. ------------------------------
    // The second tenant (an SGX/ASIT domain) never noticed the episode.
    let mut beta = ServeClient::connect(addr, "beta", "beta-token")?;
    beta.write(1, payload(0xB1), 500)?;
    let (data, mode) = beta.read(1, 500)?;
    assert_eq!(data, payload(0xB1));
    println!("beta: unaffected throughout (mode {mode:?})");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("done: every failure above was a typed response, never a hang");
    Ok(())
}
