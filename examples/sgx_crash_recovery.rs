//! SGX-style tree recovery with ASIT — the case no pre-Anubis scheme can
//! handle.
//!
//! The parallelizable tree stores a counter-plus-MAC per node where each
//! MAC covers the node's counters *and one counter in its parent*. Lose a
//! dirty interior node in a crash and the chain of custody from the
//! on-chip top node is broken forever — leaves alone cannot rebuild it.
//! This demo shows (1) write-back failing to recover, (2) ASIT restoring
//! the exact metadata-cache state from the integrity-protected Shadow
//! Table, and (3) tamper detection on both the Shadow Table and memory.
//!
//! ```sh
//! cargo run --example sgx_crash_recovery
//! ```

use anubis::{AnubisConfig, DataAddr, MemoryController, RecoveryError, SgxController, SgxScheme};
use anubis_nvm::Block;

fn workload(memory: &mut SgxController) {
    for i in 0..300u64 {
        memory
            .write(DataAddr::new(i * 7 % 1000), Block::filled(i as u8))
            .expect("write");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = AnubisConfig::small_test();

    // 1. Plain write-back caching: after losing dirty interior nodes, the
    //    tree is unrecoverable — exactly the paper's §3 motivation.
    let mut wb = SgxController::new(SgxScheme::WriteBack, &config);
    workload(&mut wb);
    wb.crash();
    match wb.recover() {
        Err(RecoveryError::SchemeCannotRecover { reason }) => {
            println!("write-back after crash: UNRECOVERABLE\n  ({reason})\n");
        }
        other => panic!("expected structural failure, got {other:?}"),
    }

    // 2. ASIT: the Shadow Table mirrors the metadata cache in NVM, its
    //    integrity anchored by SHADOW_TREE_ROOT on-chip. Recovery splices
    //    counters/MACs back and verifies every node (Algorithm 2).
    let mut asit = SgxController::new(SgxScheme::Asit, &config);
    workload(&mut asit);
    asit.crash();
    let report = asit.recover()?;
    println!(
        "ASIT recovery: {} nodes restored from the Shadow Table, {} ops \
         (≈ {:.6} s at 100 ns/op)",
        report.nodes_fixed,
        report.total_ops(),
        report.estimated_secs()
    );
    for i in 0..300u64 {
        let addr = i * 7 % 1000;
        let last = (0..300u64).filter(|j| j * 7 % 1000 == addr).max().unwrap();
        assert_eq!(asit.read(DataAddr::new(addr))?, Block::filled(last as u8));
    }
    println!("all data verified after ASIT recovery ✓\n");

    // 3. Attack the Shadow Table between crash and recovery: the on-chip
    //    SHADOW_TREE_ROOT catches it.
    let mut victim = SgxController::new(SgxScheme::Asit, &config);
    workload(&mut victim);
    victim.crash();
    let st0 = victim.layout().st_slot(0);
    let mut target = st0;
    for s in 0..victim.layout().st_slots() {
        let a = victim.layout().st_slot(s);
        if !victim.domain().device().peek(a).is_zeroed() {
            target = a;
            break;
        }
    }
    victim.domain_mut().device_mut().tamper_flip_bit(target, 3);
    match victim.recover() {
        Err(RecoveryError::ShadowTableTampered) => {
            println!("tampered Shadow Table: DETECTED by SHADOW_TREE_ROOT ✓");
        }
        other => panic!("expected shadow-table detection, got {other:?}"),
    }
    Ok(())
}
