//! Quickstart: encrypted, integrity-protected, *recoverable* NVM in a few
//! lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController};
use anubis_nvm::Block;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small configuration so the demo runs instantly; `paper()` gives
    // the ISCA'19 Table 1 system (16 GiB PCM, 256 KiB metadata caches).
    let config = AnubisConfig::small_test();

    // AGIT-Plus: Osiris stop-loss counters + shadow tables updated on
    // first modification — the paper's best general-tree scheme.
    let mut memory = BonsaiController::new(BonsaiScheme::AgitPlus, &config);

    // Writes are encrypted (counter mode, split counters), MACed, and the
    // 8-ary Merkle tree over the counters is updated up to the on-chip
    // root. All of it crash-atomically via the persistent registers.
    for i in 0..100u64 {
        memory.write(DataAddr::new(i), Block::filled(i as u8))?;
    }
    println!("wrote 100 lines; root = {:?}", memory.root());

    // Power failure! Caches (counters + tree nodes) are volatile and lost.
    memory.crash();
    println!("crash: metadata caches lost, WPQ flushed by ADR");

    // Recovery, Algorithm 1: scan the shadow tables, Osiris-fix only the
    // tracked counters, rebuild only the tracked tree nodes, verify the
    // root. O(cache size), not O(memory size).
    let report = memory.recover()?;
    println!(
        "recovered: {} counters fixed, {} nodes rebuilt, {} ops -> {:.6} s at 100 ns/op",
        report.counters_fixed,
        report.nodes_fixed,
        report.total_ops(),
        report.estimated_secs()
    );

    // Everything reads back, decrypted and verified.
    for i in 0..100u64 {
        assert_eq!(memory.read(DataAddr::new(i))?, Block::filled(i as u8));
    }
    println!("all 100 lines verified after recovery ✓");
    Ok(())
}
