//! Sweep recovery time across memory capacities and cache sizes —
//! the paper's Figures 5 and 12 as one program, mixing the analytical
//! model (terabyte capacities) with *executed* recoveries (miniature
//! capacities) to show they agree in shape.
//!
//! ```sh
//! cargo run --release --example recovery_time_sweep
//! ```

use anubis::recovery::time;
use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::Block;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- Osiris full recovery (analytical, O(memory)) --");
    for shift in [34u32, 37, 40, 43] {
        let bytes = 1u64 << shift;
        println!(
            "  {:>8} GB -> {:>10.1} s",
            bytes >> 30,
            time::osiris_full_secs(bytes, 4)
        );
    }

    println!("\n-- Anubis recovery (analytical, O(cache), independent of capacity) --");
    for kb in [256u64, 1024, 4096] {
        println!(
            "  {:>5} KB caches -> AGIT {:>7.4} s | ASIT {:>7.4} s (any memory size)",
            kb,
            time::agit_secs(kb << 10, kb << 10, 8 << 40),
            time::asit_secs(2 * (kb << 10)),
        );
    }

    println!("\n-- Executed recoveries (miniature memory, real crash + repair) --");
    for kb in [4usize, 8, 16] {
        let config = AnubisConfig::small_test().with_cache_bytes(kb << 10);

        let mut agit = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
        for i in 0..2_000u64 {
            agit.write(DataAddr::new(i * 13 % 8000), Block::filled(i as u8))?;
        }
        agit.crash();
        let agit_report = agit.recover()?;

        let mut asit = SgxController::new(SgxScheme::Asit, &config);
        for i in 0..2_000u64 {
            asit.write(DataAddr::new(i * 13 % 8000), Block::filled(i as u8))?;
        }
        asit.crash();
        let asit_report = asit.recover()?;

        println!(
            "  {kb:>2} KB caches -> AGIT {:>6} ops ({:.6} s) | ASIT {:>6} ops ({:.6} s)",
            agit_report.total_ops(),
            agit_report.estimated_secs(),
            asit_report.total_ops(),
            asit_report.estimated_secs(),
        );
    }
    println!("\nrecovery work tracks the cache size in both models ✓");
    Ok(())
}
