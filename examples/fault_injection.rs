//! Demonstrates the fault-injection subsystem end to end: cut power in
//! the middle of a single write, tear a block, flip bits — and watch the
//! controllers recover or detect, never lie.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController};
use anubis_nvm::{Block, FaultPlan};
use anubis_sim::{power_cut_sweep, run_with_fault};

fn main() {
    let cfg = AnubisConfig::small_test();

    // --- 1. A single intra-op power cut, by hand. -----------------------
    let mut mem = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
    mem.write(DataAddr::new(1), Block::filled(0xA1)).unwrap();
    let before = mem.domain().persist_writes();

    // Arm: power dies on the very next counted device-level write — i.e.
    // somewhere *inside* the next controller op, not between ops.
    mem.domain_mut()
        .arm_fault(FaultPlan::power_cut_after(before));
    let err = mem
        .write(DataAddr::new(2), Block::filled(0xB2))
        .unwrap_err();
    println!("mid-write fault surfaced as : {err}");
    assert!(err.is_power_loss());

    mem.crash();
    let report = mem.recover().expect("power cuts always recover");
    println!(
        "recovered                   : {} REDO write(s), {} NVM reads",
        report.redo_writes, report.nvm_reads
    );
    assert_eq!(mem.read(DataAddr::new(1)).unwrap(), Block::filled(0xA1));
    println!("acknowledged write intact   : addr 1 == 0xA1…\n");

    // --- 2. Exhaustive sweep: cut power after EVERY device write. -------
    let script: Vec<(bool, u64)> = (0..48u64).map(|i| (i % 3 != 2, (i * 37) % 300)).collect();
    for scheme in [
        BonsaiScheme::StrictPersist,
        BonsaiScheme::AgitRead,
        BonsaiScheme::AgitPlus,
    ] {
        let r = power_cut_sweep(|| BonsaiController::new(scheme, &cfg), &script, 1);
        println!(
            "{:>16}: {} intra-op crash points, {} recovered, {} detected",
            r.scheme, r.injection_points, r.recovered, r.detected
        );
    }

    // --- 3. Torn write: detection-only territory. -----------------------
    let verdict = run_with_fault(
        &|| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
        &script,
        FaultPlan::torn_write_after(40, 3),
    );
    println!("\ntorn write at index 40      : {verdict:?} (recovered clean or typed error)");

    // --- 4. Bit flips: SEC-DED repairs one, reports two. ----------------
    let mut mem = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
    mem.write(DataAddr::new(7), Block::filled(0x7E)).unwrap();
    mem.shutdown_flush().unwrap();
    let dev = mem.layout().data_addr(DataAddr::new(7));
    mem.domain_mut().device_mut().tamper_flip_bit(dev, 200);
    assert_eq!(mem.read(DataAddr::new(7)).unwrap(), Block::filled(0x7E));
    println!(
        "1-bit flip on data          : transparently corrected ({} word repaired)",
        mem.ecc_corrections()
    );
    mem.domain_mut().device_mut().tamper_flip_bit(dev, 201);
    let err = mem.read(DataAddr::new(7)).unwrap_err();
    println!("2-bit flip on data          : {err}");
    assert!(err.is_detected_corruption());

    println!("\nall fault classes behaved: recover, repair, or typed detection — never wrong data");
}
