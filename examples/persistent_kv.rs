//! A tiny persistent key-value store on top of the secure memory — the
//! paper's motivating scenario (§1): "an in-memory database system, where
//! a crash occurs right after a transaction is committed. The whole
//! Merkle Tree must be recovered first to verify integrity before
//! completing any new transactions."
//!
//! The store keeps fixed-size records in data lines and commits each put
//! before acknowledging. We crash it mid-workload and show that every
//! acknowledged put survives — and that recovery takes O(cache), not
//! O(memory).
//!
//! ```sh
//! cargo run --example persistent_kv
//! ```

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemError, MemoryController};
use anubis_nvm::Block;

/// A record: 8-byte key, 48-byte value, 8-byte checksum-ish tag.
struct KvStore {
    memory: BonsaiController,
    slots: u64,
}

impl KvStore {
    fn new(memory: BonsaiController) -> Self {
        let slots = memory.layout().data_blocks();
        KvStore { memory, slots }
    }

    fn slot_of(&self, key: u64) -> DataAddr {
        // Open addressing would need probes; for the demo, direct-map.
        DataAddr::new(key % self.slots)
    }

    /// Stores `value` under `key`. When this returns, the put is durable:
    /// the data line, its counter and the tree update all committed
    /// atomically through the persistent registers.
    fn put(&mut self, key: u64, value: &[u8; 48]) -> Result<(), MemError> {
        let mut block = Block::zeroed();
        block.set_word(0, key);
        block.as_bytes_mut()[8..56].copy_from_slice(value);
        block.set_word(7, key.wrapping_mul(0x9E37_79B9_7F4A_7C15)); // tag
        self.memory.write(self.slot_of(key), block)
    }

    /// Fetches the value for `key`, verifying decryption, the data MAC
    /// and the counter's Merkle path.
    fn get(&mut self, key: u64) -> Result<Option<[u8; 48]>, MemError> {
        let block = self.memory.read(self.slot_of(key))?;
        if block.word(0) != key || block.word(7) != key.wrapping_mul(0x9E37_79B9_7F4A_7C15) {
            return Ok(None);
        }
        let mut out = [0u8; 48];
        out.copy_from_slice(&block.as_bytes()[8..56]);
        Ok(Some(out))
    }
}

fn value_for(i: u64) -> [u8; 48] {
    let mut v = [0u8; 48];
    for (j, b) in v.iter_mut().enumerate() {
        *b = (i as u8).wrapping_add(j as u8);
    }
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = AnubisConfig::small_test();
    let mut store = KvStore::new(BonsaiController::new(BonsaiScheme::AgitPlus, &config));

    // Commit 500 transactions.
    for i in 0..500u64 {
        store.put(i * 31, &value_for(i))?;
    }
    println!("committed 500 puts");

    // Power cord yanked.
    store.memory.crash();
    println!("power failure");

    // Availability math (§1): with Osiris the whole tree would need
    // rebuilding — hours at real capacities. Anubis recovers in O(cache).
    let report = store.memory.recover()?;
    println!(
        "recovered in {} ops (≈ {:.6} s at 100 ns/op); counters fixed: {}",
        report.total_ops(),
        report.estimated_secs(),
        report.counters_fixed
    );
    let osiris_8tb = anubis::recovery::time::osiris_full_secs(8 << 40, 4);
    println!(
        "for scale: Osiris-style full recovery of an 8 TB server ≈ {:.0} s ({:.1} h)",
        osiris_8tb,
        osiris_8tb / 3600.0
    );

    // Every acknowledged transaction is there, integrity-verified.
    for i in 0..500u64 {
        let got = store.get(i * 31)?.expect("committed put must survive");
        assert_eq!(got, value_for(i), "value for key {}", i * 31);
    }
    println!("all 500 committed transactions verified after crash ✓");
    Ok(())
}
