//! Randomized tests: the set-associative cache against a straightforward
//! reference model, plus the stable-slot invariant Anubis depends on.
//! Driven by the in-tree [`SplitMix64`] generator; failure messages carry
//! the seed.

use anubis_cache::MetadataCache;
use anubis_nvm::{BlockAddr, SplitMix64, BLOCK_BYTES};
use std::collections::HashMap;

/// A reference model: per-set LRU lists over (addr, value, dirty).
struct RefModel {
    sets: Vec<Vec<(u64, u64, bool)>>, // MRU at the back
    ways: usize,
}

impl RefModel {
    fn new(num_sets: usize, ways: usize) -> Self {
        RefModel {
            sets: vec![Vec::new(); num_sets],
            ways,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets.len() as u64) as usize
    }

    fn lookup(&mut self, addr: u64) -> Option<u64> {
        let s = self.set_of(addr);
        if let Some(pos) = self.sets[s].iter().position(|(a, _, _)| *a == addr) {
            let entry = self.sets[s].remove(pos);
            let value = entry.1;
            self.sets[s].push(entry);
            Some(value)
        } else {
            None
        }
    }

    fn insert(&mut self, addr: u64, value: u64) -> Option<(u64, u64, bool)> {
        let s = self.set_of(addr);
        if let Some(pos) = self.sets[s].iter().position(|(a, _, _)| *a == addr) {
            let (_, _, dirty) = self.sets[s].remove(pos);
            self.sets[s].push((addr, value, dirty));
            return None;
        }
        let victim = if self.sets[s].len() == self.ways {
            Some(self.sets[s].remove(0))
        } else {
            None
        };
        self.sets[s].push((addr, value, false));
        victim
    }

    fn mark_dirty(&mut self, addr: u64) {
        let s = self.set_of(addr);
        if let Some(e) = self.sets[s].iter_mut().find(|(a, _, _)| *a == addr) {
            e.2 = true;
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64, u64),
    MarkDirty(u64),
}

fn rand_ops(rng: &mut SplitMix64, max_len: u64) -> Vec<Op> {
    let len = rng.gen_range(1..max_len) as usize;
    (0..len)
        .map(|_| match rng.gen_range(0..3) {
            0 => Op::Lookup(rng.gen_range(0..64)),
            1 => Op::Insert(rng.gen_range(0..64), rng.next_u64()),
            _ => Op::MarkDirty(rng.gen_range(0..64)),
        })
        .collect()
}

/// The cache agrees with the reference model on every lookup result
/// and every eviction (victim identity and dirtiness).
#[test]
fn agrees_with_reference_model() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let ops = rand_ops(&mut rng, 200);
        let num_sets = 4;
        let ways = 2;
        let mut cache: MetadataCache<u64> = MetadataCache::new(num_sets * ways * BLOCK_BYTES, ways);
        let mut model = RefModel::new(num_sets, ways);
        for op in ops {
            match op {
                Op::Lookup(a) => {
                    let got = cache.lookup(BlockAddr::new(a)).map(|v| *v);
                    assert_eq!(got, model.lookup(a), "seed {seed}");
                }
                Op::Insert(a, v) => {
                    let out = cache.insert(BlockAddr::new(a), v);
                    let expect = model.insert(a, v);
                    match (out.evicted, expect) {
                        (None, None) => {}
                        (Some(ev), Some((ma, mv, md))) => {
                            assert_eq!(ev.addr, BlockAddr::new(ma), "seed {seed}");
                            assert_eq!(ev.value, mv, "seed {seed}");
                            assert_eq!(ev.dirty, md, "seed {seed}");
                        }
                        (a, b) => panic!("eviction mismatch (seed {seed}): {a:?} vs {b:?}"),
                    }
                }
                Op::MarkDirty(a) => {
                    if cache.contains(BlockAddr::new(a)) {
                        cache.mark_dirty(BlockAddr::new(a));
                        model.mark_dirty(a);
                    }
                }
            }
        }
    }
}

/// The Anubis invariant: a block's slot never changes while resident,
/// no matter what other traffic the cache sees.
#[test]
fn slots_are_stable_for_residents() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed ^ 0x510);
        let ops = rand_ops(&mut rng, 300);
        let mut cache: MetadataCache<u64> = MetadataCache::new(8 * 4 * BLOCK_BYTES, 4);
        let mut pinned: HashMap<u64, anubis_cache::SlotId> = HashMap::new();
        for op in ops {
            match op {
                Op::Lookup(a) => {
                    let _ = cache.lookup(BlockAddr::new(a));
                }
                Op::Insert(a, v) => {
                    let out = cache.insert(BlockAddr::new(a), v);
                    if let Some(ev) = &out.evicted {
                        pinned.remove(&ev.addr.index());
                    }
                    // Residents keep their recorded slot; new blocks pin it.
                    match pinned.get(&a) {
                        Some(slot) => assert_eq!(*slot, out.slot, "seed {seed}"),
                        None => {
                            pinned.insert(a, out.slot);
                        }
                    }
                }
                Op::MarkDirty(a) => {
                    if cache.contains(BlockAddr::new(a)) {
                        cache.mark_dirty(BlockAddr::new(a));
                    }
                }
            }
            for (addr, slot) in &pinned {
                assert_eq!(
                    cache.slot_of(BlockAddr::new(*addr)),
                    Some(*slot),
                    "seed {seed}"
                );
            }
        }
    }
}

/// Eviction accounting: clean + dirty evictions equals fills minus
/// residents (every filled block either evicted once or still here).
#[test]
fn eviction_accounting_balances() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed ^ 0xACC);
        let ops = rand_ops(&mut rng, 300);
        let mut cache: MetadataCache<u64> = MetadataCache::new(4 * 2 * BLOCK_BYTES, 2);
        let mut distinct_fills = 0u64;
        for op in ops {
            match op {
                Op::Lookup(a) => {
                    let _ = cache.lookup(BlockAddr::new(a));
                }
                Op::Insert(a, v) => {
                    if !cache.contains(BlockAddr::new(a)) {
                        distinct_fills += 1;
                    }
                    let _ = cache.insert(BlockAddr::new(a), v);
                }
                Op::MarkDirty(a) => {
                    if cache.contains(BlockAddr::new(a)) {
                        cache.mark_dirty(BlockAddr::new(a));
                    }
                }
            }
        }
        let s = cache.stats();
        assert_eq!(
            s.evictions() + cache.len() as u64,
            distinct_fills,
            "seed {seed}, stats: {s:?}"
        );
    }
}
