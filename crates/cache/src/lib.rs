//! Set-associative security-metadata caches for the Anubis reproduction.
//!
//! The counter cache, Merkle-tree cache and (for SGX-style systems) the
//! combined metadata cache are all instances of [`MetadataCache`]. Two
//! properties matter beyond ordinary cache behaviour:
//!
//! * **Stable slot index.** "The position of the block in the counter
//!   cache remains fixed for its lifetime in the cache; LRU bits are
//!   typically stored and changed in the tag array" (paper §4.1). Anubis
//!   shadow tables mirror the cache's *data array*, one NVM block per
//!   cache slot, so each resident block exposes a [`SlotId`] that never
//!   changes while the block is resident.
//! * **Clean/dirty eviction accounting.** Figure 7 of the paper and the
//!   AGIT-Plus optimization both hinge on how many blocks leave the cache
//!   unmodified; [`CacheStats`] tracks this, along with first-modification
//!   events (the AGIT-Plus trigger).
//!
//! # Example
//!
//! ```
//! use anubis_cache::MetadataCache;
//! use anubis_nvm::{Block, BlockAddr};
//!
//! let mut cache: MetadataCache<Block> = MetadataCache::new(4096, 8); // 64 slots
//! let outcome = cache.insert(BlockAddr::new(1), Block::zeroed());
//! assert!(outcome.evicted.is_none());
//! assert!(cache.mark_dirty(BlockAddr::new(1)), "first modification");
//! assert!(!cache.mark_dirty(BlockAddr::new(1)), "already dirty");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anubis_nvm::{BlockAddr, BLOCK_BYTES};

/// The fixed position of a resident block inside the cache data array.
///
/// `SlotId` is what a shadow table indexes by: slot *k* of the cache maps
/// to block *k* of the shadow region in NVM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId {
    set: u32,
    way: u32,
}

impl SlotId {
    /// The set index.
    pub fn set(self) -> usize {
        self.set as usize
    }

    /// The way index within the set.
    pub fn way(self) -> usize {
        self.way as usize
    }

    /// Linearizes to `set * ways + way` — the shadow-table block offset.
    pub fn linear(self, ways: usize) -> usize {
        self.set as usize * ways + self.way as usize
    }
}

/// A block displaced from the cache by an insertion or explicit eviction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Eviction<T> {
    /// Address the victim was caching.
    pub addr: BlockAddr,
    /// The cached value at eviction time.
    pub value: T,
    /// Whether the victim had been modified since it was inserted
    /// (dirty victims must be written back to NVM).
    pub dirty: bool,
    /// The slot the victim occupied (and the new block will occupy).
    pub slot: SlotId,
}

/// Result of [`MetadataCache::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertOutcome<T> {
    /// The slot the new block now occupies (stable for its residency).
    pub slot: SlotId,
    /// The displaced victim, if the slot was occupied.
    pub evicted: Option<Eviction<T>>,
}

/// Hit/miss/eviction statistics, including the clean-vs-dirty eviction
/// split reported in the paper's Figure 7.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions of unmodified blocks.
    pub clean_evictions: u64,
    /// Evictions of modified blocks (require writeback).
    pub dirty_evictions: u64,
    /// Number of times a clean resident block became dirty
    /// (the AGIT-Plus shadow-write trigger).
    pub first_modifications: u64,
    /// Total `mark_dirty` calls (every metadata update).
    pub updates: u64,
    /// Insertions.
    pub fills: u64,
}

impl CacheStats {
    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.clean_evictions + self.dirty_evictions
    }

    /// Fraction of evictions that were clean, or `None` before the first
    /// eviction.
    pub fn clean_eviction_fraction(&self) -> Option<f64> {
        let total = self.evictions();
        (total > 0).then(|| self.clean_evictions as f64 / total as f64)
    }

    /// Hit rate over all lookups, or `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    tag: BlockAddr,
    value: T,
    dirty: bool,
    last_use: u64,
}

/// A set-associative, write-back cache for 64-byte security metadata.
///
/// Generic over the cached value type `T` so the counter cache can store
/// decoded counter blocks, the tree cache decoded nodes, etc. The cache
/// only manages residency; writebacks are the caller's responsibility via
/// the returned [`Eviction`]s.
#[derive(Clone, Debug)]
pub struct MetadataCache<T> {
    sets: Vec<Vec<Option<Slot<T>>>>,
    ways: usize,
    tick: u64,
    stats: CacheStats,
}

impl<T> MetadataCache<T> {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity
    /// and 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `64 * ways`.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be nonzero");
        assert!(
            capacity_bytes > 0 && capacity_bytes.is_multiple_of(BLOCK_BYTES * ways),
            "capacity {capacity_bytes} B must be a positive multiple of {} B",
            BLOCK_BYTES * ways
        );
        let num_sets = capacity_bytes / BLOCK_BYTES / ways;
        MetadataCache {
            sets: (0..num_sets)
                .map(|_| (0..ways).map(|_| None).collect())
                .collect(),
            ways,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total number of slots (= shadow-table length in blocks).
    pub fn num_slots(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_slots() * BLOCK_BYTES
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: BlockAddr) -> usize {
        (addr.index() % self.sets.len() as u64) as usize
    }

    /// Looks up `addr`, updating LRU state and hit/miss statistics.
    pub fn lookup(&mut self, addr: BlockAddr) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        match self.sets[set].iter_mut().flatten().find(|s| s.tag == addr) {
            Some(slot) => {
                slot.last_use = tick;
                self.stats.hits += 1;
                Some(&mut slot.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `addr` is resident. Does not touch LRU or statistics.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.sets[self.set_index(addr)]
            .iter()
            .flatten()
            .any(|s| s.tag == addr)
    }

    /// Reads a resident value without perturbing LRU or statistics.
    pub fn peek(&self, addr: BlockAddr) -> Option<&T> {
        self.sets[self.set_index(addr)]
            .iter()
            .flatten()
            .find(|s| s.tag == addr)
            .map(|s| &s.value)
    }

    /// Mutates a resident value without perturbing LRU or statistics.
    pub fn peek_mut(&mut self, addr: BlockAddr) -> Option<&mut T> {
        let set = self.set_index(addr);
        self.sets[set]
            .iter_mut()
            .flatten()
            .find(|s| s.tag == addr)
            .map(|s| &mut s.value)
    }

    /// The stable slot of a resident block.
    pub fn slot_of(&self, addr: BlockAddr) -> Option<SlotId> {
        let set = self.set_index(addr);
        self.sets[set].iter().enumerate().find_map(|(way, s)| {
            s.as_ref().filter(|s| s.tag == addr).map(|_| SlotId {
                set: set as u32,
                way: way as u32,
            })
        })
    }

    /// Whether a resident block is dirty.
    pub fn is_dirty(&self, addr: BlockAddr) -> Option<bool> {
        self.sets[self.set_index(addr)]
            .iter()
            .flatten()
            .find(|s| s.tag == addr)
            .map(|s| s.dirty)
    }

    /// Inserts `addr` (clean), evicting the LRU way of its set if full.
    /// If `addr` is already resident its value is replaced in place and no
    /// eviction occurs.
    pub fn insert(&mut self, addr: BlockAddr, value: T) -> InsertOutcome<T> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        self.stats.fills += 1;

        // Already resident: replace value, keep slot and dirty bit.
        if let Some((way, slot)) = self.sets[set]
            .iter_mut()
            .enumerate()
            .find_map(|(w, s)| s.as_mut().filter(|s| s.tag == addr).map(|s| (w, s)))
        {
            slot.value = value;
            slot.last_use = tick;
            return InsertOutcome {
                slot: SlotId {
                    set: set as u32,
                    way: way as u32,
                },
                evicted: None,
            };
        }

        // Free way?
        if let Some(way) = self.sets[set].iter().position(Option::is_none) {
            self.sets[set][way] = Some(Slot {
                tag: addr,
                value,
                dirty: false,
                last_use: tick,
            });
            return InsertOutcome {
                slot: SlotId {
                    set: set as u32,
                    way: way as u32,
                },
                evicted: None,
            };
        }

        // Evict LRU.
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_ref().map(|s| s.last_use).unwrap_or(0))
            .map(|(w, _)| w)
            .expect("nonzero associativity");
        let slot_id = SlotId {
            set: set as u32,
            way: way as u32,
        };
        let victim = self.sets[set][way]
            .replace(Slot {
                tag: addr,
                value,
                dirty: false,
                last_use: tick,
            })
            .expect("set was full");
        if victim.dirty {
            self.stats.dirty_evictions += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        InsertOutcome {
            slot: slot_id,
            evicted: Some(Eviction {
                addr: victim.tag,
                value: victim.value,
                dirty: victim.dirty,
                slot: slot_id,
            }),
        }
    }

    /// Marks a resident block dirty, returning `true` if this was its
    /// *first* modification since insertion (the AGIT-Plus trigger).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not resident — callers must fill before
    /// modifying.
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> bool {
        let set = self.set_index(addr);
        let slot = self.sets[set]
            .iter_mut()
            .flatten()
            .find(|s| s.tag == addr)
            .unwrap_or_else(|| panic!("mark_dirty on non-resident block {addr}"));
        self.stats.updates += 1;
        let first = !slot.dirty;
        slot.dirty = true;
        if first {
            self.stats.first_modifications += 1;
        }
        first
    }

    /// Clears the dirty bit of a resident block (after an explicit
    /// writeback), returning whether it was dirty.
    pub fn mark_clean(&mut self, addr: BlockAddr) -> bool {
        let set = self.set_index(addr);
        if let Some(slot) = self.sets[set].iter_mut().flatten().find(|s| s.tag == addr) {
            let was = slot.dirty;
            slot.dirty = false;
            was
        } else {
            false
        }
    }

    /// Removes `addr` from the cache, returning it as an eviction record.
    pub fn evict(&mut self, addr: BlockAddr) -> Option<Eviction<T>> {
        let set = self.set_index(addr);
        for (way, entry) in self.sets[set].iter_mut().enumerate() {
            if entry.as_ref().is_some_and(|s| s.tag == addr) {
                let slot = entry.take().expect("checked above");
                if slot.dirty {
                    self.stats.dirty_evictions += 1;
                } else {
                    self.stats.clean_evictions += 1;
                }
                return Some(Eviction {
                    addr: slot.tag,
                    value: slot.value,
                    dirty: slot.dirty,
                    slot: SlotId {
                        set: set as u32,
                        way: way as u32,
                    },
                });
            }
        }
        None
    }

    /// Iterates every resident block as `(slot, addr, value, dirty)` —
    /// used to model crash loss and to drain caches at shutdown.
    pub fn iter_resident(&self) -> impl Iterator<Item = (SlotId, BlockAddr, &T, bool)> + '_ {
        self.sets.iter().enumerate().flat_map(move |(set, ways)| {
            ways.iter().enumerate().filter_map(move |(way, s)| {
                s.as_ref().map(|s| {
                    (
                        SlotId {
                            set: set as u32,
                            way: way as u32,
                        },
                        s.tag,
                        &s.value,
                        s.dirty,
                    )
                })
            })
        })
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident block without writeback — the crash model
    /// (caches are volatile).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_nvm::Block;

    fn cache(slots: usize, ways: usize) -> MetadataCache<u64> {
        MetadataCache::new(slots * BLOCK_BYTES, ways)
    }

    #[test]
    fn geometry() {
        let c = cache(64, 8);
        assert_eq!(c.num_slots(), 64);
        assert_eq!(c.num_sets(), 8);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.capacity_bytes(), 64 * 64);
        // Paper config: 256 KB, 8-way.
        let paper: MetadataCache<Block> = MetadataCache::new(256 * 1024, 8);
        assert_eq!(paper.num_slots(), 4096);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_capacity_panics() {
        let _ = cache(3, 2); // 192 B not a multiple of 128? it is... use odd bytes
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_multiple_capacity_panics() {
        let _: MetadataCache<u64> = MetadataCache::new(100, 1);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = cache(8, 2);
        assert!(c.lookup(BlockAddr::new(1)).is_none());
        c.insert(BlockAddr::new(1), 11);
        assert_eq!(c.lookup(BlockAddr::new(1)), Some(&mut 11));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn slot_is_stable_across_hits() {
        let mut c = cache(16, 4);
        let a = BlockAddr::new(5);
        let slot = c.insert(a, 1).slot;
        for i in 0..20u64 {
            // Insert same-set blocks to churn other ways.
            c.insert(BlockAddr::new(5 + 4 * (i + 1)), i);
            c.lookup(a); // keep `a` MRU
            assert_eq!(c.slot_of(a), Some(slot), "slot moved at churn {i}");
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(2, 2); // 1 set... no: 2 slots 2 ways = 1 set
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        c.lookup(BlockAddr::new(1)); // 2 is now LRU
        let out = c.insert(BlockAddr::new(3), 3);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.addr, BlockAddr::new(2));
    }

    #[test]
    fn clean_dirty_eviction_split() {
        let mut c = cache(2, 2);
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        c.mark_dirty(BlockAddr::new(1));
        c.insert(BlockAddr::new(3), 3); // evicts 2 (clean)
        c.insert(BlockAddr::new(4), 4); // evicts 1 (dirty, LRU after 3 churn)
        let s = c.stats();
        assert_eq!(s.clean_evictions, 1);
        assert_eq!(s.dirty_evictions, 1);
        assert_eq!(s.clean_eviction_fraction(), Some(0.5));
    }

    #[test]
    fn first_modification_detection() {
        let mut c = cache(4, 4);
        c.insert(BlockAddr::new(1), 0);
        assert!(c.mark_dirty(BlockAddr::new(1)));
        assert!(!c.mark_dirty(BlockAddr::new(1)));
        assert_eq!(c.stats().first_modifications, 1);
        assert_eq!(c.stats().updates, 2);
        // Writeback then re-dirty counts again.
        assert!(c.mark_clean(BlockAddr::new(1)));
        assert!(c.mark_dirty(BlockAddr::new(1)));
        assert_eq!(c.stats().first_modifications, 2);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn mark_dirty_nonresident_panics() {
        cache(4, 4).mark_dirty(BlockAddr::new(9));
    }

    #[test]
    fn reinsert_keeps_slot_and_dirty_bit() {
        let mut c = cache(4, 4);
        let slot = c.insert(BlockAddr::new(1), 1).slot;
        c.mark_dirty(BlockAddr::new(1));
        let out = c.insert(BlockAddr::new(1), 2);
        assert_eq!(out.slot, slot);
        assert!(out.evicted.is_none());
        assert_eq!(c.is_dirty(BlockAddr::new(1)), Some(true));
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&2));
    }

    #[test]
    fn explicit_evict() {
        let mut c = cache(4, 4);
        c.insert(BlockAddr::new(1), 7);
        c.mark_dirty(BlockAddr::new(1));
        let ev = c.evict(BlockAddr::new(1)).expect("resident");
        assert!(ev.dirty);
        assert_eq!(ev.value, 7);
        assert!(c.evict(BlockAddr::new(1)).is_none());
        assert!(!c.contains(BlockAddr::new(1)));
    }

    #[test]
    fn iter_resident_and_invalidate() {
        let mut c = cache(8, 2);
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        c.mark_dirty(BlockAddr::new(2));
        let resident: Vec<_> = c.iter_resident().collect();
        assert_eq!(resident.len(), 2);
        assert!(resident
            .iter()
            .any(|(_, a, v, d)| *a == BlockAddr::new(2) && **v == 2 && *d));
        assert_eq!(c.len(), 2);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.iter_resident().count(), 0);
    }

    #[test]
    fn linear_slot_index_is_dense_and_unique() {
        let mut c = cache(16, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            let out = c.insert(BlockAddr::new(i), i);
            let lin = out.slot.linear(c.ways());
            assert!(lin < c.num_slots());
            assert!(seen.insert(lin), "duplicate linear slot {lin}");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn peek_does_not_touch_stats_or_lru() {
        let mut c = cache(2, 2);
        c.insert(BlockAddr::new(1), 1);
        c.insert(BlockAddr::new(2), 2);
        let _ = c.peek(BlockAddr::new(1));
        // 1 is still LRU because peek didn't promote it.
        let ev = c.insert(BlockAddr::new(3), 3).evicted.expect("evicts");
        assert_eq!(ev.addr, BlockAddr::new(1));
        assert_eq!(c.stats().hits, 0);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use anubis_nvm::BlockAddr;

    #[test]
    fn peek_mut_mutates_without_lru_touch() {
        let mut c: MetadataCache<u64> = MetadataCache::new(2 * BLOCK_BYTES, 2);
        c.insert(BlockAddr::new(1), 10);
        c.insert(BlockAddr::new(2), 20);
        *c.peek_mut(BlockAddr::new(1)).unwrap() = 99;
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&99));
        // 1 was not promoted: it is still the LRU victim.
        let ev = c.insert(BlockAddr::new(3), 30).evicted.unwrap();
        assert_eq!(ev.addr, BlockAddr::new(1));
        assert_eq!(ev.value, 99, "mutation visible in the eviction record");
    }

    #[test]
    fn mark_clean_on_nonresident_is_noop() {
        let mut c: MetadataCache<u64> = MetadataCache::new(2 * BLOCK_BYTES, 2);
        assert!(!c.mark_clean(BlockAddr::new(9)));
    }

    #[test]
    fn is_dirty_reports_residency_and_state() {
        let mut c: MetadataCache<u64> = MetadataCache::new(2 * BLOCK_BYTES, 2);
        assert_eq!(c.is_dirty(BlockAddr::new(1)), None);
        c.insert(BlockAddr::new(1), 0);
        assert_eq!(c.is_dirty(BlockAddr::new(1)), Some(false));
        c.mark_dirty(BlockAddr::new(1));
        assert_eq!(c.is_dirty(BlockAddr::new(1)), Some(true));
    }

    #[test]
    fn single_way_cache_is_direct_mapped() {
        let mut c: MetadataCache<u64> = MetadataCache::new(4 * BLOCK_BYTES, 1);
        assert_eq!(c.num_sets(), 4);
        c.insert(BlockAddr::new(0), 1);
        // Same set (0 % 4 == 4 % 4): must evict.
        let ev = c.insert(BlockAddr::new(4), 2).evicted.unwrap();
        assert_eq!(ev.addr, BlockAddr::new(0));
        // Different set: no eviction.
        assert!(c.insert(BlockAddr::new(1), 3).evicted.is_none());
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c: MetadataCache<u64> = MetadataCache::new(2 * BLOCK_BYTES, 2);
        c.insert(BlockAddr::new(1), 7);
        c.lookup(BlockAddr::new(1));
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.peek(BlockAddr::new(1)), Some(&7));
    }
}
