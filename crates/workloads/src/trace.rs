//! Memory operation traces.

use anubis_nvm::BlockAddr;

/// The kind of a memory operation arriving at the memory controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An LLC read miss: fetch a 64-byte line from NVM.
    Read,
    /// An LLC writeback: store a 64-byte line to NVM.
    Write,
}

/// One memory operation at LLC-miss granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Read or write.
    pub kind: OpKind,
    /// The 64-byte line touched.
    pub addr: BlockAddr,
    /// CPU compute time (ns) separating this op from the previous one —
    /// the inter-arrival gap the timing model uses to overlap latencies.
    pub gap_ns: u32,
}

impl MemOp {
    /// A read op.
    pub fn read(addr: BlockAddr, gap_ns: u32) -> Self {
        MemOp {
            kind: OpKind::Read,
            addr,
            gap_ns,
        }
    }

    /// A write op.
    pub fn write(addr: BlockAddr, gap_ns: u32) -> Self {
        MemOp {
            kind: OpKind::Write,
            addr,
            gap_ns,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.kind == OpKind::Write
    }
}

/// A named sequence of memory operations.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    ops: Vec<MemOp>,
}

impl Trace {
    /// Creates a trace from parts.
    pub fn new(name: impl Into<String>, ops: Vec<MemOp>) -> Self {
        Trace {
            name: name.into(),
            ops,
        }
    }

    /// The workload name (e.g. `"mcf"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of writes.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }

    /// Number of reads.
    pub fn read_count(&self) -> usize {
        self.len() - self.write_count()
    }

    /// Fraction of operations that are reads (0 for an empty trace).
    pub fn read_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.read_count() as f64 / self.len() as f64
        }
    }

    /// Number of distinct blocks touched.
    pub fn footprint_blocks(&self) -> usize {
        let mut set: Vec<u64> = self.ops.iter().map(|o| o.addr.index()).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Iterates the operations.
    pub fn iter(&self) -> impl Iterator<Item = &MemOp> + '_ {
        self.ops.iter()
    }
}

impl Extend<MemOp> for Trace {
    fn extend<T: IntoIterator<Item = MemOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<MemOp> for Trace {
    fn from_iter<T: IntoIterator<Item = MemOp>>(iter: T) -> Self {
        Trace::new("anonymous", iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let t = Trace::new(
            "t",
            vec![
                MemOp::read(BlockAddr::new(1), 10),
                MemOp::write(BlockAddr::new(2), 10),
                MemOp::read(BlockAddr::new(1), 10),
            ],
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.read_count(), 2);
        assert_eq!(t.write_count(), 1);
        assert_eq!(t.footprint_blocks(), 2);
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.read_fraction(), 0.0);
        assert_eq!(t.footprint_blocks(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..5).map(|i| MemOp::read(BlockAddr::new(i), 1)).collect();
        t.extend([MemOp::write(BlockAddr::new(9), 1)]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.write_count(), 1);
    }
}

#[cfg(test)]
mod stat_tests {
    use super::*;

    #[test]
    fn iterator_traits_compose() {
        let ops: Vec<MemOp> = (0..10)
            .map(|i| MemOp::write(BlockAddr::new(i), 5))
            .collect();
        let t = Trace::new("x", ops);
        let gaps: u64 = t.iter().map(|o| o.gap_ns as u64).sum();
        assert_eq!(gaps, 50);
        assert!(t.iter().all(|o| o.is_write()));
    }

    #[test]
    fn footprint_counts_distinct_blocks_only() {
        let t = Trace::new(
            "x",
            vec![
                MemOp::read(BlockAddr::new(5), 0),
                MemOp::write(BlockAddr::new(5), 0),
                MemOp::write(BlockAddr::new(6), 0),
            ],
        );
        assert_eq!(t.footprint_blocks(), 2);
    }
}
