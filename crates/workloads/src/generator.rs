//! Parameterized synthetic trace generation.

use crate::trace::{MemOp, OpKind, Trace};
use crate::zipf::Zipf;
use anubis_nvm::{BlockAddr, SplitMix64};

/// Lines per 4 KiB page.
const LINES_PER_PAGE: u64 = 64;

/// The tunable shape of a synthetic workload.
///
/// Construct with [`WorkloadSpec::new`] and the builder-style setters, or
/// take a premade SPEC-like profile from [`crate::spec2006`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name carried into the generated [`Trace`].
    pub name: &'static str,
    /// Fraction of operations that are reads (0..=1).
    pub read_fraction: f64,
    /// Working-set size in 64-byte blocks.
    pub footprint_blocks: u64,
    /// Zipf exponent for page popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of operations continuing a sequential stream.
    pub sequential_fraction: f64,
    /// Fraction of *writes* that re-hit one of the 32 most recently
    /// written lines (models store bursts that push counters past the
    /// Osiris stop-loss limit).
    pub rewrite_fraction: f64,
    /// Mean CPU gap between memory operations in nanoseconds (memory
    /// intensity: lower = more intense).
    pub mean_gap_ns: f64,
}

impl WorkloadSpec {
    /// A neutral starting spec: 50/50 mix, 64 MiB footprint, moderate
    /// locality, 100 ns mean gap.
    pub fn new(name: &'static str) -> Self {
        WorkloadSpec {
            name,
            read_fraction: 0.5,
            footprint_blocks: (64 << 20) / 64,
            zipf_exponent: 0.9,
            sequential_fraction: 0.3,
            rewrite_fraction: 0.1,
            mean_gap_ns: 100.0,
        }
    }

    /// Sets the read fraction.
    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.read_fraction = f;
        self
    }

    /// Sets the footprint in bytes (rounded down to blocks).
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        self.footprint_blocks = (bytes / 64).max(LINES_PER_PAGE);
        self
    }

    /// Sets the Zipf exponent.
    pub fn zipf(mut self, alpha: f64) -> Self {
        self.zipf_exponent = alpha;
        self
    }

    /// Sets the sequential-stream fraction.
    pub fn sequential(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.sequential_fraction = f;
        self
    }

    /// Sets the write re-hit fraction.
    pub fn rewrites(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.rewrite_fraction = f;
        self
    }

    /// Sets the mean inter-op CPU gap in nanoseconds.
    pub fn gap_ns(mut self, ns: f64) -> Self {
        assert!(ns >= 0.0);
        self.mean_gap_ns = ns;
        self
    }
}

/// Generates deterministic traces from a [`WorkloadSpec`] within a data
/// region of a given capacity.
///
/// The footprint is placed at the bottom of the data region; addresses
/// produced are block indices **relative to the data region** (the memory
/// controller adds the region base).
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    data_blocks: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` over a data region of
    /// `data_capacity_bytes`.
    ///
    /// The footprint is clamped to the region size.
    pub fn new(spec: WorkloadSpec, data_capacity_bytes: u64) -> Self {
        let data_blocks = (data_capacity_bytes / 64).max(LINES_PER_PAGE);
        TraceGenerator { spec, data_blocks }
    }

    /// The effective footprint after clamping, in blocks.
    pub fn effective_footprint(&self) -> u64 {
        self.spec.footprint_blocks.min(self.data_blocks)
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates `n_ops` operations deterministically from `seed`.
    pub fn generate(&self, n_ops: usize, seed: u64) -> Trace {
        let mut rng = SplitMix64::new(seed ^ fxhash(self.spec.name));
        let footprint = self.effective_footprint();
        let n_pages = (footprint / LINES_PER_PAGE).max(1);
        let zipf = Zipf::new(n_pages, self.spec.zipf_exponent);

        let mut ops = Vec::with_capacity(n_ops);
        let mut stream_pos: u64 = rng.gen_range(0..footprint);
        let mut recent_writes: Vec<u64> = Vec::with_capacity(32);

        for _ in 0..n_ops {
            let is_read = rng.gen_bool(self.spec.read_fraction);
            let addr = if !is_read
                && !recent_writes.is_empty()
                && rng.gen_bool(self.spec.rewrite_fraction)
            {
                recent_writes[rng.gen_index(recent_writes.len())]
            } else if rng.gen_bool(self.spec.sequential_fraction) {
                stream_pos = (stream_pos + 1) % footprint;
                stream_pos
            } else {
                let page = zipf.sample(&mut rng);
                let line = rng.gen_range(0..LINES_PER_PAGE);
                (page * LINES_PER_PAGE + line) % footprint
            };
            if !is_read {
                if recent_writes.len() == 32 {
                    recent_writes.remove(0);
                }
                recent_writes.push(addr);
            }
            // Exponential inter-arrival gap.
            let u: f64 = rng.next_f64().max(1e-9);
            let gap = (-self.spec.mean_gap_ns * u.ln()).min(u32::MAX as f64) as u32;
            ops.push(MemOp {
                kind: if is_read { OpKind::Read } else { OpKind::Write },
                addr: BlockAddr::new(addr),
                gap_ns: gap,
            });
        }
        Trace::new(self.spec.name, ops)
    }
}

/// Tiny stable string hash for seed mixing (FxHash-style).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new("test").footprint_bytes(1 << 20)
    }

    #[test]
    fn deterministic_per_seed() {
        let g = TraceGenerator::new(spec(), 1 << 30);
        assert_eq!(g.generate(1000, 1), g.generate(1000, 1));
        assert_ne!(g.generate(1000, 1), g.generate(1000, 2));
    }

    #[test]
    fn name_changes_stream() {
        let a = TraceGenerator::new(spec(), 1 << 30).generate(100, 1);
        let b = TraceGenerator::new(WorkloadSpec::new("other").footprint_bytes(1 << 20), 1 << 30)
            .generate(100, 1);
        assert_ne!(a.ops(), b.ops());
    }

    #[test]
    fn read_fraction_respected() {
        let g = TraceGenerator::new(spec().read_fraction(0.9), 1 << 30);
        let t = g.generate(20_000, 3);
        assert!(
            (t.read_fraction() - 0.9).abs() < 0.02,
            "got {}",
            t.read_fraction()
        );
    }

    #[test]
    fn footprint_clamped_to_region() {
        let g = TraceGenerator::new(spec().footprint_bytes(1 << 40), 1 << 20);
        assert_eq!(g.effective_footprint(), (1 << 20) / 64);
        let t = g.generate(5000, 1);
        for op in t.iter() {
            assert!(op.addr.index() < (1 << 20) / 64);
        }
    }

    #[test]
    fn all_addresses_within_footprint() {
        let g = TraceGenerator::new(spec(), 1 << 30);
        let fp = g.effective_footprint();
        for op in g.generate(10_000, 5).iter() {
            assert!(op.addr.index() < fp);
        }
    }

    #[test]
    fn rewrites_produce_repeat_write_addresses() {
        let g = TraceGenerator::new(
            spec().read_fraction(0.1).rewrites(0.8).sequential(0.0),
            1 << 30,
        );
        let t = g.generate(10_000, 7);
        let writes: Vec<_> = t.iter().filter(|o| o.is_write()).map(|o| o.addr).collect();
        let mut uniq = writes.clone();
        uniq.sort_unstable_by_key(|a| a.index());
        uniq.dedup();
        assert!(
            uniq.len() < writes.len() / 2,
            "expected heavy write reuse: {} unique of {}",
            uniq.len(),
            writes.len()
        );
    }

    #[test]
    fn gaps_average_near_mean() {
        let g = TraceGenerator::new(spec().gap_ns(200.0), 1 << 30);
        let t = g.generate(20_000, 11);
        let avg: f64 = t.iter().map(|o| o.gap_ns as f64).sum::<f64>() / t.len() as f64;
        assert!((avg - 200.0).abs() < 20.0, "got mean gap {avg}");
    }

    #[test]
    fn sequential_streaming_visits_neighbors() {
        let g = TraceGenerator::new(spec().sequential(1.0).read_fraction(1.0), 1 << 30);
        let t = g.generate(100, 13);
        let mut consecutive = 0;
        for w in t.ops().windows(2) {
            if w[1].addr.index() == (w[0].addr.index() + 1) % g.effective_footprint() {
                consecutive += 1;
            }
        }
        assert!(consecutive >= 98, "only {consecutive} sequential pairs");
    }
}
