//! Zipf-distributed sampling for page-popularity locality.

use anubis_nvm::SplitMix64;

/// A Zipf(α) sampler over ranks `0..n` via a precomputed CDF.
///
/// Page popularity in memory traces is heavily skewed; a Zipf exponent
/// around 0.8–1.2 reproduces the hot-page reuse that gives metadata caches
/// their hit rates. The CDF table is capped at 2^17 buckets: for larger
/// supports, ranks map onto buckets of equal width (keeping the skew shape
/// while bounding memory).
///
/// # Example
///
/// ```
/// use anubis_workloads::Zipf;
/// use anubis_nvm::SplitMix64;
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = SplitMix64::new(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    buckets: u64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Maximum CDF table size.
    const MAX_BUCKETS: u64 = 1 << 17;

    /// Creates a sampler over `0..n` with exponent `alpha >= 0`
    /// (`alpha == 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf support must be nonempty");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let buckets = n.min(Self::MAX_BUCKETS);
        let mut cdf = Vec::with_capacity(buckets as usize);
        let mut acc = 0.0f64;
        for rank in 0..buckets {
            acc += 1.0 / ((rank + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { n, buckets, cdf }
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`, lower ranks being more popular.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u: f64 = rng.next_f64();
        let bucket = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u64,
        };
        if self.n == self.buckets {
            bucket
        } else {
            // Spread the bucket over its share of the support.
            let lo = bucket * self.n / self.buckets;
            let hi = ((bucket + 1) * self.n / self.buckets).max(lo + 1);
            rng.gen_range(lo..hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(7);
        let mut low = 0u32;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-10 ranks of Zipf(1.0, n=1000) carry ~39% of the mass.
        assert!(low as f64 / total as f64 > 0.25, "got {low}/{total}");
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "counts spread too wide: {counts:?}");
    }

    #[test]
    fn large_support_uses_buckets() {
        let n = 1u64 << 22;
        let z = Zipf::new(n, 0.9);
        assert_eq!(z.n(), n);
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_alpha_panics() {
        let _ = Zipf::new(10, -1.0);
    }
}
