//! Synthetic memory-trace workloads for the Anubis reproduction.
//!
//! The paper stresses its schemes with 11 memory-intensive SPEC CPU2006
//! applications run under gem5. SPEC binaries cannot be redistributed, so
//! this crate generates *synthetic LLC-miss traces* whose knobs —
//! read/write mix, footprint, page-level locality skew, streaming vs
//! random access, and write-rehit behaviour — are set per application to
//! match the paper's qualitative descriptions (§6.1: MCF read-intensive,
//! LBM write-intensive with few reads, LIBQUANTUM the most write-intensive
//! while also reading heavily, ...) plus published SPEC memory
//! characterizations. See `DESIGN.md` for the substitution rationale.
//!
//! Traces are deterministic given `(spec, seed, n_ops)`.
//!
//! # Example
//!
//! ```
//! use anubis_workloads::{spec2006, TraceGenerator};
//! let spec = spec2006::mcf();
//! let trace = TraceGenerator::new(spec, 16 << 30).generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! assert!(trace.read_fraction() > 0.8, "mcf is read-intensive");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod trace;
mod zipf;

pub mod io;
pub mod spec2006;

pub use generator::{TraceGenerator, WorkloadSpec};
pub use trace::{MemOp, OpKind, Trace};
pub use zipf::Zipf;
