//! SPEC CPU2006-like workload profiles.
//!
//! Eleven memory-intensive applications, parameterized from the paper's
//! qualitative descriptions (§6.1) and standard published memory
//! characterizations of the suite:
//!
//! * **mcf** — the read-intensive extreme: pointer-chasing over a large
//!   sparse network, very high read MPKI, few stores reach memory.
//! * **lbm** — write-intensive fluid-dynamics streaming: almost every
//!   miss is a writeback sweep over the lattice.
//! * **libquantum** — "the most write-intensive application we have
//!   tested", and second only to mcf in reads: dense sequential sweeps
//!   that rewrite the state vector repeatedly (pushing counters past the
//!   stop-loss limit).
//! * the remaining eight are moderate mixes with varying locality.
//!
//! These are *synthetic stand-ins*: the absolute numbers are not SPEC, but
//! the inter-application ordering (which scheme hurts which app) follows
//! the paper's reported behaviour.

use crate::generator::WorkloadSpec;

/// mcf — read-intensive, poor locality, large footprint.
pub fn mcf() -> WorkloadSpec {
    WorkloadSpec::new("mcf")
        .read_fraction(0.92)
        .footprint_bytes(512 << 20)
        .zipf(0.6)
        .sequential(0.05)
        .rewrites(0.05)
        .gap_ns(60.0)
}

/// lbm — write-intensive streaming, few reads.
pub fn lbm() -> WorkloadSpec {
    WorkloadSpec::new("lbm")
        .read_fraction(0.22)
        .footprint_bytes(384 << 20)
        .zipf(0.3)
        .sequential(0.75)
        .rewrites(0.35)
        .gap_ns(80.0)
}

/// libquantum — the most write-intensive; heavy reads too; dense rewrites.
pub fn libquantum() -> WorkloadSpec {
    WorkloadSpec::new("libquantum")
        .read_fraction(0.45)
        .footprint_bytes(64 << 20)
        .zipf(0.8)
        .sequential(0.6)
        .rewrites(0.6)
        .gap_ns(45.0)
}

/// milc — lattice QCD; moderate writes, streaming with some reuse.
pub fn milc() -> WorkloadSpec {
    WorkloadSpec::new("milc")
        .read_fraction(0.62)
        .footprint_bytes(256 << 20)
        .zipf(0.7)
        .sequential(0.45)
        .rewrites(0.2)
        .gap_ns(90.0)
}

/// soplex — LP solver; read-leaning with skewed reuse.
pub fn soplex() -> WorkloadSpec {
    WorkloadSpec::new("soplex")
        .read_fraction(0.75)
        .footprint_bytes(128 << 20)
        .zipf(1.0)
        .sequential(0.25)
        .rewrites(0.15)
        .gap_ns(110.0)
}

/// GemsFDTD — finite-difference time-domain; streaming, balanced mix.
pub fn gems() -> WorkloadSpec {
    WorkloadSpec::new("gems")
        .read_fraction(0.55)
        .footprint_bytes(512 << 20)
        .zipf(0.4)
        .sequential(0.65)
        .rewrites(0.25)
        .gap_ns(85.0)
}

/// leslie3d — CFD; streaming, moderate writes.
pub fn leslie3d() -> WorkloadSpec {
    WorkloadSpec::new("leslie3d")
        .read_fraction(0.60)
        .footprint_bytes(192 << 20)
        .zipf(0.5)
        .sequential(0.6)
        .rewrites(0.2)
        .gap_ns(95.0)
}

/// astar — path-finding; read-leaning, pointer-chasing, low locality.
pub fn astar() -> WorkloadSpec {
    WorkloadSpec::new("astar")
        .read_fraction(0.80)
        .footprint_bytes(96 << 20)
        .zipf(0.75)
        .sequential(0.1)
        .rewrites(0.1)
        .gap_ns(140.0)
}

/// omnetpp — discrete-event simulation; read-leaning with good reuse.
pub fn omnetpp() -> WorkloadSpec {
    WorkloadSpec::new("omnetpp")
        .read_fraction(0.72)
        .footprint_bytes(160 << 20)
        .zipf(1.1)
        .sequential(0.15)
        .rewrites(0.15)
        .gap_ns(120.0)
}

/// xalancbmk — XML transformation; read-heavy, strong locality.
pub fn xalancbmk() -> WorkloadSpec {
    WorkloadSpec::new("xalancbmk")
        .read_fraction(0.85)
        .footprint_bytes(64 << 20)
        .zipf(1.2)
        .sequential(0.2)
        .rewrites(0.1)
        .gap_ns(130.0)
}

/// bwaves — blast-wave CFD; streaming read-heavy with periodic writes.
pub fn bwaves() -> WorkloadSpec {
    WorkloadSpec::new("bwaves")
        .read_fraction(0.68)
        .footprint_bytes(448 << 20)
        .zipf(0.35)
        .sequential(0.7)
        .rewrites(0.15)
        .gap_ns(75.0)
}

/// All eleven profiles in the order the paper's figures list them.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        astar(),
        bwaves(),
        gems(),
        lbm(),
        leslie3d(),
        libquantum(),
        mcf(),
        milc(),
        omnetpp(),
        soplex(),
        xalancbmk(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;

    #[test]
    fn eleven_distinct_profiles() {
        let specs = all();
        assert_eq!(specs.len(), 11);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn paper_ordering_of_write_intensity() {
        // libquantum must be the most write-intensive, mcf the least.
        let wf = |s: WorkloadSpec| {
            let t = TraceGenerator::new(s, 16 << 30).generate(20_000, 1);
            1.0 - t.read_fraction()
        };
        let lq = wf(libquantum());
        let m = wf(mcf());
        let l = wf(lbm());
        assert!(
            lq > 0.5 && l > 0.5,
            "libquantum/lbm are write-heavy ({lq}, {l})"
        );
        assert!(m < 0.12, "mcf writes rarely ({m})");
        for s in all() {
            if s.name != "lbm" {
                assert!(wf(s.clone()) <= l + 0.02, "{} out-writes lbm", s.name);
            }
        }
    }

    #[test]
    fn traces_generate_for_all() {
        for s in all() {
            let t = TraceGenerator::new(s, 16 << 30).generate(1000, 99);
            assert_eq!(t.len(), 1000);
            assert!(t.footprint_blocks() > 10);
        }
    }
}
