//! Plain-text trace serialization.
//!
//! Format, one op per line after a header:
//!
//! ```text
//! #anubis-trace v1 <name>
//! R <block-index> <gap-ns>
//! W <block-index> <gap-ns>
//! ```
//!
//! Lets an experiment pin its exact trace to disk (or feed in a trace
//! captured elsewhere) rather than relying on generator determinism.

use crate::trace::{MemOp, OpKind, Trace};
use anubis_nvm::BlockAddr;
use std::io::{self, BufRead, Write};

/// Magic header prefix.
const HEADER: &str = "#anubis-trace v1";

/// Errors from parsing a trace file.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header line is missing or malformed.
    BadHeader,
    /// A body line failed to parse (1-based line number included).
    BadLine(usize),
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ParseTraceError::BadHeader => write!(f, "missing or malformed trace header"),
            ParseTraceError::BadLine(n) => write!(f, "malformed trace line {n}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes `trace` to `writer` in the v1 text format.
///
/// A mutable reference works as the writer: `write_trace(&mut file, ..)`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writeln!(writer, "{HEADER} {}", trace.name())?;
    for op in trace.iter() {
        let k = if op.is_write() { 'W' } else { 'R' };
        writeln!(writer, "{k} {} {}", op.addr.index(), op.gap_ns)?;
    }
    Ok(())
}

/// Reads a trace in the v1 text format.
///
/// A mutable reference works as the reader: `read_trace(&mut file)`.
///
/// # Errors
///
/// [`ParseTraceError`] on I/O failure or malformed input.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, ParseTraceError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or(ParseTraceError::BadHeader)??;
    let name = header
        .strip_prefix(HEADER)
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .ok_or(ParseTraceError::BadHeader)?
        .to_string();
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let parsed = (|| {
            let kind = match parts.next()? {
                "R" => OpKind::Read,
                "W" => OpKind::Write,
                _ => return None,
            };
            let addr: u64 = parts.next()?.parse().ok()?;
            let gap: u32 = parts.next()?.parse().ok()?;
            Some(MemOp {
                kind,
                addr: BlockAddr::new(addr),
                gap_ns: gap,
            })
        })();
        match parsed {
            Some(op) => ops.push(op),
            None => return Err(ParseTraceError::BadLine(i + 2)),
        }
    }
    Ok(Trace::new(name, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec2006, TraceGenerator};
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let trace = TraceGenerator::new(spec2006::astar(), 1 << 30).generate(500, 7);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = "#anubis-trace v1 demo\nR 5 10\n\n# comment\nW 7 20\n";
        let t = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(t.name(), "demo");
        assert_eq!(t.len(), 2);
        assert_eq!(t.write_count(), 1);
    }

    #[test]
    fn rejects_bad_header() {
        let r = read_trace(BufReader::new("not a trace\nR 1 1\n".as_bytes()));
        assert!(matches!(r, Err(ParseTraceError::BadHeader)));
        let r = read_trace(BufReader::new("#anubis-trace v1 \n".as_bytes()));
        assert!(matches!(r, Err(ParseTraceError::BadHeader)));
    }

    #[test]
    fn rejects_bad_lines_with_position() {
        let text = "#anubis-trace v1 demo\nR 5 10\nX 7 20\n";
        match read_trace(BufReader::new(text.as_bytes())) {
            Err(ParseTraceError::BadLine(3)) => {}
            other => panic!("expected BadLine(3), got {other:?}"),
        }
        let text = "#anubis-trace v1 demo\nW notanumber 20\n";
        assert!(matches!(
            read_trace(BufReader::new(text.as_bytes())),
            Err(ParseTraceError::BadLine(2))
        ));
    }

    #[test]
    fn error_display() {
        assert!(ParseTraceError::BadHeader.to_string().contains("header"));
        assert!(ParseTraceError::BadLine(9).to_string().contains('9'));
    }
}
