//! Randomized property tests for the integrity trees, driven by the
//! in-tree [`SplitMix64`] generator; failure messages carry the seed.

use anubis_crypto::Key;
use anubis_itree::bonsai::ReferenceTree;
use anubis_itree::sgx::ReferenceSgxTree;
use anubis_itree::{NodeId, TreeGeometry};
use anubis_nvm::{Block, SplitMix64};

fn rand_block(rng: &mut SplitMix64) -> Block {
    Block::from_words(core::array::from_fn(|_| rng.next_u64()))
}

/// Incremental leaf updates and a from-scratch rebuild agree on the
/// root for any update sequence.
#[test]
fn bonsai_incremental_equals_rebuild() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let n_leaves = rng.gen_range(1..200) as usize;
        let n_updates = rng.gen_range(0..30) as usize;
        let mut leaves = vec![Block::zeroed(); n_leaves];
        let mut tree = ReferenceTree::build(Key([1, 2]), leaves.clone());
        for _ in 0..n_updates {
            let i = rng.next_u64() % n_leaves as u64;
            let content = rand_block(&mut rng);
            leaves[i as usize] = content;
            tree.update_leaf(i, content);
        }
        let rebuilt = ReferenceTree::build(Key([1, 2]), leaves);
        assert_eq!(tree.root(), rebuilt.root(), "seed {seed}");
        assert!(tree.verify_all().is_ok(), "seed {seed}");
    }
}

/// Any single-bit tamper of any node or leaf breaks verification or
/// changes the root.
#[test]
fn bonsai_tamper_always_detected() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed ^ 0x7A3);
        let n_leaves = rng.gen_range(2..64) as usize;
        let bit = rng.gen_index(512);
        let leaves: Vec<Block> = (0..n_leaves).map(|i| Block::filled(i as u8)).collect();
        let tree = ReferenceTree::build(Key([3, 4]), leaves.clone());
        let g = tree.geometry().clone();
        let level = rng.gen_index(g.num_levels());
        let index = rng.next_u64() % g.nodes_at(level);
        let mut content = *tree.node(NodeId::new(level, index));
        content.flip_bit(bit);
        // Interior tamper: detected by digest recomputation. Leaf tamper:
        // changes the root.
        if level == 0 {
            let mut leaves2 = leaves;
            leaves2[index as usize] = content;
            let rebuilt = ReferenceTree::build(Key([3, 4]), leaves2);
            assert_ne!(rebuilt.root(), tree.root(), "seed {seed}");
        } else {
            let h = anubis_itree::bonsai::BonsaiHasher::new(Key([3, 4]));
            assert_ne!(
                h.digest(&content),
                h.digest(tree.node(NodeId::new(level, index))),
                "seed {seed}"
            );
        }
    }
}

/// SGX tree: any interleaving of counter bumps keeps every MAC chain
/// valid, and replaying any pre-bump node is detected.
#[test]
fn sgx_bumps_keep_consistency_and_reject_replay() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed ^ 0x59C);
        let lines = rng.gen_range(8..512);
        let n_bumps = rng.gen_range(1..40) as usize;
        let mut tree = ReferenceSgxTree::new(Key([5, 6]), lines);
        let mut snapshots = Vec::new();
        for _ in 0..n_bumps {
            let line = rng.next_u64() % lines;
            let leaf = NodeId::new(0, line / 8);
            snapshots.push((leaf, *tree.node(leaf)));
            tree.bump_leaf_counter(line);
        }
        assert!(tree.verify_all().is_ok(), "seed {seed}");
        // Replay the oldest snapshot of a bumped leaf: must be detected —
        // except in the degenerate single-node tree, where the "leaf" is
        // the top node, which lives on-chip in hardware and cannot be
        // replayed at all (the controller models it as a register).
        let (leaf, old) = snapshots[0];
        if tree.geometry().num_levels() > 1 {
            let mut attacked = tree.clone();
            attacked.set_node(leaf, old);
            assert!(
                attacked.verify_leaf_path(leaf.index).is_err(),
                "seed {seed}"
            );
        }
    }
}

/// Geometry: interior offsets form a dense bijection for arbitrary
/// leaf counts.
#[test]
fn geometry_offsets_bijective() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed ^ 0x6E0);
        let n_leaves = rng.gen_range(1..100_000);
        let g = TreeGeometry::new(n_leaves, 8);
        let total = g.interior_blocks();
        // Spot-check boundaries of every level rather than all nodes.
        for level in 1..g.num_levels() {
            for index in [0, g.nodes_at(level) / 2, g.nodes_at(level) - 1] {
                let node = NodeId::new(level, index);
                let off = g.interior_offset(node);
                assert!(off < total, "seed {seed}");
                assert_eq!(g.locate_interior(off), node, "seed {seed}");
            }
        }
        // Parent of every leaf exists and has the right child span.
        for index in [0, n_leaves / 2, n_leaves - 1] {
            let leaf = NodeId::new(0, index);
            if g.num_levels() > 1 {
                let p = g.parent(leaf).unwrap();
                assert!(g.children(p).any(|c| c == leaf), "seed {seed}");
            }
        }
    }
}
