//! Property tests for the integrity trees.

use anubis_crypto::Key;
use anubis_itree::bonsai::ReferenceTree;
use anubis_itree::sgx::ReferenceSgxTree;
use anubis_itree::{NodeId, TreeGeometry};
use anubis_nvm::Block;
use proptest::prelude::*;

fn block_strategy() -> impl Strategy<Value = Block> {
    prop::array::uniform8(any::<u64>()).prop_map(Block::from_words)
}

proptest! {
    /// Incremental leaf updates and a from-scratch rebuild agree on the
    /// root for any update sequence.
    #[test]
    fn bonsai_incremental_equals_rebuild(
        n_leaves in 1usize..200,
        updates in prop::collection::vec((any::<u64>(), block_strategy()), 0..30),
    ) {
        let mut leaves = vec![Block::zeroed(); n_leaves];
        let mut tree = ReferenceTree::build(Key([1, 2]), leaves.clone());
        for (idx, content) in updates {
            let i = idx % n_leaves as u64;
            leaves[i as usize] = content;
            tree.update_leaf(i, content);
        }
        let rebuilt = ReferenceTree::build(Key([1, 2]), leaves);
        prop_assert_eq!(tree.root(), rebuilt.root());
        prop_assert!(tree.verify_all().is_ok());
    }

    /// Any single-bit tamper of any node or leaf breaks verification or
    /// changes the root.
    #[test]
    fn bonsai_tamper_always_detected(
        n_leaves in 2usize..64,
        victim_level_pick in any::<u64>(),
        victim_index_pick in any::<u64>(),
        bit in 0usize..512,
    ) {
        let leaves: Vec<Block> = (0..n_leaves).map(|i| Block::filled(i as u8)).collect();
        let tree = ReferenceTree::build(Key([3, 4]), leaves.clone());
        let g = tree.geometry().clone();
        let level = (victim_level_pick % g.num_levels() as u64) as usize;
        let index = victim_index_pick % g.nodes_at(level);
        // Tamper by rebuilding with the modified node content spliced in.
        let mut tampered = tree.clone();
        let mut content = *tampered.node(NodeId::new(level, index));
        content.flip_bit(bit);
        // Interior tamper: detected by verify_all. Leaf tamper: either
        // detected or it changes the root.
        if level == 0 {
            let mut leaves2 = leaves;
            leaves2[index as usize] = content;
            let rebuilt = ReferenceTree::build(Key([3, 4]), leaves2);
            prop_assert_ne!(rebuilt.root(), tree.root());
        } else {
            tampered.update_leaf(0, *tree.node(NodeId::new(0, 0))); // no-op refresh
            // Directly splicing interior nodes isn't exposed (by design);
            // verify the structural property instead: recomputing the
            // parent digest of the tampered content differs.
            let parent = g.parent(NodeId::new(level, index)).unwrap_or(g.top());
            let _ = parent;
            let h = anubis_itree::bonsai::BonsaiHasher::new(Key([3, 4]));
            prop_assert_ne!(h.digest(&content), h.digest(tree.node(NodeId::new(level, index))));
        }
    }

    /// SGX tree: any interleaving of counter bumps keeps every MAC chain
    /// valid, and replaying any pre-bump node is detected.
    #[test]
    fn sgx_bumps_keep_consistency_and_reject_replay(
        lines in 8u64..512,
        bumps in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let mut tree = ReferenceSgxTree::new(Key([5, 6]), lines);
        let mut snapshots = Vec::new();
        for b in &bumps {
            let line = b % lines;
            let leaf = NodeId::new(0, line / 8);
            snapshots.push((leaf, *tree.node(leaf)));
            tree.bump_leaf_counter(line);
        }
        prop_assert!(tree.verify_all().is_ok());
        // Replay the oldest snapshot of a bumped leaf: must be detected —
        // except in the degenerate single-node tree, where the "leaf" is
        // the top node, which lives on-chip in hardware and cannot be
        // replayed at all (the controller models it as a register).
        let (leaf, old) = snapshots[0];
        if tree.geometry().num_levels() > 1 {
            let mut attacked = tree.clone();
            attacked.set_node(leaf, old);
            prop_assert!(attacked.verify_leaf_path(leaf.index).is_err());
        }
    }

    /// Geometry: interior offsets form a dense bijection for arbitrary
    /// leaf counts.
    #[test]
    fn geometry_offsets_bijective(n_leaves in 1u64..100_000) {
        let g = TreeGeometry::new(n_leaves, 8);
        let total = g.interior_blocks();
        // Spot-check boundaries of every level rather than all nodes.
        for level in 1..g.num_levels() {
            for index in [0, g.nodes_at(level) / 2, g.nodes_at(level) - 1] {
                let node = NodeId::new(level, index);
                let off = g.interior_offset(node);
                prop_assert!(off < total);
                prop_assert_eq!(g.locate_interior(off), node);
            }
        }
        // Parent of every leaf exists and has the right child span.
        for index in [0, n_leaves / 2, n_leaves - 1] {
            let leaf = NodeId::new(0, index);
            if g.num_levels() > 1 {
                let p = g.parent(leaf).unwrap();
                prop_assert!(g.children(p).any(|c| c == leaf));
            }
        }
    }
}
