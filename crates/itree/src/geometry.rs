//! Arity/level/indexing math for 8-ary (or any-ary) integrity trees.

/// Identifies one node of an integrity tree.
///
/// Level 0 is the leaf level (counter blocks); the highest level contains
/// exactly one node (the top node, whose digest or counters live on-chip).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Tree level, 0 = leaves.
    pub level: usize,
    /// Node index within the level.
    pub index: u64,
}

impl NodeId {
    /// Convenience constructor.
    pub fn new(level: usize, index: u64) -> Self {
        NodeId { level, index }
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "L{}#{}", self.level, self.index)
    }
}

/// The shape of an integrity tree over `n_leaves` leaf blocks with a given
/// arity.
///
/// Levels shrink by the arity until a single top node remains. Interior
/// nodes (levels ≥ 1) are also assigned a dense linear offset so the
/// memory-controller crate can map them into one contiguous NVM region,
/// packed level by level starting with level 1.
///
/// # Example
///
/// ```
/// use anubis_itree::{TreeGeometry, NodeId};
/// let g = TreeGeometry::new(64, 8);
/// assert_eq!(g.num_levels(), 3);          // 64 leaves, 8 L1 nodes, 1 top
/// assert_eq!(g.nodes_at(1), 8);
/// assert_eq!(g.parent(NodeId::new(0, 17)), Some(NodeId::new(1, 2)));
/// assert_eq!(g.interior_blocks(), 9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeGeometry {
    arity: u64,
    level_sizes: Vec<u64>,
    /// Linear offset of the first node of each interior level (level 1 is
    /// offset 0); same length as `level_sizes`, entry 0 unused.
    interior_offsets: Vec<u64>,
}

impl TreeGeometry {
    /// Builds the geometry for `n_leaves` leaves and the given `arity`.
    ///
    /// # Panics
    ///
    /// Panics if `n_leaves == 0` or `arity < 2`.
    pub fn new(n_leaves: u64, arity: usize) -> Self {
        assert!(n_leaves > 0, "a tree needs at least one leaf");
        assert!(arity >= 2, "arity must be at least 2");
        let arity = arity as u64;
        let mut level_sizes = vec![n_leaves];
        while *level_sizes.last().expect("nonempty") > 1 {
            let prev = *level_sizes.last().expect("nonempty");
            level_sizes.push(prev.div_ceil(arity));
        }
        let mut interior_offsets = vec![0u64; level_sizes.len()];
        let mut acc = 0u64;
        for level in 1..level_sizes.len() {
            interior_offsets[level] = acc;
            acc += level_sizes[level];
        }
        TreeGeometry {
            arity,
            level_sizes,
            interior_offsets,
        }
    }

    /// Tree arity.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Number of levels including the leaf level.
    pub fn num_levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// The level of the single top node.
    pub fn top_level(&self) -> usize {
        self.level_sizes.len() - 1
    }

    /// The single top node.
    pub fn top(&self) -> NodeId {
        NodeId::new(self.top_level(), 0)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        self.level_sizes[0]
    }

    /// Number of nodes at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn nodes_at(&self, level: usize) -> u64 {
        self.level_sizes[level]
    }

    /// Total number of interior nodes (levels 1 and above) — the size of
    /// the Merkle-tree NVM region in blocks.
    pub fn interior_blocks(&self) -> u64 {
        self.level_sizes.iter().skip(1).sum()
    }

    /// The parent of `node`, or `None` for the top node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist in this geometry.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.check(node);
        if node.level == self.top_level() {
            None
        } else {
            Some(NodeId::new(node.level + 1, node.index / self.arity))
        }
    }

    /// Which child slot (0..arity) `node` occupies in its parent.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist in this geometry.
    pub fn child_slot(&self, node: NodeId) -> usize {
        self.check(node);
        (node.index % self.arity) as usize
    }

    /// The children of an interior `node`, clamped to the lower level's
    /// size (the last node of a level may have fewer than `arity`
    /// children).
    ///
    /// # Panics
    ///
    /// Panics if `node` is a leaf or does not exist.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.check(node);
        assert!(node.level >= 1, "leaves have no children");
        let child_level = node.level - 1;
        let first = node.index * self.arity;
        let last = (first + self.arity).min(self.level_sizes[child_level]);
        (first..last).map(move |i| NodeId::new(child_level, i))
    }

    /// The path of ancestors from `leaf`'s parent up to and including the
    /// top node.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a level-0 node in this geometry.
    pub fn path_to_top(&self, leaf: NodeId) -> Vec<NodeId> {
        assert_eq!(leaf.level, 0, "path_to_top starts from a leaf");
        self.check(leaf);
        let mut path = Vec::with_capacity(self.num_levels() - 1);
        let mut cur = leaf;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Dense linear offset of an interior node in the Merkle-tree region
    /// (level 1 node 0 is offset 0, levels packed in ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `node` is a leaf or does not exist.
    pub fn interior_offset(&self, node: NodeId) -> u64 {
        self.check(node);
        assert!(node.level >= 1, "leaves are not in the interior region");
        self.interior_offsets[node.level] + node.index
    }

    /// Inverse of [`TreeGeometry::interior_offset`].
    ///
    /// # Panics
    ///
    /// Panics if `offset >= interior_blocks()`.
    pub fn locate_interior(&self, offset: u64) -> NodeId {
        assert!(
            offset < self.interior_blocks(),
            "interior offset out of range"
        );
        for level in (1..self.num_levels()).rev() {
            if offset >= self.interior_offsets[level] {
                return NodeId::new(level, offset - self.interior_offsets[level]);
            }
        }
        unreachable!("offset checked against interior_blocks")
    }

    fn check(&self, node: NodeId) {
        assert!(
            node.level < self.num_levels() && node.index < self.level_sizes[node.level],
            "node {node} outside geometry ({} levels)",
            self.num_levels()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree() {
        let g = TreeGeometry::new(1, 8);
        assert_eq!(g.num_levels(), 1);
        assert_eq!(g.top(), NodeId::new(0, 0));
        assert_eq!(g.parent(NodeId::new(0, 0)), None);
        assert_eq!(g.interior_blocks(), 0);
    }

    #[test]
    fn exact_power_tree() {
        let g = TreeGeometry::new(512, 8); // 8^3
        assert_eq!(g.num_levels(), 4);
        assert_eq!(g.nodes_at(0), 512);
        assert_eq!(g.nodes_at(1), 64);
        assert_eq!(g.nodes_at(2), 8);
        assert_eq!(g.nodes_at(3), 1);
        assert_eq!(g.interior_blocks(), 73);
    }

    #[test]
    fn ragged_tree_clamps_children() {
        let g = TreeGeometry::new(10, 8); // level1 = 2, top = 1
        assert_eq!(g.num_levels(), 3);
        assert_eq!(g.nodes_at(1), 2);
        let kids: Vec<_> = g.children(NodeId::new(1, 1)).collect();
        assert_eq!(kids.len(), 2); // leaves 8 and 9 only
        assert_eq!(kids[0], NodeId::new(0, 8));
        assert_eq!(kids[1], NodeId::new(0, 9));
    }

    #[test]
    fn parent_child_are_inverse() {
        let g = TreeGeometry::new(1000, 8);
        for level in 1..g.num_levels() {
            for index in 0..g.nodes_at(level) {
                let node = NodeId::new(level, index);
                for child in g.children(node) {
                    assert_eq!(g.parent(child), Some(node));
                    let slot = g.child_slot(child);
                    assert_eq!(child.index, node.index * 8 + slot as u64);
                }
            }
        }
    }

    #[test]
    fn path_to_top_lengths() {
        let g = TreeGeometry::new(512, 8);
        let path = g.path_to_top(NodeId::new(0, 511));
        assert_eq!(path.len(), 3);
        assert_eq!(path.last(), Some(&g.top()));
        assert_eq!(path[0], NodeId::new(1, 63));
    }

    #[test]
    fn interior_offsets_are_dense_and_invertible() {
        let g = TreeGeometry::new(100, 8); // levels: 100, 13, 2, 1
        assert_eq!(g.interior_blocks(), 16);
        let mut seen = std::collections::HashSet::new();
        for level in 1..g.num_levels() {
            for index in 0..g.nodes_at(level) {
                let node = NodeId::new(level, index);
                let off = g.interior_offset(node);
                assert!(off < g.interior_blocks());
                assert!(seen.insert(off));
                assert_eq!(g.locate_interior(off), node);
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn paper_scale_16gb() {
        // 16 GiB data, 64 B lines, 64 lines per counter block:
        // 2^28 data blocks -> 2^22 counter blocks (leaves).
        let g = TreeGeometry::new(1 << 22, 8);
        assert_eq!(g.num_levels(), 9); // 8^8 > 2^22 >= 8^7; leaves + 8 levels... check below
        assert_eq!(g.nodes_at(g.top_level()), 1);
        // 2^22 / 8^7 = 2^22 / 2^21 = 2: level 7 has 2 nodes, level 8 has 1.
        assert_eq!(g.nodes_at(7), 2);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_panics() {
        let _ = TreeGeometry::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn bogus_node_panics() {
        TreeGeometry::new(8, 8).parent(NodeId::new(0, 8)).unwrap();
    }

    #[test]
    #[should_panic(expected = "no children")]
    fn leaf_children_panics() {
        let g = TreeGeometry::new(8, 8);
        let _ = g.children(NodeId::new(0, 0)).count();
    }
}
