//! Integrity trees for the Anubis reproduction.
//!
//! Two tree families, matching the paper's taxonomy (§2.3):
//!
//! * [`bonsai`] — the **general, non-parallelizable** 8-ary Merkle tree:
//!   every interior node packs eight 8-byte keyed hashes of its children;
//!   the root hash lives on-chip. Reconstructable from the leaves alone,
//!   which is what makes Osiris-style recovery (and AGIT) possible.
//! * [`sgx`] — the **parallelizable SGX-style** counter tree: every node
//!   carries eight 56-bit counters plus a 56-bit MAC computed over the
//!   node's counters *and one counter in its parent*. Updates parallelize,
//!   but the tree cannot be rebuilt from leaves — the motivation for ASIT.
//!
//! [`TreeGeometry`] provides the arity/level/indexing math shared by both,
//! and [`bonsai::ReferenceTree`] is a fully materialized model used by
//! tests to cross-check the cached, lazily-updated controller
//! implementations in the `anubis` crate.
//!
//! This crate is deliberately *pure*: no NVM traffic, no caches — just the
//! data-structure math. The memory controllers in `anubis` decide what to
//! fetch, cache and persist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bonsai;
pub mod sgx;

mod geometry;

pub use geometry::{NodeId, TreeGeometry};
