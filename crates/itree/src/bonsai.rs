//! The general, non-parallelizable 8-ary Bonsai-style Merkle tree
//! (paper §2.3.1, Fig. 2).
//!
//! Interior nodes are 64-byte blocks holding eight 8-byte keyed hashes,
//! one per child block. The digest of the single top node is the **root**
//! kept on-chip. Because every interior node is a pure function of its
//! children, the whole tree — root included — can be rebuilt from the
//! leaves, which is what AGIT exploits to repair only tracked nodes.

use crate::geometry::{NodeId, TreeGeometry};
use anubis_crypto::hash::Hasher64;
use anubis_crypto::Key;
use anubis_nvm::Block;

/// An on-chip Merkle root digest.
///
/// Newtype so roots cannot be confused with ordinary hash words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Root(pub u64);

/// Keyed hashing for Bonsai-tree nodes.
///
/// Digests are content-only, as in the classical Bonsai Merkle Tree:
/// position is enforced *structurally* — a child is always checked
/// against the digest stored in its own slot of its own parent, so
/// transplanting a block to another position fails against that slot's
/// stored digest. Content-only digests are also what make the all-zero
/// initial memory image cheap to support: every never-written node of a
/// level shares one canonical zero-state content.
///
/// # Example
///
/// ```
/// use anubis_crypto::Key;
/// use anubis_itree::bonsai::BonsaiHasher;
/// use anubis_nvm::Block;
///
/// let h = BonsaiHasher::new(Key([1, 2]));
/// assert_ne!(h.digest(&Block::filled(1)), h.digest(&Block::filled(2)));
/// ```
#[derive(Clone, Debug)]
pub struct BonsaiHasher {
    hasher: Hasher64,
}

impl BonsaiHasher {
    /// Derives the tree-hash key from a master key.
    pub fn new(master: Key) -> Self {
        BonsaiHasher {
            hasher: Hasher64::new(master.derive("bonsai-tree")),
        }
    }

    /// Digest of one node/leaf block.
    pub fn digest(&self, content: &Block) -> u64 {
        self.hasher.hash(content.as_bytes())
    }

    /// Builds an interior node block from the digests of its children.
    /// Missing children (ragged last node) hash as zero words.
    pub fn parent_block(&self, child_digests: &[u64]) -> Block {
        assert!(child_digests.len() <= Block::WORDS, "at most 8 children");
        let mut b = Block::zeroed();
        for (i, d) in child_digests.iter().enumerate() {
            b.set_word(i, *d);
        }
        b
    }
}

/// A fully materialized Bonsai Merkle tree over an in-memory leaf array.
///
/// This is the *reference model*: tests build one next to a cached,
/// lazily-written controller and check that the controller's recovered
/// root matches `ReferenceTree::root()`. It is also the O(n) "rebuild
/// everything" path used to model Osiris whole-memory recovery.
///
/// # Example
///
/// ```
/// use anubis_crypto::Key;
/// use anubis_itree::bonsai::ReferenceTree;
/// use anubis_nvm::Block;
///
/// let leaves = vec![Block::filled(1), Block::filled(2), Block::filled(3)];
/// let mut tree = ReferenceTree::build(Key([1, 2]), leaves);
/// let before = tree.root();
/// tree.update_leaf(1, Block::filled(9));
/// assert_ne!(tree.root(), before);
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceTree {
    hasher: BonsaiHasher,
    geometry: TreeGeometry,
    /// `levels[0]` are the leaves; higher levels are interior blocks.
    levels: Vec<Vec<Block>>,
}

impl ReferenceTree {
    /// Builds the full tree bottom-up from `leaves`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn build(master: Key, leaves: Vec<Block>) -> Self {
        let hasher = BonsaiHasher::new(master);
        let geometry = TreeGeometry::new(leaves.len() as u64, 8);
        let mut levels = vec![leaves];
        for level in 1..geometry.num_levels() {
            let mut nodes = Vec::with_capacity(geometry.nodes_at(level) as usize);
            for index in 0..geometry.nodes_at(level) {
                let digests: Vec<u64> = geometry
                    .children(NodeId::new(level, index))
                    .map(|c| hasher.digest(&levels[level - 1][c.index as usize]))
                    .collect();
                nodes.push(hasher.parent_block(&digests));
            }
            levels.push(nodes);
        }
        ReferenceTree {
            hasher,
            geometry,
            levels,
        }
    }

    /// The tree's shape.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The on-chip root digest (hash of the top node).
    pub fn root(&self) -> Root {
        let top = self.geometry.top();
        Root(self.hasher.digest(&self.levels[top.level][0]))
    }

    /// The current content of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the geometry.
    pub fn node(&self, node: NodeId) -> &Block {
        &self.levels[node.level][node.index as usize]
    }

    /// Replaces leaf `index` and eagerly re-hashes the path to the top.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_leaf(&mut self, index: u64, content: Block) {
        self.levels[0][index as usize] = content;
        let mut child = NodeId::new(0, index);
        while let Some(parent) = self.geometry.parent(child) {
            let digest = self
                .hasher
                .digest(&self.levels[child.level][child.index as usize]);
            let slot = self.geometry.child_slot(child);
            self.levels[parent.level][parent.index as usize].set_word(slot, digest);
            child = parent;
        }
    }

    /// Verifies that every interior node matches its children and returns
    /// the root if consistent, or the first inconsistent node.
    ///
    /// # Errors
    ///
    /// Returns the `NodeId` of the first node whose stored child digest
    /// disagrees with the child's recomputed digest.
    pub fn verify_all(&self) -> Result<Root, NodeId> {
        for level in 1..self.geometry.num_levels() {
            for index in 0..self.geometry.nodes_at(level) {
                let node = NodeId::new(level, index);
                for child in self.geometry.children(node) {
                    let expect = self
                        .hasher
                        .digest(&self.levels[child.level][child.index as usize]);
                    let stored =
                        self.levels[level][index as usize].word(self.geometry.child_slot(child));
                    if stored != expect {
                        return Err(node);
                    }
                }
            }
        }
        Ok(self.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Block> {
        (0..n).map(|i| Block::filled(i as u8)).collect()
    }

    #[test]
    fn build_and_verify() {
        let t = ReferenceTree::build(Key([1, 2]), leaves(100));
        assert_eq!(t.verify_all().unwrap(), t.root());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let mut t = ReferenceTree::build(Key([1, 2]), leaves(64));
        let r0 = t.root();
        for i in [0u64, 31, 63] {
            t.update_leaf(i, Block::filled(0xEE));
            assert_ne!(t.root(), r0, "leaf {i} update must change root");
            assert!(t.verify_all().is_ok());
        }
    }

    #[test]
    fn update_then_rebuild_agree() {
        let mut t = ReferenceTree::build(Key([7, 7]), leaves(200));
        t.update_leaf(123, Block::filled(0xAB));
        t.update_leaf(0, Block::filled(0xCD));
        let rebuilt = ReferenceTree::build(Key([7, 7]), t.levels[0].clone());
        assert_eq!(t.root(), rebuilt.root());
    }

    #[test]
    fn tamper_detected_by_verify_all() {
        let mut t = ReferenceTree::build(Key([1, 2]), leaves(64));
        // Corrupt an interior node directly.
        t.levels[1][3].flip_bit(5);
        let bad = t.verify_all().unwrap_err();
        // The inconsistency is found at the corrupted node's parent or at
        // the node itself (its own children no longer match it).
        assert!(bad.level >= 1);
    }

    #[test]
    fn leaf_tamper_detected() {
        let mut t = ReferenceTree::build(Key([1, 2]), leaves(64));
        t.levels[0][17].flip_bit(0);
        assert_eq!(t.verify_all().unwrap_err(), NodeId::new(1, 2));
    }

    #[test]
    fn different_keys_different_roots() {
        let a = ReferenceTree::build(Key([1, 2]), leaves(10));
        let b = ReferenceTree::build(Key([1, 3]), leaves(10));
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn single_leaf_root_is_leaf_digest() {
        let t = ReferenceTree::build(Key([1, 2]), leaves(1));
        let h = BonsaiHasher::new(Key([1, 2]));
        assert_eq!(t.root(), Root(h.digest(&Block::filled(0))));
    }

    #[test]
    fn swapping_distinct_leaves_changes_root() {
        // Transplants are caught structurally: each parent slot stores the
        // digest of *its* child, so moving content between positions
        // perturbs the parents and hence the root.
        let mut ls = leaves(16);
        let t1 = ReferenceTree::build(Key([1, 2]), ls.clone());
        ls.swap(0, 9);
        let t2 = ReferenceTree::build(Key([1, 2]), ls);
        assert_ne!(t1.root(), t2.root());
    }
}
