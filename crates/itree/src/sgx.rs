//! The parallelizable SGX-style counter tree (paper §2.3.2, Fig. 3).
//!
//! Every 64-byte line — leaf or interior — holds eight 56-bit counters and
//! one 56-bit MAC. A node's MAC covers its own eight counters **plus the
//! one counter in its parent that versions this node**. Incrementing a
//! leaf counter therefore only requires bumping the parent's counter for
//! that child and re-MACing both lines — no hashing of sibling content —
//! which is what makes updates parallelizable.
//!
//! The flip side (paper §3): interior counters are *not* derivable from
//! the leaves. Lose an interior node and the chain of custody from the
//! on-chip top node to the leaf is broken forever — the reason Osiris
//! cannot recover such trees and ASIT exists.
//!
//! [`ReferenceSgxTree`] is the materialized model used by tests and by the
//! `anubis` controllers' verification oracles.

use crate::geometry::{NodeId, TreeGeometry};
use anubis_crypto::hash::Hasher64;
use anubis_crypto::{Key, SgxCounterNode, SGX_COUNTERS_PER_NODE};

/// A fully materialized SGX-style counter tree.
///
/// Level 0 holds the per-data-line encryption counters (8 data lines per
/// leaf). Interior levels hold version counters (8 children per node).
/// The top node's counters live on-chip in the real design; here the tree
/// stores them as `levels.last()` and the controller decides what is
/// on-chip.
///
/// # Example
///
/// ```
/// use anubis_crypto::Key;
/// use anubis_itree::sgx::ReferenceSgxTree;
///
/// let mut tree = ReferenceSgxTree::new(Key([3, 4]), 64);
/// tree.bump_leaf_counter(17); // data line 17 was written
/// assert!(tree.verify_leaf_path(17 / 8).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceSgxTree {
    mac_key: Hasher64,
    geometry: TreeGeometry,
    levels: Vec<Vec<SgxCounterNode>>,
}

/// A broken verification link: the node whose MAC failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacFailure(pub NodeId);

impl core::fmt::Display for MacFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "MAC verification failed at node {}", self.0)
    }
}

impl std::error::Error for MacFailure {}

impl ReferenceSgxTree {
    /// Builds a fresh (all-zero counters) tree covering `n_data_lines`
    /// data lines, 8 per leaf, and seals every node.
    ///
    /// # Panics
    ///
    /// Panics if `n_data_lines == 0`.
    pub fn new(master: Key, n_data_lines: u64) -> Self {
        assert!(n_data_lines > 0, "tree must cover at least one data line");
        let mac_key = Hasher64::new(master.derive("sgx-mac"));
        let n_leaves = n_data_lines.div_ceil(SGX_COUNTERS_PER_NODE as u64);
        let geometry = TreeGeometry::new(n_leaves, 8);
        let mut levels: Vec<Vec<SgxCounterNode>> = (0..geometry.num_levels())
            .map(|l| vec![SgxCounterNode::new(); geometry.nodes_at(l) as usize])
            .collect();
        // Seal all nodes with zero counters.
        for level in 0..geometry.num_levels() {
            for index in 0..geometry.nodes_at(level) {
                let node = NodeId::new(level, index);
                let parent_ctr = Self::parent_counter_of(&geometry, &levels, node);
                levels[level][index as usize].seal(&mac_key, parent_ctr);
            }
        }
        ReferenceSgxTree {
            mac_key,
            geometry,
            levels,
        }
    }

    fn parent_counter_of(
        geometry: &TreeGeometry,
        levels: &[Vec<SgxCounterNode>],
        node: NodeId,
    ) -> u64 {
        match geometry.parent(node) {
            // The top node is versioned by an implicit constant: its
            // counters live on-chip, so replay against it is impossible.
            None => 0,
            Some(p) => levels[p.level][p.index as usize].counter(geometry.child_slot(node)),
        }
    }

    /// The tree's shape.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// The MAC oracle (shared with controllers that re-seal nodes).
    pub fn mac_key(&self) -> &Hasher64 {
        &self.mac_key
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the geometry.
    pub fn node(&self, node: NodeId) -> &SgxCounterNode {
        &self.levels[node.level][node.index as usize]
    }

    /// Replaces a node wholesale (used by tamper tests).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the geometry.
    pub fn set_node(&mut self, node: NodeId, value: SgxCounterNode) {
        self.levels[node.level][node.index as usize] = value;
    }

    /// The encryption counter for a data line.
    pub fn leaf_counter(&self, data_line: u64) -> u64 {
        let leaf = data_line / SGX_COUNTERS_PER_NODE as u64;
        let slot = (data_line % SGX_COUNTERS_PER_NODE as u64) as usize;
        self.levels[0][leaf as usize].counter(slot)
    }

    /// The *eager* update: increments the encryption counter for
    /// `data_line` and the version counter in every ancestor up to the top
    /// node, re-sealing each affected node. Returns the new leaf counter.
    ///
    /// (Controllers implement the *lazy* variant over cached nodes; this
    /// reference tree always propagates fully so tests have a ground
    /// truth for the fully-persisted state.)
    pub fn bump_leaf_counter(&mut self, data_line: u64) -> u64 {
        let leaf_index = data_line / SGX_COUNTERS_PER_NODE as u64;
        let slot = (data_line % SGX_COUNTERS_PER_NODE as u64) as usize;
        // Bump version counters bottom-up: each node's counter for the
        // affected child increments.
        let mut affected = vec![NodeId::new(0, leaf_index)];
        self.levels[0][leaf_index as usize].increment(slot);
        let mut child = NodeId::new(0, leaf_index);
        while let Some(parent) = self.geometry.parent(child) {
            let child_slot = self.geometry.child_slot(child);
            self.levels[parent.level][parent.index as usize].increment(child_slot);
            affected.push(parent);
            child = parent;
        }
        // Re-seal every affected node against its (possibly new) parent
        // counter. Sealing top-down is unnecessary — the MAC only reads
        // counters, which are all final by now.
        for node in affected {
            let pc = Self::parent_counter_of(&self.geometry, &self.levels, node);
            self.levels[node.level][node.index as usize].seal(&self.mac_key, pc);
        }
        self.levels[0][leaf_index as usize].counter(slot)
    }

    /// Verifies the MAC chain from `leaf` up to the top node.
    ///
    /// # Errors
    ///
    /// Returns the first node whose MAC fails.
    pub fn verify_leaf_path(&self, leaf: u64) -> Result<(), MacFailure> {
        let mut node = NodeId::new(0, leaf);
        loop {
            let pc = Self::parent_counter_of(&self.geometry, &self.levels, node);
            if !self.levels[node.level][node.index as usize].verify(&self.mac_key, pc) {
                return Err(MacFailure(node));
            }
            match self.geometry.parent(node) {
                Some(p) => node = p,
                None => return Ok(()),
            }
        }
    }

    /// Verifies every node in the tree.
    ///
    /// # Errors
    ///
    /// Returns the first node whose MAC fails (scanning bottom-up).
    pub fn verify_all(&self) -> Result<(), MacFailure> {
        for level in 0..self.geometry.num_levels() {
            for index in 0..self.geometry.nodes_at(level) {
                let node = NodeId::new(level, index);
                let pc = Self::parent_counter_of(&self.geometry, &self.levels, node);
                if !self.levels[node.level][node.index as usize].verify(&self.mac_key, pc) {
                    return Err(MacFailure(node));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(lines: u64) -> ReferenceSgxTree {
        ReferenceSgxTree::new(Key([9, 9]), lines)
    }

    #[test]
    fn fresh_tree_verifies() {
        let t = tree(512);
        assert!(t.verify_all().is_ok());
    }

    #[test]
    fn bump_updates_whole_path() {
        let mut t = tree(512); // 64 leaves, 3 levels
        assert_eq!(t.bump_leaf_counter(100), 1);
        assert_eq!(t.leaf_counter(100), 1);
        assert_eq!(t.leaf_counter(101), 0);
        // Parent version counters advanced.
        let leaf = NodeId::new(0, 100 / 8);
        let p = t.geometry().parent(leaf).unwrap();
        assert_eq!(t.node(p).counter(t.geometry().child_slot(leaf)), 1);
        assert!(t.verify_all().is_ok());
    }

    #[test]
    fn replay_of_old_leaf_detected() {
        let mut t = tree(64);
        let old = *t.node(NodeId::new(0, 0));
        t.bump_leaf_counter(0);
        // Attacker rolls the leaf back to its (validly MACed) old value.
        t.set_node(NodeId::new(0, 0), old);
        let err = t.verify_leaf_path(0).unwrap_err();
        assert_eq!(
            err.0,
            NodeId::new(0, 0),
            "stale leaf must fail against new parent counter"
        );
    }

    #[test]
    fn interior_tamper_detected() {
        let mut t = tree(512);
        t.bump_leaf_counter(5);
        let node = NodeId::new(1, 0);
        let mut forged = *t.node(node);
        forged.set_counter(3, forged.counter(3) + 1);
        t.set_node(node, forged);
        assert!(t.verify_all().is_err());
    }

    #[test]
    fn lost_interior_node_is_unrecoverable_from_leaves() {
        // The §3 motivation: zeroing an interior node breaks verification
        // even though every leaf is intact — the tree cannot be rebuilt
        // from leaves.
        let mut t = tree(512);
        t.bump_leaf_counter(0);
        t.set_node(NodeId::new(1, 0), SgxCounterNode::new());
        assert!(t.verify_leaf_path(0).is_err());
    }

    #[test]
    fn independent_subtrees_unaffected() {
        let mut t = tree(512);
        t.bump_leaf_counter(0);
        // A leaf in a different L1 subtree still verifies even if we only
        // check its own path.
        assert!(t.verify_leaf_path(63).is_ok());
    }

    #[test]
    fn many_bumps_keep_consistency() {
        let mut t = tree(128);
        for i in 0..200u64 {
            t.bump_leaf_counter(i % 128);
        }
        assert!(t.verify_all().is_ok());
        assert_eq!(t.leaf_counter(0), 2);
        assert_eq!(t.leaf_counter(127), 1);
    }

    #[test]
    fn counters_cover_ragged_last_leaf() {
        let t = tree(10); // 2 leaves, second only half used
        assert_eq!(t.geometry().num_leaves(), 2);
        assert!(t.verify_all().is_ok());
    }
}
