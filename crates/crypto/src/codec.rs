//! The per-block secure data path: counter-mode encryption + encrypted
//! plaintext ECC (Osiris) + Bonsai-style data MAC.

use crate::ecc;
use crate::error::CryptoError;
use crate::hash::Hasher64;
use crate::otp::{self, IvCounter};
use crate::speck::Speck128;
use crate::Key;
use anubis_nvm::{Block, BlockAddr};

/// What the memory controller actually stores for one data line:
/// the ciphertext plus two encrypted 8-byte side words.
///
/// On a real DIMM the ECC word lives in the spare ECC bits and the MAC in
/// spare bits or a colocated scheme (Synergy); neither costs an extra
/// memory transaction, which is how the timing model treats them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SealedBlock {
    /// Counter-mode encrypted data.
    pub ciphertext: Block,
    /// ECC of the plaintext, encrypted under the ECC pad lane.
    pub ecc: u64,
    /// MAC over (plaintext, counter, address), truncated to 64 bits.
    pub mac: u64,
}

/// Encrypts and authenticates data blocks under a processor key pair.
///
/// This is the Bonsai Merkle Tree data path (paper §2.3): counters are
/// integrity-protected by the tree, data is protected by a MAC over the
/// data and its counter, and the plaintext ECC rides along encrypted so
/// that recovery can test candidate counters (Osiris, §2.4).
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, DataCodec, otp::IvCounter};
/// use anubis_nvm::{Block, BlockAddr};
/// let codec = DataCodec::new(Key([1, 2]));
/// let addr = BlockAddr::new(10);
/// let ctr = IvCounter::split(0, 3);
/// let sealed = codec.seal(addr, ctr, &Block::filled(0x77));
/// let opened = codec.open(addr, ctr, &sealed)?;
/// assert_eq!(opened, Block::filled(0x77));
/// # Ok::<(), anubis_crypto::CryptoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DataCodec {
    /// Precomputed Speck schedule for the data-encryption key. Every
    /// seal/open/probe used to re-expand the 32-round schedule (twice:
    /// block pad + side-word pad); recovery probes millions of blocks, so
    /// the schedule is expanded once at construction and reused.
    enc: Speck128,
    mac: Hasher64,
}

impl DataCodec {
    /// Derives the encryption and MAC keys from a master key.
    pub fn new(master: Key) -> Self {
        DataCodec {
            enc: Speck128::new(master.derive("data-encryption")),
            mac: Hasher64::new(master.derive("data-mac")),
        }
    }

    /// Encrypts `plaintext` for storage at `addr` under `counter`.
    pub fn seal(&self, addr: BlockAddr, counter: IvCounter, plaintext: &Block) -> SealedBlock {
        let ciphertext = otp::encrypt_with(&self.enc, addr, counter, plaintext);
        let ecc_plain = ecc::ecc_block(plaintext);
        let side_pad = otp::pad_word_with(&self.enc, addr, counter);
        SealedBlock {
            ciphertext,
            ecc: ecc_plain ^ side_pad,
            mac: self.data_mac(addr, counter, plaintext),
        }
    }

    /// Seals a batch of blocks under one precomputed key schedule, in
    /// input order — the bulk path for re-encryption sweeps and parallel
    /// recovery lanes.
    pub fn seal_batch(&self, items: &[(BlockAddr, IvCounter, Block)]) -> Vec<SealedBlock> {
        items
            .iter()
            .map(|(addr, ctr, pt)| self.seal(*addr, *ctr, pt))
            .collect()
    }

    /// Decrypts and fully verifies a sealed block.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::EccMismatch`] — wrong counter or corrupted
    ///   ciphertext/ECC.
    /// * [`CryptoError::DataMacMismatch`] — ECC passed but the
    ///   authentication MAC failed (targeted tampering).
    pub fn open(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Result<Block, CryptoError> {
        let plaintext = self
            .probe(addr, counter, sealed)
            .ok_or(CryptoError::EccMismatch)?;
        if sealed.mac != self.data_mac(addr, counter, &plaintext) {
            return Err(CryptoError::DataMacMismatch);
        }
        Ok(plaintext)
    }

    /// Decrypts like [`open`](Self::open), but runs the SEC-DED decoder
    /// when the strict check fails: because the cipher is a counter-mode
    /// XOR, a flipped ciphertext bit is a flipped plaintext bit, so the
    /// per-word Hamming(72,64) code can repair one flip per word and the
    /// MAC then re-verifies the repaired plaintext end to end.
    ///
    /// Returns the plaintext and the number of repaired words (0 for a
    /// clean block — the common case takes the same fast path as `open`).
    ///
    /// # Errors
    ///
    /// * [`CryptoError::UncorrectableEcc`] — multi-bit corruption the
    ///   code can detect but not repair. The caller must not serve data.
    /// * [`CryptoError::DataMacMismatch`] — the (possibly repaired)
    ///   plaintext fails authentication: the stored counter is stale or
    ///   the block was tampered with rather than randomly flipped.
    pub fn open_correcting(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Result<(Block, u32), CryptoError> {
        match self.open(addr, counter, sealed) {
            Ok(pt) => Ok((pt, 0)),
            Err(CryptoError::EccMismatch) => {
                let plaintext = otp::decrypt_with(&self.enc, addr, counter, &sealed.ciphertext);
                let side_pad = otp::pad_word_with(&self.enc, addr, counter);
                let decoded = ecc::correct_block(&plaintext, sealed.ecc ^ side_pad)
                    .ok_or(CryptoError::UncorrectableEcc)?;
                if sealed.mac != self.data_mac(addr, counter, &decoded.data) {
                    return Err(CryptoError::DataMacMismatch);
                }
                Ok((decoded.data, decoded.corrected_words))
            }
            Err(e) => Err(e),
        }
    }

    /// The Osiris primitive: attempts decryption with `counter` and returns
    /// the plaintext only if the decrypted ECC sanity check passes. Does
    /// *not* check the data MAC — recovery verifies integrity via the tree
    /// root afterwards.
    pub fn probe(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Option<Block> {
        let plaintext = otp::decrypt_with(&self.enc, addr, counter, &sealed.ciphertext);
        let side_pad = otp::pad_word_with(&self.enc, addr, counter);
        ecc::check_block(&plaintext, sealed.ecc ^ side_pad).then_some(plaintext)
    }

    /// Opens a batch of sealed blocks under one precomputed key schedule,
    /// in input order; each element verifies independently.
    pub fn open_batch(
        &self,
        items: &[(BlockAddr, IvCounter, SealedBlock)],
    ) -> Vec<Result<Block, CryptoError>> {
        items
            .iter()
            .map(|(addr, ctr, sealed)| self.open(*addr, *ctr, sealed))
            .collect()
    }

    /// Runs the Osiris trial loop: tries `candidates` in order and returns
    /// the index of the first counter whose ECC check passes.
    ///
    /// # Errors
    ///
    /// [`CryptoError::CounterNotRecovered`] if no candidate passes.
    pub fn osiris_recover(
        &self,
        addr: BlockAddr,
        candidates: impl IntoIterator<Item = IvCounter>,
        sealed: &SealedBlock,
    ) -> Result<(usize, Block), CryptoError> {
        let mut trials = 0u32;
        for (i, ctr) in candidates.into_iter().enumerate() {
            trials += 1;
            if let Some(pt) = self.probe(addr, ctr, sealed) {
                return Ok((i, pt));
            }
        }
        Err(CryptoError::CounterNotRecovered { trials })
    }

    fn data_mac(&self, addr: BlockAddr, counter: IvCounter, plaintext: &Block) -> u64 {
        let mut bytes = Vec::with_capacity(64 + 24);
        bytes.extend_from_slice(plaintext.as_bytes());
        bytes.extend_from_slice(&addr.index().to_le_bytes());
        bytes.extend_from_slice(&counter.major.to_le_bytes());
        bytes.extend_from_slice(&counter.minor.to_le_bytes());
        self.mac.hash(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> DataCodec {
        DataCodec::new(Key([77, 88]))
    }

    fn ctr(minor: u64) -> IvCounter {
        IvCounter::split(2, minor)
    }

    #[test]
    fn seal_open_roundtrip() {
        let c = codec();
        let pt = Block::from_words([10, 20, 30, 40, 50, 60, 70, 80]);
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &pt);
        assert_eq!(c.open(BlockAddr::new(5), ctr(1), &sealed).unwrap(), pt);
    }

    #[test]
    fn wrong_counter_fails_ecc() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        assert_eq!(
            c.open(BlockAddr::new(5), ctr(2), &sealed),
            Err(CryptoError::EccMismatch)
        );
    }

    #[test]
    fn wrong_address_fails_ecc() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        assert!(c.open(BlockAddr::new(6), ctr(1), &sealed).is_err());
    }

    #[test]
    fn ciphertext_tamper_fails() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.ciphertext.flip_bit(3);
        assert!(c.open(BlockAddr::new(5), ctr(1), &sealed).is_err());
    }

    #[test]
    fn mac_tamper_detected_even_if_ecc_passes() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.mac ^= 1;
        assert_eq!(
            c.open(BlockAddr::new(5), ctr(1), &sealed),
            Err(CryptoError::DataMacMismatch)
        );
    }

    #[test]
    fn osiris_recovers_recent_counter() {
        // Memory holds a counter persisted at minor=4 (stop-loss write);
        // the block was actually encrypted at minor=6. Trials walk forward.
        let c = codec();
        let pt = Block::filled(0xCD);
        let sealed = c.seal(BlockAddr::new(9), ctr(6), &pt);
        let candidates = (4..8).map(ctr);
        let (idx, recovered) = c
            .osiris_recover(BlockAddr::new(9), candidates, &sealed)
            .unwrap();
        assert_eq!(idx, 2); // 4, 5, then 6 matches
        assert_eq!(recovered, pt);
    }

    #[test]
    fn osiris_fails_outside_stop_loss_window() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(9), ctr(10), &Block::filled(1));
        let candidates = (4..8).map(ctr);
        assert_eq!(
            c.osiris_recover(BlockAddr::new(9), candidates, &sealed),
            Err(CryptoError::CounterNotRecovered { trials: 4 })
        );
    }

    #[test]
    fn open_correcting_repairs_single_ciphertext_flips() {
        let c = codec();
        let pt = Block::from_words([9, 8, 7, 6, 5, 4, 3, 2]);
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &pt);
        sealed.ciphertext.flip_bit(130); // one flip, word 2
        assert!(c.open(BlockAddr::new(5), ctr(1), &sealed).is_err());
        let (opened, fixed) = c
            .open_correcting(BlockAddr::new(5), ctr(1), &sealed)
            .unwrap();
        assert_eq!(opened, pt);
        assert_eq!(fixed, 1);
    }

    #[test]
    fn open_correcting_reports_multi_bit_damage() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.ciphertext.flip_bit(0);
        sealed.ciphertext.flip_bit(1); // two flips in the same word
        assert_eq!(
            c.open_correcting(BlockAddr::new(5), ctr(1), &sealed),
            Err(CryptoError::UncorrectableEcc)
        );
    }

    #[test]
    fn open_correcting_never_launders_a_wrong_counter() {
        // A stale counter produces a pseudorandom plaintext; the decoder
        // must not "repair" it into something served as data — the MAC
        // (or multi-bit detection) must fire.
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(6), &Block::filled(9));
        let out = c.open_correcting(BlockAddr::new(5), ctr(2), &sealed);
        assert!(
            matches!(
                out,
                Err(CryptoError::UncorrectableEcc) | Err(CryptoError::DataMacMismatch)
            ),
            "stale counter must be a typed failure, got {out:?}"
        );
    }

    #[test]
    fn batch_paths_match_single_block_paths() {
        let c = codec();
        let items: Vec<(BlockAddr, IvCounter, Block)> = (0..8)
            .map(|i| (BlockAddr::new(i), ctr(i + 1), Block::filled(i as u8)))
            .collect();
        let sealed = c.seal_batch(&items);
        for (i, (addr, iv, pt)) in items.iter().enumerate() {
            assert_eq!(sealed[i], c.seal(*addr, *iv, pt));
        }
        let to_open: Vec<(BlockAddr, IvCounter, SealedBlock)> = items
            .iter()
            .zip(&sealed)
            .map(|((addr, iv, _), s)| (*addr, *iv, *s))
            .collect();
        for (res, (_, _, pt)) in c.open_batch(&to_open).iter().zip(&items) {
            assert_eq!(res.as_ref().unwrap(), pt);
        }
    }

    #[test]
    fn probe_does_not_require_mac() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(9), ctr(3), &Block::filled(1));
        sealed.mac = 0; // destroyed MAC
        assert!(c.probe(BlockAddr::new(9), ctr(3), &sealed).is_some());
    }
}
