//! The per-block secure data path: counter-mode encryption + encrypted
//! plaintext ECC (Osiris) + Bonsai-style data MAC.

use crate::ecc;
use crate::error::CryptoError;
use crate::otp::{self, IvCounter, PadSet};
use crate::speck::Speck128;
use crate::Key;
use anubis_nvm::{Block, BlockAddr};

/// What the memory controller actually stores for one data line:
/// the ciphertext plus two encrypted 8-byte side words.
///
/// On a real DIMM the ECC word lives in the spare ECC bits and the MAC in
/// spare bits or a colocated scheme (Synergy); neither costs an extra
/// memory transaction, which is how the timing model treats them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SealedBlock {
    /// Counter-mode encrypted data.
    pub ciphertext: Block,
    /// ECC of the plaintext, encrypted under the ECC pad lane.
    pub ecc: u64,
    /// MAC over (plaintext, counter, address), truncated to 64 bits.
    pub mac: u64,
}

/// Encrypts and authenticates data blocks under a processor key pair.
///
/// This is the Bonsai Merkle Tree data path (paper §2.3): counters are
/// integrity-protected by the tree, data is protected by a MAC over the
/// data and its counter, and the plaintext ECC rides along encrypted so
/// that recovery can test candidate counters (Osiris, §2.4).
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, DataCodec, otp::IvCounter};
/// use anubis_nvm::{Block, BlockAddr};
/// let codec = DataCodec::new(Key([1, 2]));
/// let addr = BlockAddr::new(10);
/// let ctr = IvCounter::split(0, 3);
/// let sealed = codec.seal(addr, ctr, &Block::filled(0x77));
/// let opened = codec.open(addr, ctr, &sealed)?;
/// assert_eq!(opened, Block::filled(0x77));
/// # Ok::<(), anubis_crypto::CryptoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DataCodec {
    /// Precomputed Speck schedule for the data-encryption key. Every
    /// seal/open/probe used to re-expand the 32-round schedule (twice:
    /// block pad + side-word pad); recovery probes millions of blocks, so
    /// the schedule is expanded once at construction and reused.
    enc: Speck128,
    /// Precomputed schedule for the MAC finalization PRF.
    mac_fin: Speck128,
    /// Odd multipliers for the two universal-hash lanes of the data MAC.
    mac_r: (u64, u64),
}

impl DataCodec {
    /// Derives the encryption and MAC keys from a master key.
    pub fn new(master: Key) -> Self {
        let mac_fin = Speck128::new(master.derive("data-mac"));
        // Poly-hash multipliers derived from the MAC key; forced odd so
        // each multiply is a bijection on u64 (no vanishing lanes).
        let r = mac_fin.encrypt((0x6461_7461_2d6d_6163, 0x706f_6c79_2d6b_6579));
        DataCodec {
            enc: Speck128::new(master.derive("data-encryption")),
            mac_fin,
            mac_r: (r.0 | 1, r.1 | 1),
        }
    }

    /// Encrypts `plaintext` for storage at `addr` under `counter`.
    ///
    /// One fused pad pass produces the four data lanes, the ECC side pad
    /// and the MAC tweak (five Speck calls under the precomputed
    /// schedule); the MAC itself is a two-lane universal hash over the
    /// plaintext words plus one finalization PRF call. Nothing is heap
    /// allocated.
    pub fn seal(&self, addr: BlockAddr, counter: IvCounter, plaintext: &Block) -> SealedBlock {
        self.seal_with_pads(&otp::pad_set_with(&self.enc, addr, counter), plaintext)
    }

    fn seal_with_pads(&self, pads: &PadSet, plaintext: &Block) -> SealedBlock {
        SealedBlock {
            ciphertext: plaintext.xored(&pads.data),
            ecc: ecc::ecc_block(plaintext) ^ pads.side,
            mac: self.mac_from(pads.tweak, plaintext),
        }
    }

    /// Seals a batch of blocks in input order, writing into a caller-owned
    /// buffer — the bulk path for commit groups, re-encryption sweeps and
    /// parallel recovery lanes. The whole group runs under the one
    /// precomputed key schedule with fused per-item pad generation, and a
    /// reused `out` makes the steady state allocation-free. Bit-identical
    /// to calling [`seal`](Self::seal) per element.
    pub fn seal_batch_into(
        &self,
        items: &[(BlockAddr, IvCounter, Block)],
        out: &mut Vec<SealedBlock>,
    ) {
        out.clear();
        out.reserve(items.len());
        for (addr, ctr, pt) in items {
            let pads = otp::pad_set_with(&self.enc, *addr, *ctr);
            out.push(self.seal_with_pads(&pads, pt));
        }
    }

    /// [`seal_batch_into`](Self::seal_batch_into) returning a fresh `Vec`.
    pub fn seal_batch(&self, items: &[(BlockAddr, IvCounter, Block)]) -> Vec<SealedBlock> {
        let mut out = Vec::new();
        self.seal_batch_into(items, &mut out);
        out
    }

    /// Decrypts and fully verifies a sealed block.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::EccMismatch`] — wrong counter or corrupted
    ///   ciphertext/ECC.
    /// * [`CryptoError::DataMacMismatch`] — ECC passed but the
    ///   authentication MAC failed (targeted tampering).
    pub fn open(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Result<Block, CryptoError> {
        let pads = otp::pad_set_with(&self.enc, addr, counter);
        let plaintext = sealed.ciphertext.xored(&pads.data);
        if !ecc::check_block(&plaintext, sealed.ecc ^ pads.side) {
            return Err(CryptoError::EccMismatch);
        }
        if sealed.mac != self.mac_from(pads.tweak, &plaintext) {
            return Err(CryptoError::DataMacMismatch);
        }
        Ok(plaintext)
    }

    /// Decrypts like [`open`](Self::open), but runs the SEC-DED decoder
    /// when the strict check fails: because the cipher is a counter-mode
    /// XOR, a flipped ciphertext bit is a flipped plaintext bit, so the
    /// per-word Hamming(72,64) code can repair one flip per word and the
    /// MAC then re-verifies the repaired plaintext end to end.
    ///
    /// Returns the plaintext and the number of repaired words (0 for a
    /// clean block — the common case decrypts, checks and MACs off one
    /// fused pad set with no heap allocation and no recomputation).
    ///
    /// # Errors
    ///
    /// * [`CryptoError::UncorrectableEcc`] — multi-bit corruption the
    ///   code can detect but not repair. The caller must not serve data.
    /// * [`CryptoError::DataMacMismatch`] — the (possibly repaired)
    ///   plaintext fails authentication: the stored counter is stale or
    ///   the block was tampered with rather than randomly flipped.
    pub fn open_correcting(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Result<(Block, u32), CryptoError> {
        let pads = otp::pad_set_with(&self.enc, addr, counter);
        let plaintext = sealed.ciphertext.xored(&pads.data);
        let ecc_plain = sealed.ecc ^ pads.side;
        if ecc::check_block(&plaintext, ecc_plain) {
            if sealed.mac != self.mac_from(pads.tweak, &plaintext) {
                return Err(CryptoError::DataMacMismatch);
            }
            return Ok((plaintext, 0));
        }
        // Strict check failed: try to repair the already-decrypted
        // plaintext in place (the pads are still valid — correction never
        // changes the IV).
        let decoded =
            ecc::correct_block(&plaintext, ecc_plain).ok_or(CryptoError::UncorrectableEcc)?;
        if sealed.mac != self.mac_from(pads.tweak, &decoded.data) {
            return Err(CryptoError::DataMacMismatch);
        }
        Ok((decoded.data, decoded.corrected_words))
    }

    /// [`open_correcting`](Self::open_correcting) with a per-controller
    /// [`MacCache`] consulted first: if this exact sealed image was
    /// already MAC-verified clean at this `(addr, counter)` — the common
    /// case for a read of an unmodified line on a clean counter-cache hit
    /// — only the decrypt + ECC sanity check runs and the MAC
    /// recomputation is skipped. Any mismatch (evicted, modified, or
    /// corrupted line) falls back to the full verifying path, so the
    /// result is always identical to `open_correcting`; only clean
    /// (zero-correction) verifications are ever cached.
    pub fn open_correcting_cached(
        &self,
        cache: &mut MacCache,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Result<(Block, u32), CryptoError> {
        let fp = self.line_fingerprint(addr, counter, sealed);
        if cache.contains(addr, fp) {
            let pads = otp::pad_set_with(&self.enc, addr, counter);
            let plaintext = sealed.ciphertext.xored(&pads.data);
            if ecc::check_block(&plaintext, sealed.ecc ^ pads.side) {
                cache.hits += 1;
                return Ok((plaintext, 0));
            }
            // The stored image changed under us (e.g. in-flight fault):
            // drop the stale entry and take the full path.
            cache.invalidate(addr);
        }
        cache.misses += 1;
        let out = self.open_correcting(addr, counter, sealed);
        if let Ok((_, 0)) = out {
            cache.record(addr, fp);
        }
        out
    }

    /// Records a freshly sealed line as MAC-verified, so the next read of
    /// the unmodified line takes the [`open_correcting_cached`]
    /// (Self::open_correcting_cached) fast path.
    pub fn note_sealed(
        &self,
        cache: &mut MacCache,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) {
        let fp = self.line_fingerprint(addr, counter, sealed);
        cache.record(addr, fp);
    }

    /// The Osiris primitive: attempts decryption with `counter` and returns
    /// the plaintext only if the decrypted ECC sanity check passes. Does
    /// *not* check the data MAC — recovery verifies integrity via the tree
    /// root afterwards.
    pub fn probe(
        &self,
        addr: BlockAddr,
        counter: IvCounter,
        sealed: &SealedBlock,
    ) -> Option<Block> {
        let pads = otp::pad_set_with(&self.enc, addr, counter);
        let plaintext = sealed.ciphertext.xored(&pads.data);
        ecc::check_block(&plaintext, sealed.ecc ^ pads.side).then_some(plaintext)
    }

    /// Opens a batch of sealed blocks in input order, writing into a
    /// caller-owned buffer; each element verifies independently. Shares
    /// the one precomputed key schedule across the group and reuses `out`
    /// so the steady state is allocation-free. Bit-identical to calling
    /// [`open`](Self::open) per element.
    pub fn open_batch_into(
        &self,
        items: &[(BlockAddr, IvCounter, SealedBlock)],
        out: &mut Vec<Result<Block, CryptoError>>,
    ) {
        out.clear();
        out.reserve(items.len());
        for (addr, ctr, sealed) in items {
            out.push(self.open(*addr, *ctr, sealed));
        }
    }

    /// [`open_batch_into`](Self::open_batch_into) returning a fresh `Vec`.
    pub fn open_batch(
        &self,
        items: &[(BlockAddr, IvCounter, SealedBlock)],
    ) -> Vec<Result<Block, CryptoError>> {
        let mut out = Vec::new();
        self.open_batch_into(items, &mut out);
        out
    }

    /// Runs the Osiris trial loop: tries `candidates` in order and returns
    /// the index of the first counter whose ECC check passes.
    ///
    /// # Errors
    ///
    /// [`CryptoError::CounterNotRecovered`] if no candidate passes.
    pub fn osiris_recover(
        &self,
        addr: BlockAddr,
        candidates: impl IntoIterator<Item = IvCounter>,
        sealed: &SealedBlock,
    ) -> Result<(usize, Block), CryptoError> {
        let mut trials = 0u32;
        for (i, ctr) in candidates.into_iter().enumerate() {
            trials += 1;
            if let Some(pt) = self.probe(addr, ctr, sealed) {
                return Ok((i, pt));
            }
        }
        Err(CryptoError::CounterNotRecovered { trials })
    }

    /// MAC over `(plaintext, addr, counter)`, truncated to 64 bits.
    ///
    /// Carter–Wegman shape standing in for the GMAC hardware of a real
    /// memory encryption engine: two lanes of xor-multiply universal
    /// hashing over the eight plaintext words (the odd multipliers make
    /// every step a bijection), keyed per line by `tweak` — the side
    /// lane's second PRF word, which already binds `(addr, major, minor)`
    /// — and finalized with one Speck call under the MAC key. Replaces a
    /// Davies–Meyer pass that expanded six fresh key schedules and heap-
    /// allocated an 88-byte buffer per MAC.
    pub fn data_mac(&self, tweak: u64, plaintext: &Block) -> u64 {
        self.mac_from(tweak, plaintext)
    }

    fn mac_from(&self, tweak: u64, plaintext: &Block) -> u64 {
        let (r0, r1) = self.mac_r;
        let mut a0 = tweak;
        let mut a1 = tweak.rotate_left(32);
        for w in plaintext.words() {
            a0 = (a0 ^ w).wrapping_mul(r0);
            a1 = (a1 ^ w).wrapping_mul(r1);
        }
        let f = self.mac_fin.encrypt((a0, a1));
        f.0 ^ f.1
    }

    /// Compressed identity of one stored line for the [`MacCache`]:
    /// keyed universal hash over the full sealed image (ciphertext, ECC,
    /// MAC) and its `(addr, counter)` binding. Two lines that differ
    /// anywhere fingerprint differently except with negligible
    /// probability, and the multipliers are secret-derived, so a tamperer
    /// cannot aim for a colliding image.
    fn line_fingerprint(&self, addr: BlockAddr, counter: IvCounter, sealed: &SealedBlock) -> u64 {
        let (r0, r1) = self.mac_r;
        let mut a0 = addr.index() ^ counter.minor.rotate_left(32);
        let mut a1 = counter.major ^ counter.minor;
        for w in sealed.ciphertext.words() {
            a0 = (a0 ^ w).wrapping_mul(r0);
            a1 = (a1 ^ w).wrapping_mul(r1);
        }
        a0 = (a0 ^ sealed.ecc).wrapping_mul(r0);
        a1 = (a1 ^ sealed.mac).wrapping_mul(r1);
        a0 ^ a1.rotate_left(32)
    }
}

/// Direct-mapped cache of MAC-verified line fingerprints.
///
/// Models a small on-controller SRAM structure: each slot remembers the
/// fingerprint of the last sealed image that passed full MAC
/// verification (or was just sealed) for addresses mapping to it. Purely
/// a performance hint — a hit only skips the MAC *recomputation*; the
/// decrypt + ECC check still runs, and any fingerprint mismatch falls
/// back to the fully verifying path. Volatile by construction: it holds
/// no recoverable state and must simply be cleared on crash.
#[derive(Clone, Debug)]
pub struct MacCache {
    slots: Vec<u64>,
    /// Slot-index mask (`capacity - 1`; capacity is a power of two).
    mask: usize,
    hits: u64,
    misses: u64,
}

/// Empty-slot sentinel: fingerprints are remapped off this value.
const MAC_CACHE_EMPTY: u64 = 0;

impl MacCache {
    /// Default slot count for a per-controller cache (64 KiB-line working
    /// sets map fully; larger sets degrade gracefully by eviction).
    pub const DEFAULT_SLOTS: usize = 1024;

    /// Creates a cache with `slots` entries, rounded up to a power of two.
    pub fn new(slots: usize) -> Self {
        let cap = slots.next_power_of_two().max(1);
        MacCache {
            slots: vec![MAC_CACHE_EMPTY; cap],
            mask: cap - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Drops every cached verification (crash / recovery entry point).
    pub fn clear(&mut self) {
        self.slots.fill(MAC_CACHE_EMPTY);
    }

    /// Lines whose MAC recomputation was skipped.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lines that took the full verifying path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn slot(&self, addr: BlockAddr) -> usize {
        addr.index() as usize & self.mask
    }

    fn contains(&self, addr: BlockAddr, fp: u64) -> bool {
        self.slots[self.slot(addr)] == Self::encode(fp)
    }

    fn record(&mut self, addr: BlockAddr, fp: u64) {
        let slot = self.slot(addr);
        self.slots[slot] = Self::encode(fp);
    }

    fn invalidate(&mut self, addr: BlockAddr) {
        let slot = self.slot(addr);
        self.slots[slot] = MAC_CACHE_EMPTY;
    }

    /// Keeps real fingerprints disjoint from the empty sentinel.
    fn encode(fp: u64) -> u64 {
        if fp == MAC_CACHE_EMPTY {
            1
        } else {
            fp
        }
    }
}

impl Default for MacCache {
    fn default() -> Self {
        MacCache::new(Self::DEFAULT_SLOTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> DataCodec {
        DataCodec::new(Key([77, 88]))
    }

    fn ctr(minor: u64) -> IvCounter {
        IvCounter::split(2, minor)
    }

    #[test]
    fn seal_open_roundtrip() {
        let c = codec();
        let pt = Block::from_words([10, 20, 30, 40, 50, 60, 70, 80]);
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &pt);
        assert_eq!(c.open(BlockAddr::new(5), ctr(1), &sealed).unwrap(), pt);
    }

    #[test]
    fn wrong_counter_fails_ecc() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        assert_eq!(
            c.open(BlockAddr::new(5), ctr(2), &sealed),
            Err(CryptoError::EccMismatch)
        );
    }

    #[test]
    fn wrong_address_fails_ecc() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        assert!(c.open(BlockAddr::new(6), ctr(1), &sealed).is_err());
    }

    #[test]
    fn ciphertext_tamper_fails() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.ciphertext.flip_bit(3);
        assert!(c.open(BlockAddr::new(5), ctr(1), &sealed).is_err());
    }

    #[test]
    fn mac_tamper_detected_even_if_ecc_passes() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.mac ^= 1;
        assert_eq!(
            c.open(BlockAddr::new(5), ctr(1), &sealed),
            Err(CryptoError::DataMacMismatch)
        );
    }

    #[test]
    fn osiris_recovers_recent_counter() {
        // Memory holds a counter persisted at minor=4 (stop-loss write);
        // the block was actually encrypted at minor=6. Trials walk forward.
        let c = codec();
        let pt = Block::filled(0xCD);
        let sealed = c.seal(BlockAddr::new(9), ctr(6), &pt);
        let candidates = (4..8).map(ctr);
        let (idx, recovered) = c
            .osiris_recover(BlockAddr::new(9), candidates, &sealed)
            .unwrap();
        assert_eq!(idx, 2); // 4, 5, then 6 matches
        assert_eq!(recovered, pt);
    }

    #[test]
    fn osiris_fails_outside_stop_loss_window() {
        let c = codec();
        let sealed = c.seal(BlockAddr::new(9), ctr(10), &Block::filled(1));
        let candidates = (4..8).map(ctr);
        assert_eq!(
            c.osiris_recover(BlockAddr::new(9), candidates, &sealed),
            Err(CryptoError::CounterNotRecovered { trials: 4 })
        );
    }

    #[test]
    fn open_correcting_repairs_single_ciphertext_flips() {
        let c = codec();
        let pt = Block::from_words([9, 8, 7, 6, 5, 4, 3, 2]);
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &pt);
        sealed.ciphertext.flip_bit(130); // one flip, word 2
        assert!(c.open(BlockAddr::new(5), ctr(1), &sealed).is_err());
        let (opened, fixed) = c
            .open_correcting(BlockAddr::new(5), ctr(1), &sealed)
            .unwrap();
        assert_eq!(opened, pt);
        assert_eq!(fixed, 1);
    }

    #[test]
    fn open_correcting_reports_multi_bit_damage() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(5), ctr(1), &Block::filled(9));
        sealed.ciphertext.flip_bit(0);
        sealed.ciphertext.flip_bit(1); // two flips in the same word
        assert_eq!(
            c.open_correcting(BlockAddr::new(5), ctr(1), &sealed),
            Err(CryptoError::UncorrectableEcc)
        );
    }

    #[test]
    fn open_correcting_never_launders_a_wrong_counter() {
        // A stale counter produces a pseudorandom plaintext; the decoder
        // must not "repair" it into something served as data — the MAC
        // (or multi-bit detection) must fire.
        let c = codec();
        let sealed = c.seal(BlockAddr::new(5), ctr(6), &Block::filled(9));
        let out = c.open_correcting(BlockAddr::new(5), ctr(2), &sealed);
        assert!(
            matches!(
                out,
                Err(CryptoError::UncorrectableEcc) | Err(CryptoError::DataMacMismatch)
            ),
            "stale counter must be a typed failure, got {out:?}"
        );
    }

    #[test]
    fn batch_paths_match_single_block_paths() {
        let c = codec();
        let items: Vec<(BlockAddr, IvCounter, Block)> = (0..8)
            .map(|i| (BlockAddr::new(i), ctr(i + 1), Block::filled(i as u8)))
            .collect();
        let sealed = c.seal_batch(&items);
        for (i, (addr, iv, pt)) in items.iter().enumerate() {
            assert_eq!(sealed[i], c.seal(*addr, *iv, pt));
        }
        let to_open: Vec<(BlockAddr, IvCounter, SealedBlock)> = items
            .iter()
            .zip(&sealed)
            .map(|((addr, iv, _), s)| (*addr, *iv, *s))
            .collect();
        for (res, (_, _, pt)) in c.open_batch(&to_open).iter().zip(&items) {
            assert_eq!(res.as_ref().unwrap(), pt);
        }
    }

    #[test]
    fn probe_does_not_require_mac() {
        let c = codec();
        let mut sealed = c.seal(BlockAddr::new(9), ctr(3), &Block::filled(1));
        sealed.mac = 0; // destroyed MAC
        assert!(c.probe(BlockAddr::new(9), ctr(3), &sealed).is_some());
    }

    #[test]
    fn data_mac_domain_separation() {
        // The same plaintext sealed at a different address, major or
        // minor counter must carry a different MAC — otherwise a replayed
        // (ciphertext, ecc, mac) triple from elsewhere could authenticate.
        let c = codec();
        let pt = Block::filled(0x5A);
        let base = c.seal(BlockAddr::new(5), IvCounter::split(2, 3), &pt).mac;
        let variants = [
            c.seal(BlockAddr::new(6), IvCounter::split(2, 3), &pt).mac,
            c.seal(BlockAddr::new(5), IvCounter::split(3, 3), &pt).mac,
            c.seal(BlockAddr::new(5), IvCounter::split(2, 4), &pt).mac,
            c.seal(BlockAddr::new(5), IvCounter::monolithic(3), &pt).mac,
        ];
        for (i, m) in variants.iter().enumerate() {
            assert_ne!(base, *m, "variant {i} collided with the base MAC");
        }
        // And all pairwise distinct among themselves.
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                assert_ne!(variants[i], variants[j], "variants {i} and {j} collided");
            }
        }
    }

    #[test]
    fn data_mac_key_separation() {
        // Different master keys must give unrelated MACs for identical
        // (addr, counter, plaintext).
        let a = DataCodec::new(Key([1, 2]));
        let b = DataCodec::new(Key([1, 3]));
        let pt = Block::filled(7);
        assert_ne!(
            a.seal(BlockAddr::new(5), ctr(1), &pt).mac,
            b.seal(BlockAddr::new(5), ctr(1), &pt).mac
        );
    }

    #[test]
    fn batch_matches_scalar_randomized() {
        // Property test: for random (addr, counter, plaintext) triples,
        // the batch paths are bit-identical to the scalar paths — both
        // the Vec-returning wrappers and the `_into` buffer-reuse forms.
        use anubis_nvm::SplitMix64;
        let c = codec();
        let mut sealed_buf = Vec::new();
        let mut open_buf = Vec::new();
        for seed in 0..16u64 {
            let mut rng = SplitMix64::new(0xBA7C * 31 + seed);
            let n = (rng.next_u64() % 65) as usize; // includes empty batches
            let items: Vec<(BlockAddr, IvCounter, Block)> = (0..n)
                .map(|_| {
                    let addr = BlockAddr::new(rng.next_u64() % (1 << 34));
                    let iv = if rng.next_u64() & 1 == 0 {
                        IvCounter::split(rng.next_u64() % 1024, rng.next_u64() % (1 << 30))
                    } else {
                        IvCounter::monolithic(rng.next_u64() & ((1 << 56) - 1))
                    };
                    let mut words = [0u64; 8];
                    for w in &mut words {
                        *w = rng.next_u64();
                    }
                    (addr, iv, Block::from_words(words))
                })
                .collect();

            c.seal_batch_into(&items, &mut sealed_buf);
            assert_eq!(sealed_buf, c.seal_batch(&items));
            for (i, (addr, iv, pt)) in items.iter().enumerate() {
                assert_eq!(
                    sealed_buf[i],
                    c.seal(*addr, *iv, pt),
                    "seed {seed} item {i}"
                );
            }

            let to_open: Vec<(BlockAddr, IvCounter, SealedBlock)> = items
                .iter()
                .zip(&sealed_buf)
                .map(|((addr, iv, _), s)| (*addr, *iv, *s))
                .collect();
            c.open_batch_into(&to_open, &mut open_buf);
            assert_eq!(open_buf, c.open_batch(&to_open));
            for (i, (res, (addr, iv, pt))) in open_buf.iter().zip(&items).enumerate() {
                assert_eq!(res.as_ref().unwrap(), pt, "seed {seed} item {i}");
                assert_eq!(res.clone().ok(), c.open(*addr, *iv, &sealed_buf[i]).ok());
            }
        }
    }

    #[test]
    fn mac_cache_hit_skips_recompute_but_matches_full_path() {
        let c = codec();
        let mut cache = MacCache::new(8);
        let pt = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let addr = BlockAddr::new(21);
        let sealed = c.seal(addr, ctr(4), &pt);

        // First read: full path, recorded.
        let first = c.open_correcting_cached(&mut cache, addr, ctr(4), &sealed);
        assert_eq!(first, Ok((pt, 0)));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // Second read of the unmodified line: fast path.
        let second = c.open_correcting_cached(&mut cache, addr, ctr(4), &sealed);
        assert_eq!(second, Ok((pt, 0)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(second, c.open_correcting(addr, ctr(4), &sealed));
    }

    #[test]
    fn mac_cache_never_launders_tampering() {
        // A cached verification of the clean image must not let a
        // tampered image through: the fingerprint covers the whole
        // sealed image, so any change misses and re-verifies fully.
        let c = codec();
        let mut cache = MacCache::new(8);
        let addr = BlockAddr::new(5);
        let sealed = c.seal(addr, ctr(1), &Block::filled(9));
        c.open_correcting_cached(&mut cache, addr, ctr(1), &sealed)
            .unwrap();

        let mut tampered = sealed;
        tampered.ciphertext.flip_bit(17);
        tampered.mac ^= 0xDEAD;
        let out = c.open_correcting_cached(&mut cache, addr, ctr(1), &tampered);
        assert_eq!(out, c.open_correcting(addr, ctr(1), &tampered));
        assert!(
            out.is_err() || out.as_ref().unwrap().1 > 0,
            "served: {out:?}"
        );
    }

    #[test]
    fn mac_cache_corrected_reads_are_not_cached() {
        // A read that needed SEC-DED repair must keep re-verifying: only
        // clean verifications populate the cache.
        let c = codec();
        let mut cache = MacCache::new(8);
        let addr = BlockAddr::new(13);
        let pt = Block::filled(0x3C);
        let mut sealed = c.seal(addr, ctr(2), &pt);
        sealed.ciphertext.flip_bit(200);
        for round in 0..2 {
            let (opened, fixed) = c
                .open_correcting_cached(&mut cache, addr, ctr(2), &sealed)
                .unwrap();
            assert_eq!((opened, fixed), (pt, 1), "round {round}");
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn mac_cache_note_sealed_primes_fast_path() {
        let c = codec();
        let mut cache = MacCache::new(8);
        let addr = BlockAddr::new(3);
        let pt = Block::filled(0x11);
        let sealed = c.seal(addr, ctr(7), &pt);
        c.note_sealed(&mut cache, addr, ctr(7), &sealed);
        assert_eq!(
            c.open_correcting_cached(&mut cache, addr, ctr(7), &sealed),
            Ok((pt, 0))
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn mac_cache_clear_forgets_everything() {
        let c = codec();
        let mut cache = MacCache::new(8);
        let addr = BlockAddr::new(3);
        let sealed = c.seal(addr, ctr(7), &Block::filled(1));
        c.note_sealed(&mut cache, addr, ctr(7), &sealed);
        cache.clear();
        c.open_correcting_cached(&mut cache, addr, ctr(7), &sealed)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }
}
