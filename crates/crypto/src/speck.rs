//! Speck128/128 block cipher (Beaulieu et al., NSA 2013).
//!
//! Chosen as the workhorse PRF because it is tiny, fast in software and
//! trivially implementable from the published round function — exactly what
//! a self-contained simulator needs. It stands in for the AES hardware of a
//! real secure processor.

use crate::Key;

/// Number of rounds for Speck128/128.
const ROUNDS: usize = 32;

/// The Speck128/128 block cipher: 128-bit blocks, 128-bit keys, 32 rounds.
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, Speck128};
/// let cipher = Speck128::new(Key([7, 9]));
/// let ct = cipher.encrypt((1, 2));
/// assert_ne!(ct, (1, 2));
/// assert_eq!(cipher.decrypt(ct), (1, 2));
/// ```
#[derive(Clone)]
pub struct Speck128 {
    round_keys: [u64; ROUNDS],
}

impl Speck128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: Key) -> Self {
        let mut round_keys = [0u64; ROUNDS];
        let mut l = key.0[1];
        let mut k = key.0[0];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = k;
            l = l.rotate_right(8).wrapping_add(k) ^ i as u64;
            k = k.rotate_left(3) ^ l;
        }
        Speck128 { round_keys }
    }

    /// Encrypts one 128-bit block given as `(low, high)` words.
    pub fn encrypt(&self, block: (u64, u64)) -> (u64, u64) {
        let (mut y, mut x) = block;
        for &rk in &self.round_keys {
            x = x.rotate_right(8).wrapping_add(y) ^ rk;
            y = y.rotate_left(3) ^ x;
        }
        (y, x)
    }

    /// Decrypts one 128-bit block given as `(low, high)` words.
    pub fn decrypt(&self, block: (u64, u64)) -> (u64, u64) {
        let (mut y, mut x) = block;
        for &rk in self.round_keys.iter().rev() {
            y = (y ^ x).rotate_right(3);
            x = (x ^ rk).wrapping_sub(y).rotate_left(8);
        }
        (y, x)
    }
}

impl core::fmt::Debug for Speck128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Speck128(<key schedule>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published test vector for Speck128/128:
    /// key = 0x0f0e0d0c0b0a0908_0706050403020100,
    /// pt  = 0x6c61766975716520_7469206564616d20,
    /// ct  = 0xa65d985179783265_7860fedf5c570d18.
    #[test]
    fn reference_vector() {
        let cipher = Speck128::new(Key([0x0706050403020100, 0x0f0e0d0c0b0a0908]));
        let pt = (0x7469206564616d20, 0x6c61766975716520);
        let ct = cipher.encrypt(pt);
        assert_eq!(ct, (0x7860fedf5c570d18, 0xa65d985179783265));
        assert_eq!(cipher.decrypt(ct), pt);
    }

    #[test]
    fn roundtrip_many() {
        let cipher = Speck128::new(Key([0x1234, 0x5678]));
        for i in 0..100u64 {
            let pt = (i.wrapping_mul(0x9E3779B97F4A7C15), i);
            assert_eq!(cipher.decrypt(cipher.encrypt(pt)), pt);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Speck128::new(Key([1, 0])).encrypt((0, 0));
        let b = Speck128::new(Key([2, 0])).encrypt((0, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_single_bit() {
        let cipher = Speck128::new(Key([3, 4]));
        let a = cipher.encrypt((0, 0));
        let b = cipher.encrypt((1, 0));
        let diff = (a.0 ^ b.0).count_ones() + (a.1 ^ b.1).count_ones();
        // Expect roughly half of 128 bits to flip; demand at least a third.
        assert!(diff > 42, "weak avalanche: {diff} bits");
    }

    #[test]
    fn debug_hides_schedule() {
        let s = format!("{:?}", Speck128::new(Key([0, 0])));
        assert!(s.contains("Speck128"));
        assert!(!s.contains('0'));
    }
}
