//! The split-counter scheme (paper §2.2, Fig. 1).

use anubis_nvm::Block;
use core::fmt;

/// Errors from counter arithmetic during recovery replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CounterError {
    /// Replaying Osiris trials would advance a minor counter past its
    /// 7-bit overflow boundary — more lost updates than the stop-loss
    /// window permits, which a correct persist schedule never produces.
    /// Reachable from corrupted NVM (a torn counter-block write can
    /// present an arbitrary stale minor), so it must surface as an error,
    /// not a panic.
    StopLossExceeded {
        /// The line whose minor counter would overflow.
        line: usize,
        /// The stale minor counter value read from NVM.
        minor: u8,
        /// The advance that was requested.
        advance: u8,
    },
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::StopLossExceeded {
                line,
                minor,
                advance,
            } => write!(
                f,
                "advancing minor counter for line {line} by {advance} from {minor} \
                 would cross the overflow boundary (stop-loss exceeded)"
            ),
        }
    }
}

impl std::error::Error for CounterError {}

/// Number of minor counters per counter block — one per 64-byte line of a
/// 4 KiB page.
pub const MINOR_COUNTERS_PER_BLOCK: usize = 64;

/// Maximum value of a 7-bit minor counter before it overflows.
pub const MINOR_MAX: u8 = 0x7F;

/// Result of incrementing a minor counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterIncrement {
    /// The minor counter advanced; only this line needs re-encryption.
    Minor,
    /// The minor counter overflowed: the major counter advanced, every
    /// minor counter in the block was reset, and the caller must
    /// re-encrypt the whole page with the new major counter.
    MajorOverflow,
}

/// A split-counter block: one 64-bit major counter shared by a 4 KiB page
/// plus 64 seven-bit minor counters (one per cache line), packed into
/// exactly one 64-byte block (8 B major + 64 × 7 bit = 56 B minors).
///
/// # Example
///
/// ```
/// use anubis_crypto::{SplitCounterBlock, CounterIncrement};
/// let mut ctr = SplitCounterBlock::new();
/// assert_eq!(ctr.increment(3), CounterIncrement::Minor);
/// assert_eq!(ctr.minor(3), 1);
/// assert_eq!(ctr.major(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SplitCounterBlock {
    major: u64,
    minors: [u8; MINOR_COUNTERS_PER_BLOCK],
}

impl Default for SplitCounterBlock {
    fn default() -> Self {
        SplitCounterBlock {
            major: 0,
            minors: [0; MINOR_COUNTERS_PER_BLOCK],
        }
    }
}

impl SplitCounterBlock {
    /// A fresh counter block with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter block with the given major counter and all minors zero —
    /// the state of a page right after re-encryption.
    pub fn with_major(major: u64) -> Self {
        SplitCounterBlock {
            major,
            minors: [0; MINOR_COUNTERS_PER_BLOCK],
        }
    }

    /// The page's major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The minor counter for line `line` of the page.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn minor(&self, line: usize) -> u8 {
        self.minors[line]
    }

    /// Increments the minor counter for `line`.
    ///
    /// On overflow the major counter advances and **all** minors reset to
    /// zero; the caller must re-encrypt the page (paper §2.2).
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn increment(&mut self, line: usize) -> CounterIncrement {
        if self.minors[line] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; MINOR_COUNTERS_PER_BLOCK];
            self.minors[line] = 1;
            CounterIncrement::MajorOverflow
        } else {
            self.minors[line] += 1;
            CounterIncrement::Minor
        }
    }

    /// Advances the minor counter for `line` by `n` without page
    /// re-encryption — used by recovery code to replay Osiris trials.
    ///
    /// Recovery of an *intact* counter block never needs to cross an
    /// overflow boundary (the stop-loss persist happens before it), but a
    /// corrupted block read back from NVM can present an arbitrary stale
    /// minor, so the boundary is a typed error rather than a panic: a torn
    /// write must never abort the recovering process.
    ///
    /// # Errors
    ///
    /// [`CounterError::StopLossExceeded`] if the addition would overflow
    /// the 7-bit minor counter. The counter block is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn advance_minor(&mut self, line: usize, n: u8) -> Result<(), CounterError> {
        let v = self.minors[line].checked_add(n).filter(|&v| v <= MINOR_MAX);
        match v {
            Some(v) => {
                self.minors[line] = v;
                Ok(())
            }
            None => Err(CounterError::StopLossExceeded {
                line,
                minor: self.minors[line],
                advance: n,
            }),
        }
    }

    /// Serializes into a 64-byte block: word 0 = major (LE), bytes 8..64 =
    /// 64 minors packed 7 bits each.
    pub fn to_block(&self) -> Block {
        let mut b = Block::zeroed();
        b.set_word(0, self.major);
        let bytes = b.as_bytes_mut();
        for (i, &m) in self.minors.iter().enumerate() {
            let bit = i * 7;
            let byte = 8 + bit / 8;
            let off = bit % 8;
            bytes[byte] |= (m & 0x7F) << off;
            if off > 1 {
                bytes[byte + 1] |= (m & 0x7F) >> (8 - off);
            }
        }
        b
    }

    /// Deserializes from a 64-byte block written by
    /// [`SplitCounterBlock::to_block`].
    pub fn from_block(b: &Block) -> Self {
        let major = b.word(0);
        let bytes = b.as_bytes();
        let mut minors = [0u8; MINOR_COUNTERS_PER_BLOCK];
        for (i, m) in minors.iter_mut().enumerate() {
            let bit = i * 7;
            let byte = 8 + bit / 8;
            let off = bit % 8;
            let mut v = (bytes[byte] >> off) as u16;
            if off > 1 {
                v |= (bytes[byte + 1] as u16) << (8 - off);
            }
            *m = (v & 0x7F) as u8;
        }
        SplitCounterBlock { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_and_read_back() {
        let mut c = SplitCounterBlock::new();
        for _ in 0..5 {
            assert_eq!(c.increment(10), CounterIncrement::Minor);
        }
        assert_eq!(c.minor(10), 5);
        assert_eq!(c.minor(9), 0);
        assert_eq!(c.major(), 0);
    }

    #[test]
    fn overflow_bumps_major_and_resets_minors() {
        let mut c = SplitCounterBlock::new();
        c.increment(1);
        for _ in 0..MINOR_MAX {
            c.increment(0);
        }
        assert_eq!(c.minor(0), MINOR_MAX);
        assert_eq!(c.increment(0), CounterIncrement::MajorOverflow);
        assert_eq!(c.major(), 1);
        assert_eq!(c.minor(0), 1, "overflowing line restarts at 1");
        assert_eq!(c.minor(1), 0, "other minors reset");
    }

    #[test]
    fn block_roundtrip_exhaustive_pattern() {
        let mut c = SplitCounterBlock::new();
        c.major = 0xDEAD_BEEF_CAFE_F00D;
        for i in 0..MINOR_COUNTERS_PER_BLOCK {
            c.minors[i] = ((i * 37 + 5) % 128) as u8;
        }
        let b = c.to_block();
        assert_eq!(SplitCounterBlock::from_block(&b), c);
    }

    #[test]
    fn block_roundtrip_extremes() {
        let mut c = SplitCounterBlock::new();
        c.major = u64::MAX;
        c.minors = [MINOR_MAX; MINOR_COUNTERS_PER_BLOCK];
        let b = c.to_block();
        assert_eq!(SplitCounterBlock::from_block(&b), c);

        let zero = SplitCounterBlock::new();
        assert_eq!(SplitCounterBlock::from_block(&zero.to_block()), zero);
        assert!(zero.to_block().is_zeroed());
    }

    #[test]
    fn packing_uses_exactly_64_bytes() {
        // The last minor occupies bits 441..448 relative to byte 8, i.e.
        // ends exactly at byte 64. Verify the last byte carries data.
        let mut c = SplitCounterBlock::new();
        c.minors[63] = MINOR_MAX;
        let b = c.to_block();
        assert_ne!(b.as_bytes()[63], 0);
    }

    #[test]
    fn advance_minor_replays_increments() {
        let mut a = SplitCounterBlock::new();
        let mut b = SplitCounterBlock::new();
        for _ in 0..7 {
            a.increment(4);
        }
        b.advance_minor(4, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn advance_past_overflow_is_a_typed_error_not_a_panic() {
        let mut c = SplitCounterBlock::new();
        assert_eq!(
            c.advance_minor(0, MINOR_MAX + 1),
            Err(CounterError::StopLossExceeded {
                line: 0,
                minor: 0,
                advance: MINOR_MAX + 1,
            })
        );
        // The failed advance must leave the block untouched.
        assert_eq!(c, SplitCounterBlock::new());

        // Boundary cases: up to MINOR_MAX is fine, one past is not.
        assert!(c.advance_minor(5, MINOR_MAX).is_ok());
        assert_eq!(c.minor(5), MINOR_MAX);
        let err = c.advance_minor(5, 1).unwrap_err();
        assert!(err.to_string().contains("stop-loss"));
        assert_eq!(c.minor(5), MINOR_MAX);

        // u8 wrap-around (corrupted stale minor + large gap) is caught too.
        let mut d = SplitCounterBlock::new();
        d.advance_minor(0, MINOR_MAX).unwrap();
        assert!(d.advance_minor(0, 200).is_err());
    }
}
