//! SGX-style counter nodes: eight 56-bit counters plus a 56-bit MAC per
//! 64-byte line (paper §4.3, Fig. 3).

use crate::hash::{Hasher64, MASK56};
use anubis_nvm::Block;

/// Counters per SGX-style node/leaf line.
pub const SGX_COUNTERS_PER_NODE: usize = 8;

/// Width of an SGX counter in bits.
pub const SGX_COUNTER_BITS: u32 = 56;

/// Maximum SGX counter value.
pub const SGX_COUNTER_MAX: u64 = MASK56;

/// One line of the SGX-style integrity tree.
///
/// Leaves hold eight per-data-line encryption counters; interior nodes hold
/// eight per-child version counters. Either way the line carries a 56-bit
/// MAC computed over the node's eight counters **and one counter from the
/// parent node** — this inter-level dependence is what makes the tree
/// parallelizable to update but impossible to rebuild from leaves alone
/// (paper §2.3.2 / §3).
///
/// Layout in the 64-byte block: counters `i` in bytes `7i..7i+7`
/// (little-endian, 7 bytes each, 56 bytes total), MAC in bytes 56..63,
/// byte 63 unused.
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, SgxCounterNode, hash::Hasher64};
/// let mac_key = Hasher64::new(Key([1, 2]).derive("sgx-mac"));
/// let mut node = SgxCounterNode::new();
/// node.increment(2);
/// node.seal(&mac_key, 7); // parent counter = 7
/// assert!(node.verify(&mac_key, 7));
/// assert!(!node.verify(&mac_key, 8)); // replayed parent counter
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct SgxCounterNode {
    counters: [u64; SGX_COUNTERS_PER_NODE],
    mac: u64,
}

impl SgxCounterNode {
    /// A fresh node with all counters and MAC zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `i`-th counter.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn counter(&self, i: usize) -> u64 {
        self.counters[i]
    }

    /// Sets the `i`-th counter (used by recovery when splicing LSBs).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8` or `value` exceeds 56 bits.
    pub fn set_counter(&mut self, i: usize, value: u64) {
        assert!(value <= SGX_COUNTER_MAX, "SGX counter must fit 56 bits");
        self.counters[i] = value;
    }

    /// The node's 56-bit MAC.
    pub fn mac(&self) -> u64 {
        self.mac
    }

    /// Overwrites the MAC (used by recovery when splicing from the shadow
    /// table).
    ///
    /// # Panics
    ///
    /// Panics if `mac` exceeds 56 bits.
    pub fn set_mac(&mut self, mac: u64) {
        assert!(mac <= MASK56, "MAC must fit 56 bits");
        self.mac = mac;
    }

    /// Increments counter `i`, wrapping within 56 bits (a 56-bit counter
    /// overflows only after ~7.2 × 10¹⁶ writes; wrap handling is out of the
    /// paper's scope).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn increment(&mut self, i: usize) {
        self.counters[i] = (self.counters[i] + 1) & SGX_COUNTER_MAX;
    }

    /// Computes the MAC over this node's counters and `parent_counter`,
    /// storing it in the node.
    pub fn seal(&mut self, mac_key: &Hasher64, parent_counter: u64) {
        self.mac = Self::compute_mac(mac_key, &self.counters, parent_counter);
    }

    /// Verifies the stored MAC against the counters and `parent_counter`.
    #[must_use]
    pub fn verify(&self, mac_key: &Hasher64, parent_counter: u64) -> bool {
        self.mac == Self::compute_mac(mac_key, &self.counters, parent_counter)
    }

    /// The MAC function: 56-bit keyed hash over the eight counters and the
    /// parent counter.
    pub fn compute_mac(
        mac_key: &Hasher64,
        counters: &[u64; SGX_COUNTERS_PER_NODE],
        parent_counter: u64,
    ) -> u64 {
        let mut words = [0u64; SGX_COUNTERS_PER_NODE + 1];
        words[..SGX_COUNTERS_PER_NODE].copy_from_slice(counters);
        words[SGX_COUNTERS_PER_NODE] = parent_counter;
        mac_key.hash_words(&words) & MASK56
    }

    /// Serializes into a 64-byte block (see type-level layout notes).
    pub fn to_block(&self) -> Block {
        let mut b = Block::zeroed();
        let bytes = b.as_bytes_mut();
        for (i, &c) in self.counters.iter().enumerate() {
            bytes[i * 7..i * 7 + 7].copy_from_slice(&c.to_le_bytes()[..7]);
        }
        bytes[56..63].copy_from_slice(&self.mac.to_le_bytes()[..7]);
        b
    }

    /// Deserializes from a block written by [`SgxCounterNode::to_block`].
    pub fn from_block(b: &Block) -> Self {
        let bytes = b.as_bytes();
        let mut counters = [0u64; SGX_COUNTERS_PER_NODE];
        for (i, c) in counters.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w[..7].copy_from_slice(&bytes[i * 7..i * 7 + 7]);
            *c = u64::from_le_bytes(w);
        }
        let mut w = [0u8; 8];
        w[..7].copy_from_slice(&bytes[56..63]);
        SgxCounterNode {
            counters,
            mac: u64::from_le_bytes(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    fn mac_key() -> Hasher64 {
        Hasher64::new(Key([5, 6]).derive("sgx-mac"))
    }

    #[test]
    fn seal_verify_roundtrip() {
        let k = mac_key();
        let mut n = SgxCounterNode::new();
        n.increment(0);
        n.increment(0);
        n.increment(5);
        n.seal(&k, 42);
        assert!(n.verify(&k, 42));
    }

    #[test]
    fn verify_fails_on_counter_tamper() {
        let k = mac_key();
        let mut n = SgxCounterNode::new();
        n.seal(&k, 0);
        n.set_counter(3, 1);
        assert!(!n.verify(&k, 0));
    }

    #[test]
    fn verify_fails_on_parent_counter_mismatch() {
        // The replay-detection property: an old child (valid MAC under old
        // parent counter) fails once the parent counter advances.
        let k = mac_key();
        let mut n = SgxCounterNode::new();
        n.seal(&k, 10);
        assert!(n.verify(&k, 10));
        assert!(!n.verify(&k, 11));
    }

    #[test]
    fn block_roundtrip() {
        let mut n = SgxCounterNode::new();
        for i in 0..SGX_COUNTERS_PER_NODE {
            n.set_counter(i, ((i as u64 + 1) * 0x0011_2233_4455) & SGX_COUNTER_MAX);
        }
        n.set_mac(0x0000_ABCD_EF01_2345);
        assert_eq!(SgxCounterNode::from_block(&n.to_block()), n);
    }

    #[test]
    fn block_roundtrip_extremes() {
        let mut n = SgxCounterNode::new();
        for i in 0..SGX_COUNTERS_PER_NODE {
            n.set_counter(i, SGX_COUNTER_MAX);
        }
        n.set_mac(MASK56);
        assert_eq!(SgxCounterNode::from_block(&n.to_block()), n);
        assert_eq!(
            SgxCounterNode::from_block(&Block::zeroed()),
            SgxCounterNode::new()
        );
    }

    #[test]
    fn increment_wraps_at_56_bits() {
        let mut n = SgxCounterNode::new();
        n.set_counter(0, SGX_COUNTER_MAX);
        n.increment(0);
        assert_eq!(n.counter(0), 0);
    }

    #[test]
    #[should_panic(expected = "56 bits")]
    fn set_counter_rejects_wide_values() {
        SgxCounterNode::new().set_counter(0, 1 << 56);
    }
}
