//! Keyed hashes and MACs built on Speck128 in a Davies–Meyer / Merkle–Damgård
//! construction.
//!
//! The integrity trees need two digest widths:
//!
//! * **64-bit child digests** for the general 8-ary Bonsai tree (eight 8-byte
//!   hashes per 64-byte parent node, paper §2.3.1);
//! * **56-bit MACs** for SGX-style nodes (one 56-bit MAC co-located with
//!   eight 56-bit counters per 64-byte line, paper §4.3).
//!
//! These are simulation-grade primitives standing in for the SHA/Carter-
//! Wegman hardware of a real memory encryption engine.

use crate::speck::Speck128;
use crate::Key;

/// Mask selecting the low 56 bits (SGX counter/MAC width).
pub const MASK56: u64 = (1 << 56) - 1;

/// A keyed hash function producing 64-bit digests.
///
/// Construction: Davies–Meyer compression over 16-byte message chunks
/// (each chunk keys a Speck encryption of the chaining state), finalized by
/// one extra encryption of the state XOR the message length, then folded to
/// 64 bits.
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, hash::Hasher64};
/// let h = Hasher64::new(Key([1, 2]).derive("tree-hash"));
/// let a = h.hash(b"node contents");
/// let b = h.hash(b"node content!");
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Hasher64 {
    /// Precomputed schedule for the key-bound initialization and
    /// finalization encryptions — expanding it per `hash` call dominated
    /// short-message hashing (two 32-round expansions per digest).
    key_cipher: Speck128,
    /// Key-derived initial chaining value (constant per hasher).
    init: (u64, u64),
}

impl Hasher64 {
    /// Creates a hasher bound to `key`.
    pub fn new(key: Key) -> Self {
        let key_cipher = Speck128::new(key);
        // Initial chaining value derived from the key so that hashes under
        // different keys are unrelated.
        let init = key_cipher.encrypt((0x416e_7562_6973, 0x4953_4341_3139));
        Hasher64 { key_cipher, init }
    }

    /// Hashes arbitrary bytes to a 64-bit digest.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let (a, b) = self.compress(data);
        a ^ b
    }

    /// Hashes arbitrary bytes to a 56-bit MAC (SGX node width).
    pub fn mac56(&self, data: &[u8]) -> u64 {
        self.hash(data) & MASK56
    }

    /// Hashes a sequence of 64-bit words (convenience for counter material).
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.hash(&bytes)
    }

    fn compress(&self, data: &[u8]) -> (u64, u64) {
        let mut state = self.init;
        for chunk in data.chunks(16) {
            let mut w = [0u8; 16];
            w[..chunk.len()].copy_from_slice(chunk);
            let m = Key([
                u64::from_le_bytes(w[..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(w[8..].try_into().expect("8 bytes")),
            ]);
            // Message-keyed, so this schedule cannot be precomputed.
            let e = Speck128::new(m).encrypt(state);
            state = (e.0 ^ state.0, e.1 ^ state.1);
        }
        // Length padding via finalization.
        let fin = self
            .key_cipher
            .encrypt((state.0 ^ data.len() as u64, state.1));
        (fin.0 ^ state.0, fin.1 ^ state.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> Hasher64 {
        Hasher64::new(Key([0xAA, 0xBB]))
    }

    #[test]
    fn deterministic() {
        assert_eq!(hasher().hash(b"abc"), hasher().hash(b"abc"));
    }

    #[test]
    fn key_dependent() {
        let a = Hasher64::new(Key([1, 1])).hash(b"abc");
        let b = Hasher64::new(Key([1, 2])).hash(b"abc");
        assert_ne!(a, b);
    }

    #[test]
    fn length_extension_padding() {
        // Same prefix, different lengths of zero padding must differ.
        let h = hasher();
        assert_ne!(h.hash(&[0u8; 15]), h.hash(&[0u8; 16]));
        assert_ne!(h.hash(&[0u8; 16]), h.hash(&[0u8; 17]));
        assert_ne!(h.hash(b""), h.hash(&[0u8]));
    }

    #[test]
    fn mac56_is_56_bits() {
        let h = hasher();
        for i in 0..64u64 {
            assert_eq!(h.mac56(&i.to_le_bytes()) >> 56, 0);
        }
    }

    #[test]
    fn hash_words_matches_bytes() {
        let h = hasher();
        let words = [1u64, 2, 3];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(h.hash_words(&words), h.hash(&bytes));
    }

    #[test]
    fn no_trivial_collisions_in_small_space() {
        let h = hasher();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(h.hash(&i.to_le_bytes())), "collision at {i}");
        }
    }
}
