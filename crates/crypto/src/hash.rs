//! Keyed hashes and MACs built on Speck128 in a Davies–Meyer / Merkle–Damgård
//! construction.
//!
//! The integrity trees need two digest widths:
//!
//! * **64-bit child digests** for the general 8-ary Bonsai tree (eight 8-byte
//!   hashes per 64-byte parent node, paper §2.3.1);
//! * **56-bit MACs** for SGX-style nodes (one 56-bit MAC co-located with
//!   eight 56-bit counters per 64-byte line, paper §4.3).
//!
//! These are simulation-grade primitives standing in for the SHA/Carter-
//! Wegman hardware of a real memory encryption engine.

use crate::speck::Speck128;
use crate::Key;

/// Mask selecting the low 56 bits (SGX counter/MAC width).
pub const MASK56: u64 = (1 << 56) - 1;

/// A keyed hash function producing 64-bit digests.
///
/// Construction: Davies–Meyer compression over 16-byte message chunks
/// (each chunk keys a Speck encryption of the chaining state), finalized by
/// one extra encryption of the state XOR the message length, then folded to
/// 64 bits.
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, hash::Hasher64};
/// let h = Hasher64::new(Key([1, 2]).derive("tree-hash"));
/// let a = h.hash(b"node contents");
/// let b = h.hash(b"node content!");
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Hasher64 {
    /// Precomputed schedule for the key-bound initialization and
    /// finalization encryptions — expanding it per `hash` call dominated
    /// short-message hashing (two 32-round expansions per digest).
    key_cipher: Speck128,
    /// Key-derived initial chaining value (constant per hasher).
    init: (u64, u64),
}

impl Hasher64 {
    /// Creates a hasher bound to `key`.
    pub fn new(key: Key) -> Self {
        let key_cipher = Speck128::new(key);
        // Initial chaining value derived from the key so that hashes under
        // different keys are unrelated.
        let init = key_cipher.encrypt((0x416e_7562_6973, 0x4953_4341_3139));
        Hasher64 { key_cipher, init }
    }

    /// Hashes arbitrary bytes to a 64-bit digest.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let (a, b) = self.compress(data);
        a ^ b
    }

    /// Hashes arbitrary bytes to a 56-bit MAC (SGX node width).
    pub fn mac56(&self, data: &[u8]) -> u64 {
        self.hash(data) & MASK56
    }

    /// Hashes a sequence of 64-bit words (the common case for counter and
    /// MAC material, which is always word-shaped).
    ///
    /// Streams the words straight into the compression function — a word
    /// pair *is* a 16-byte chunk in little-endian — so no intermediate
    /// byte buffer is allocated. Bit-identical to serializing the words
    /// little-endian and calling [`hash`](Self::hash).
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut state = self.init;
        let mut chunks = words.chunks_exact(2);
        for pair in &mut chunks {
            state = self.compress_chunk(state, pair[0], pair[1]);
        }
        if let [last] = chunks.remainder() {
            // An odd trailing word zero-pads its chunk, exactly as the
            // byte path zero-pads a short final chunk.
            state = self.compress_chunk(state, *last, 0);
        }
        let (a, b) = self.finalize(state, (words.len() * 8) as u64);
        a ^ b
    }

    /// One Davies–Meyer step: the 16-byte message chunk keys a Speck
    /// encryption of the chaining state.
    #[inline]
    fn compress_chunk(&self, state: (u64, u64), lo: u64, hi: u64) -> (u64, u64) {
        // Message-keyed, so this schedule cannot be precomputed.
        let e = Speck128::new(Key([lo, hi])).encrypt(state);
        (e.0 ^ state.0, e.1 ^ state.1)
    }

    /// Length padding via one key-bound finalization encryption.
    #[inline]
    fn finalize(&self, state: (u64, u64), byte_len: u64) -> (u64, u64) {
        let fin = self.key_cipher.encrypt((state.0 ^ byte_len, state.1));
        (fin.0 ^ state.0, fin.1 ^ state.1)
    }

    fn compress(&self, data: &[u8]) -> (u64, u64) {
        let mut state = self.init;
        for chunk in data.chunks(16) {
            let mut w = [0u8; 16];
            w[..chunk.len()].copy_from_slice(chunk);
            state = self.compress_chunk(
                state,
                u64::from_le_bytes(w[..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(w[8..].try_into().expect("8 bytes")),
            );
        }
        self.finalize(state, data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> Hasher64 {
        Hasher64::new(Key([0xAA, 0xBB]))
    }

    #[test]
    fn deterministic() {
        assert_eq!(hasher().hash(b"abc"), hasher().hash(b"abc"));
    }

    #[test]
    fn key_dependent() {
        let a = Hasher64::new(Key([1, 1])).hash(b"abc");
        let b = Hasher64::new(Key([1, 2])).hash(b"abc");
        assert_ne!(a, b);
    }

    #[test]
    fn length_extension_padding() {
        // Same prefix, different lengths of zero padding must differ.
        let h = hasher();
        assert_ne!(h.hash(&[0u8; 15]), h.hash(&[0u8; 16]));
        assert_ne!(h.hash(&[0u8; 16]), h.hash(&[0u8; 17]));
        assert_ne!(h.hash(b""), h.hash(&[0u8]));
    }

    #[test]
    fn mac56_is_56_bits() {
        let h = hasher();
        for i in 0..64u64 {
            assert_eq!(h.mac56(&i.to_le_bytes()) >> 56, 0);
        }
    }

    #[test]
    fn hash_words_matches_bytes() {
        // The streaming word path must stay bit-identical to serializing
        // little-endian and hashing bytes, for every chunk-padding shape:
        // empty, odd trailing word, and full pairs.
        let h = hasher();
        let words: Vec<u64> = (0..9).map(|i| i * 0x0101_0101_0101_0101).collect();
        for n in 0..=words.len() {
            let mut bytes = Vec::new();
            for w in &words[..n] {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            assert_eq!(h.hash_words(&words[..n]), h.hash(&bytes), "n = {n}");
        }
    }

    #[test]
    fn no_trivial_collisions_in_small_space() {
        let h = hasher();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(h.hash(&i.to_le_bytes())), "collision at {i}");
        }
    }
}
