//! Cryptographic substrate for the Anubis reproduction.
//!
//! Implements, from scratch, everything the secure-memory data path needs:
//!
//! * [`Speck128`] — the Speck128/128 block cipher, used as the PRF behind
//!   pads, hashes and MACs. *Simulation-grade*: the reproduction needs the
//!   right structure (keyed, pseudorandom, 128-bit), not a production
//!   cipher; do not reuse this for real secrets.
//! * [`otp`] — counter-mode one-time-pad encryption of 64-byte blocks with
//!   spatially (address) and temporally (counter) unique IVs (paper §2.2).
//! * [`SplitCounterBlock`] — the split-counter scheme: one 64-bit major
//!   counter per 4 KiB page plus 64 seven-bit minor counters, packed into a
//!   single 64-byte counter block (paper Fig. 1).
//! * [`SgxCounterNode`] — SGX-style nodes: eight 56-bit counters plus a
//!   56-bit MAC per 64-byte line (paper §4.3, Fig. 3).
//! * [`hash`] — keyed 64-bit hashes (Merkle-tree arity 8 ⇒ 8-byte child
//!   digests) and 56-bit MACs for SGX nodes.
//! * [`ecc`] — SEC-DED Hamming(72,64) codes computed over *plaintext* and
//!   stored encrypted alongside data, which is exactly the sanity check the
//!   Osiris counter-recovery scheme relies on.
//! * [`DataCodec`] — the full per-block data path: encrypt/decrypt with
//!   ECC + data-MAC verification, and the Osiris counter-trial probe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecc;
pub mod hash;
pub mod otp;

mod codec;
mod counter;
mod error;
mod sgx;
mod speck;

pub use codec::{DataCodec, MacCache, SealedBlock};
pub use counter::{
    CounterError, CounterIncrement, SplitCounterBlock, MINOR_COUNTERS_PER_BLOCK, MINOR_MAX,
};
pub use error::CryptoError;
pub use sgx::{SgxCounterNode, SGX_COUNTERS_PER_NODE, SGX_COUNTER_BITS, SGX_COUNTER_MAX};
pub use speck::Speck128;

/// A 128-bit secret key held inside the processor chip.
///
/// Newtype so processor keys, hash keys and MAC keys cannot be confused
/// with plain integers.
///
/// # Example
///
/// ```
/// use anubis_crypto::Key;
/// let master = Key([0xDEAD, 0xBEEF]);
/// let enc = master.derive("encryption");
/// let mac = master.derive("data-mac");
/// assert_ne!(enc, mac);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub [u64; 2]);

impl Key {
    /// Derives a deterministic sub-key for a named purpose ("domain
    /// separation"): the encryption key, tree-hash key and MAC key must all
    /// differ even when the system is seeded from one master key.
    pub fn derive(&self, purpose: &str) -> Key {
        let cipher = Speck128::new(*self);
        let mut h: (u64, u64) = (0x6b65_7964_6572_6976, purpose.len() as u64);
        for chunk in purpose.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            h.0 ^= u64::from_le_bytes(w);
            h = cipher.encrypt(h);
        }
        Key([h.0, h.1])
    }
}

impl core::fmt::Debug for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material in logs.
        write!(f, "Key(<secret>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_differ_by_purpose() {
        let master = Key([1, 2]);
        let a = master.derive("encryption");
        let b = master.derive("tree-hash");
        let c = master.derive("data-mac");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert_eq!(a, master.derive("encryption"));
    }

    #[test]
    fn derived_keys_differ_by_master() {
        let a = Key([1, 2]).derive("x");
        let b = Key([1, 3]).derive("x");
        assert_ne!(a, b);
    }

    #[test]
    fn key_debug_hides_material() {
        assert_eq!(format!("{:?}", Key([42, 42])), "Key(<secret>)");
    }
}
