//! SEC-DED Hamming(72,64) error-correcting codes — the Osiris sanity check.
//!
//! Real NVDIMMs store 8 ECC bits per 64-bit word. Osiris (MICRO'18)
//! observes that if the ECC is computed over the *plaintext* and stored
//! encrypted with the data, then decrypting with the wrong counter yields a
//! pseudorandom word whose recomputed ECC almost surely mismatches — so the
//! ECC doubles as a counter-sanity check during recovery.
//!
//! We implement the classic Hamming(72,64) extended code per 8-byte word,
//! giving an 8-byte ECC word per 64-byte block (one check byte per data
//! word).

use anubis_nvm::Block;

/// Data-bit coverage masks for the seven Hamming parity groups: data bits
/// occupy codeword positions 1..=72 skipping power-of-two positions, and
/// parity group `p` covers every position with bit `p` set.
const COVERAGE: [u64; 7] = build_coverage();

const fn build_coverage() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut data_index = 0u32;
    let mut cw_pos = 1u64;
    while data_index < 64 {
        if !cw_pos.is_power_of_two() {
            let mut p = 0;
            while p < 7 {
                if cw_pos & (1u64 << p) != 0 {
                    masks[p] |= 1u64 << data_index;
                }
                p += 1;
            }
            data_index += 1;
        }
        cw_pos += 1;
    }
    masks
}

/// Computes the 8 check bits for one 64-bit data word.
///
/// Bits 0..6: the seven Hamming parity groups; bit 7: overall parity,
/// extending the code to single-error-correct / double-error-detect.
pub fn ecc_word(data: u64) -> u8 {
    let mut check: u8 = 0;
    for (p, mask) in COVERAGE.iter().enumerate() {
        check |= (((data & mask).count_ones() & 1) as u8) << p;
    }
    let total = data.count_ones() + (check as u32).count_ones();
    check | (((total & 1) as u8) << 7)
}

/// Computes the per-word ECC bytes for a whole 64-byte block, packed into
/// one `u64` (byte `i` = ECC of word `i`).
///
/// # Example
///
/// ```
/// use anubis_nvm::Block;
/// use anubis_crypto::ecc;
/// let b = Block::filled(0x3C);
/// let code = ecc::ecc_block(&b);
/// assert!(ecc::check_block(&b, code));
/// assert!(!ecc::check_block(&Block::filled(0x3D), code));
/// ```
pub fn ecc_block(block: &Block) -> u64 {
    let mut out = [0u8; 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ecc_word(block.word(i));
    }
    u64::from_le_bytes(out)
}

/// Verifies a block against its packed ECC word.
#[must_use]
pub fn check_block(block: &Block, ecc: u64) -> bool {
    ecc_block(block) == ecc
}

/// Codeword-position → data-bit-index table for syndrome decoding:
/// position `p` (1..=72) maps to its data bit, or `NOT_DATA` when `p` is
/// a power of two (a check-bit position).
const NOT_DATA: u8 = 0xFF;
const POS_TO_DATA: [u8; 73] = build_pos_to_data();

const fn build_pos_to_data() -> [u8; 73] {
    let mut table = [NOT_DATA; 73];
    let mut data_index = 0u8;
    let mut cw_pos = 1usize;
    while cw_pos <= 72 {
        if !(cw_pos as u64).is_power_of_two() {
            table[cw_pos] = data_index;
            data_index += 1;
        }
        cw_pos += 1;
    }
    table
}

/// Outcome of SEC-DED decoding one 72-bit codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordDecode {
    /// Codeword was consistent; data returned unmodified.
    Clean,
    /// A single-bit error (in the data or the check bits) was corrected.
    Corrected,
    /// Two or more bit errors: detected but not correctable.
    Uncorrectable,
}

/// SEC-DED syndrome decode of one data word against its check byte.
///
/// Returns the (possibly corrected) data word and what happened. A
/// single flipped bit anywhere in the 72-bit codeword is repaired; an
/// even number of flips is reported as [`WordDecode::Uncorrectable`].
pub fn correct_word(data: u64, check: u8) -> (u64, WordDecode) {
    let recomputed = ecc_word(data);
    // Syndrome over the seven Hamming groups; the extended bit gives the
    // overall parity of the received 72-bit codeword.
    let syndrome = (recomputed ^ check) & 0x7F;
    let overall_odd =
        (data.count_ones() + (check & 0x7F).count_ones() + u32::from(check >> 7)) & 1 == 1;
    match (syndrome, overall_odd) {
        (0, false) => (data, WordDecode::Clean),
        // Overall parity flipped but no group disagrees: the error is in
        // the extended parity bit itself. Data is intact.
        (0, true) => (data, WordDecode::Corrected),
        (s, true) => {
            let pos = s as usize;
            if pos > 72 {
                return (data, WordDecode::Uncorrectable);
            }
            match POS_TO_DATA[pos] {
                NOT_DATA => (data, WordDecode::Corrected), // flipped check bit
                bit => (data ^ (1u64 << bit), WordDecode::Corrected),
            }
        }
        // Nonzero syndrome with even overall parity: double error.
        (_, false) => (data, WordDecode::Uncorrectable),
    }
}

/// Outcome of SEC-DED decoding a 64-byte block against its packed ECC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDecode {
    /// The block with any single-bit-per-word errors repaired.
    pub data: Block,
    /// How many of the eight words needed a correction.
    pub corrected_words: u32,
}

/// Decodes a whole block word-by-word, repairing one flipped bit per
/// 72-bit codeword. Returns `None` if any word is uncorrectable (≥2
/// flips in one codeword); callers map that to their own typed error.
#[must_use]
pub fn correct_block(block: &Block, ecc: u64) -> Option<BlockDecode> {
    let checks = ecc.to_le_bytes();
    let mut words = block.words();
    let mut corrected_words = 0u32;
    for (i, w) in words.iter_mut().enumerate() {
        let (fixed, status) = correct_word(*w, checks[i]);
        match status {
            WordDecode::Clean => {}
            WordDecode::Corrected => {
                *w = fixed;
                corrected_words += 1;
            }
            WordDecode::Uncorrectable => return None,
        }
    }
    Some(BlockDecode {
        data: Block::from_words(words),
        corrected_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_is_deterministic() {
        assert_eq!(ecc_word(0xDEAD_BEEF), ecc_word(0xDEAD_BEEF));
        assert_eq!(ecc_word(0), ecc_word(0));
    }

    #[test]
    fn zero_word_has_zero_ecc() {
        assert_eq!(ecc_word(0), 0);
    }

    #[test]
    fn single_bit_flips_change_the_code() {
        // SEC property: every single-bit data error must produce a nonzero,
        // unique syndrome — hence a different check byte.
        let base = 0xA5A5_5A5A_0F0F_F0F0u64;
        let code = ecc_word(base);
        let mut seen = std::collections::HashSet::new();
        for bit in 0..64 {
            let flipped = ecc_word(base ^ (1u64 << bit));
            assert_ne!(flipped, code, "bit {bit} undetected");
            assert!(seen.insert(flipped ^ code), "bit {bit} shares a syndrome");
        }
    }

    #[test]
    fn double_bit_flips_detected() {
        let base = 0x0123_4567_89AB_CDEFu64;
        let code = ecc_word(base);
        for (a, b) in [(0usize, 1usize), (3, 40), (62, 63), (0, 63)] {
            let flipped = base ^ (1u64 << a) ^ (1u64 << b);
            assert_ne!(ecc_word(flipped), code, "double error ({a},{b}) undetected");
        }
    }

    #[test]
    fn block_check_roundtrip() {
        let b = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let code = ecc_block(&b);
        assert!(check_block(&b, code));
        let mut tampered = b;
        tampered.flip_bit(200);
        assert!(!check_block(&tampered, code));
        assert!(!check_block(&b, code ^ 1));
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let base = 0xFACE_B00C_1234_5678u64;
        let check = ecc_word(base);
        // Data-bit flips.
        for bit in 0..64 {
            let (fixed, status) = correct_word(base ^ (1u64 << bit), check);
            assert_eq!(status, WordDecode::Corrected, "bit {bit}");
            assert_eq!(fixed, base, "bit {bit}");
        }
        // Check-bit flips (including the extended parity bit): data is
        // returned untouched.
        for bit in 0..8 {
            let (fixed, status) = correct_word(base, check ^ (1 << bit));
            assert_eq!(status, WordDecode::Corrected, "check bit {bit}");
            assert_eq!(fixed, base, "check bit {bit}");
        }
        // Clean codeword decodes clean.
        assert_eq!(correct_word(base, check), (base, WordDecode::Clean));
    }

    #[test]
    fn double_bit_errors_are_uncorrectable_not_miscorrected() {
        let base = 0x0123_4567_89AB_CDEFu64;
        let check = ecc_word(base);
        for (a, b) in [(0usize, 1usize), (3, 40), (62, 63), (0, 63), (17, 18)] {
            let garbled = base ^ (1u64 << a) ^ (1u64 << b);
            let (_, status) = correct_word(garbled, check);
            assert_eq!(status, WordDecode::Uncorrectable, "pair ({a},{b})");
        }
    }

    #[test]
    fn block_correction_repairs_one_flip_per_word() {
        let b = Block::from_words([11, 22, 33, 44, 55, 66, 77, 88]);
        let code = ecc_block(&b);
        let mut hit = b;
        hit.flip_bit(5); // word 0
        hit.flip_bit(64 + 9); // word 1
        hit.flip_bit(7 * 64 + 63); // word 7
        let decoded = correct_block(&hit, code).expect("correctable");
        assert_eq!(decoded.data, b);
        assert_eq!(decoded.corrected_words, 3);

        let mut dead = b;
        dead.flip_bit(0);
        dead.flip_bit(1); // two flips in word 0
        assert!(correct_block(&dead, code).is_none());
    }

    #[test]
    fn random_words_rarely_match_foreign_ecc() {
        // The Osiris property: a pseudorandom (mis-decrypted) word should
        // fail the check. With 8 check bits per word and 8 words, a full
        // block passes spuriously with probability ~2^-64; spot-check that
        // no trivial aliasing exists across a few thousand words.
        let mut mismatches = 0u32;
        let total = 4096u64;
        for i in 0..total {
            let w = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            if ecc_word(w) == ecc_word(w ^ 0xFFFF) {
                continue;
            }
            mismatches += 1;
        }
        assert!(mismatches as u64 > total * 9 / 10);
    }
}
