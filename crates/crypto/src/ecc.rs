//! SEC-DED Hamming(72,64) error-correcting codes — the Osiris sanity check.
//!
//! Real NVDIMMs store 8 ECC bits per 64-bit word. Osiris (MICRO'18)
//! observes that if the ECC is computed over the *plaintext* and stored
//! encrypted with the data, then decrypting with the wrong counter yields a
//! pseudorandom word whose recomputed ECC almost surely mismatches — so the
//! ECC doubles as a counter-sanity check during recovery.
//!
//! We implement the classic Hamming(72,64) extended code per 8-byte word,
//! giving an 8-byte ECC word per 64-byte block (one check byte per data
//! word).

use anubis_nvm::Block;

/// Data-bit coverage masks for the seven Hamming parity groups: data bits
/// occupy codeword positions 1..=72 skipping power-of-two positions, and
/// parity group `p` covers every position with bit `p` set.
const COVERAGE: [u64; 7] = build_coverage();

const fn build_coverage() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let mut data_index = 0u32;
    let mut cw_pos = 1u64;
    while data_index < 64 {
        if !cw_pos.is_power_of_two() {
            let mut p = 0;
            while p < 7 {
                if cw_pos & (1u64 << p) != 0 {
                    masks[p] |= 1u64 << data_index;
                }
                p += 1;
            }
            data_index += 1;
        }
        cw_pos += 1;
    }
    masks
}

/// Computes the 8 check bits for one 64-bit data word.
///
/// Bits 0..6: the seven Hamming parity groups; bit 7: overall parity,
/// extending the code to single-error-correct / double-error-detect.
pub fn ecc_word(data: u64) -> u8 {
    let mut check: u8 = 0;
    for (p, mask) in COVERAGE.iter().enumerate() {
        check |= (((data & mask).count_ones() & 1) as u8) << p;
    }
    let total = data.count_ones() + (check as u32).count_ones();
    check | (((total & 1) as u8) << 7)
}

/// Computes the per-word ECC bytes for a whole 64-byte block, packed into
/// one `u64` (byte `i` = ECC of word `i`).
///
/// # Example
///
/// ```
/// use anubis_nvm::Block;
/// use anubis_crypto::ecc;
/// let b = Block::filled(0x3C);
/// let code = ecc::ecc_block(&b);
/// assert!(ecc::check_block(&b, code));
/// assert!(!ecc::check_block(&Block::filled(0x3D), code));
/// ```
pub fn ecc_block(block: &Block) -> u64 {
    let mut out = [0u8; 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ecc_word(block.word(i));
    }
    u64::from_le_bytes(out)
}

/// Verifies a block against its packed ECC word.
#[must_use]
pub fn check_block(block: &Block, ecc: u64) -> bool {
    ecc_block(block) == ecc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_is_deterministic() {
        assert_eq!(ecc_word(0xDEAD_BEEF), ecc_word(0xDEAD_BEEF));
        assert_eq!(ecc_word(0), ecc_word(0));
    }

    #[test]
    fn zero_word_has_zero_ecc() {
        assert_eq!(ecc_word(0), 0);
    }

    #[test]
    fn single_bit_flips_change_the_code() {
        // SEC property: every single-bit data error must produce a nonzero,
        // unique syndrome — hence a different check byte.
        let base = 0xA5A5_5A5A_0F0F_F0F0u64;
        let code = ecc_word(base);
        let mut seen = std::collections::HashSet::new();
        for bit in 0..64 {
            let flipped = ecc_word(base ^ (1u64 << bit));
            assert_ne!(flipped, code, "bit {bit} undetected");
            assert!(seen.insert(flipped ^ code), "bit {bit} shares a syndrome");
        }
    }

    #[test]
    fn double_bit_flips_detected() {
        let base = 0x0123_4567_89AB_CDEFu64;
        let code = ecc_word(base);
        for (a, b) in [(0usize, 1usize), (3, 40), (62, 63), (0, 63)] {
            let flipped = base ^ (1u64 << a) ^ (1u64 << b);
            assert_ne!(ecc_word(flipped), code, "double error ({a},{b}) undetected");
        }
    }

    #[test]
    fn block_check_roundtrip() {
        let b = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let code = ecc_block(&b);
        assert!(check_block(&b, code));
        let mut tampered = b;
        tampered.flip_bit(200);
        assert!(!check_block(&tampered, code));
        assert!(!check_block(&b, code ^ 1));
    }

    #[test]
    fn random_words_rarely_match_foreign_ecc() {
        // The Osiris property: a pseudorandom (mis-decrypted) word should
        // fail the check. With 8 check bits per word and 8 words, a full
        // block passes spuriously with probability ~2^-64; spot-check that
        // no trivial aliasing exists across a few thousand words.
        let mut mismatches = 0u32;
        let total = 4096u64;
        for i in 0..total {
            let w = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            if ecc_word(w) == ecc_word(w ^ 0xFFFF) {
                continue;
            }
            mismatches += 1;
        }
        assert!(mismatches as u64 > total * 9 / 10);
    }
}
