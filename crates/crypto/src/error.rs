//! Error types for the cryptographic data path.

use core::fmt;

/// Errors raised by the secure data path.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Decryption succeeded mechanically but the plaintext failed its
    /// ECC sanity check — either the counter used was wrong (stale
    /// metadata) or the ciphertext was corrupted.
    EccMismatch,
    /// The data MAC over (plaintext, counter, address) did not verify —
    /// tampering or a replayed counter.
    DataMacMismatch,
    /// Osiris exhausted its stop-loss trial budget without finding a
    /// counter whose decryption passes the ECC check.
    CounterNotRecovered {
        /// Number of candidate counters tried.
        trials: u32,
    },
    /// The SEC-DED decoder found a multi-bit error it cannot repair —
    /// the stored block is corrupted beyond the code's reach and must
    /// not be served as data.
    UncorrectableEcc,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::EccMismatch => write!(f, "plaintext failed ECC sanity check"),
            CryptoError::DataMacMismatch => write!(f, "data MAC verification failed"),
            CryptoError::CounterNotRecovered { trials } => {
                write!(
                    f,
                    "no counter candidate passed the ECC check after {trials} trials"
                )
            }
            CryptoError::UncorrectableEcc => {
                write!(f, "multi-bit corruption beyond SEC-DED correction")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::EccMismatch.to_string().contains("ECC"));
        assert!(CryptoError::DataMacMismatch.to_string().contains("MAC"));
        assert!(CryptoError::CounterNotRecovered { trials: 4 }
            .to_string()
            .contains('4'));
        assert!(CryptoError::UncorrectableEcc
            .to_string()
            .contains("SEC-DED"));
    }
}
