//! Counter-mode one-time-pad encryption of 64-byte blocks (paper §2.2).
//!
//! The IV for each 16-byte pad lane combines the block's physical address
//! (spatial uniqueness), the encryption counter (temporal uniqueness) and
//! the lane index. Encryption and decryption are both a single XOR with the
//! pad, which is what lets a real memory controller overlap pad generation
//! with the data fetch.

use crate::speck::Speck128;
use crate::Key;
use anubis_nvm::{Block, BlockAddr};

/// The counter value used to build an IV.
///
/// For the split-counter scheme this packs the major and minor counters;
/// for SGX-style encryption it is the 56-bit per-line counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IvCounter {
    /// Major (per-page) counter, or 0 when unused.
    pub major: u64,
    /// Minor (per-line) counter, or the whole counter for SGX style.
    pub minor: u64,
}

impl IvCounter {
    /// An IV counter from split major/minor components.
    pub fn split(major: u64, minor: u64) -> Self {
        IvCounter { major, minor }
    }

    /// An IV counter from a single monolithic counter (SGX style).
    pub fn monolithic(counter: u64) -> Self {
        IvCounter {
            major: 0,
            minor: counter,
        }
    }
}

/// Generates the 64-byte one-time pad for `(addr, counter)` under `key`.
///
/// Four Speck encryptions produce four 16-byte lanes. Expands the key
/// schedule on every call; hot paths should expand once and use
/// [`pad_with`].
pub fn pad(key: Key, addr: BlockAddr, counter: IvCounter) -> Block {
    pad_with(&Speck128::new(key), addr, counter)
}

/// [`pad`] with a precomputed key schedule — the fast path for batch
/// sealing/probing, where one 32-round schedule expansion would otherwise
/// be repeated per block.
pub fn pad_with(cipher: &Speck128, addr: BlockAddr, counter: IvCounter) -> Block {
    let mut out = Block::zeroed();
    for lane in 0..4u64 {
        // IV: (address ^ rotated minor, major ^ lane) — unique per
        // (addr, major, minor, lane) tuple.
        let iv = (
            addr.index() ^ counter.minor.rotate_left(20),
            counter.major.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (lane << 56) ^ counter.minor,
        );
        let (a, b) = cipher.encrypt(iv);
        out.set_word(lane as usize * 2, a);
        out.set_word(lane as usize * 2 + 1, b);
    }
    out
}

/// Encrypts `plaintext` in counter mode. Decryption is the same operation.
///
/// # Example
///
/// ```
/// use anubis_crypto::{Key, otp};
/// use anubis_nvm::{Block, BlockAddr};
/// let key = Key([1, 2]).derive("encryption");
/// let addr = BlockAddr::new(99);
/// let ctr = otp::IvCounter::split(1, 5);
/// let ct = otp::encrypt(key, addr, ctr, &Block::filled(0x42));
/// assert_ne!(ct, Block::filled(0x42));
/// assert_eq!(otp::decrypt(key, addr, ctr, &ct), Block::filled(0x42));
/// ```
pub fn encrypt(key: Key, addr: BlockAddr, counter: IvCounter, plaintext: &Block) -> Block {
    plaintext.xored(&pad(key, addr, counter))
}

/// [`encrypt`] with a precomputed key schedule.
pub fn encrypt_with(
    cipher: &Speck128,
    addr: BlockAddr,
    counter: IvCounter,
    plaintext: &Block,
) -> Block {
    plaintext.xored(&pad_with(cipher, addr, counter))
}

/// Decrypts `ciphertext` in counter mode (identical to [`encrypt`]).
pub fn decrypt(key: Key, addr: BlockAddr, counter: IvCounter, ciphertext: &Block) -> Block {
    ciphertext.xored(&pad(key, addr, counter))
}

/// [`decrypt`] with a precomputed key schedule (identical to
/// [`encrypt_with`]).
pub fn decrypt_with(
    cipher: &Speck128,
    addr: BlockAddr,
    counter: IvCounter,
    ciphertext: &Block,
) -> Block {
    ciphertext.xored(&pad_with(cipher, addr, counter))
}

/// Generates an 8-byte pad word for encrypting per-block ECC/MAC metadata
/// under the same IV space (distinct lane index 4).
pub fn pad_word(key: Key, addr: BlockAddr, counter: IvCounter) -> u64 {
    pad_word_with(&Speck128::new(key), addr, counter)
}

/// [`pad_word`] with a precomputed key schedule.
pub fn pad_word_with(cipher: &Speck128, addr: BlockAddr, counter: IvCounter) -> u64 {
    let iv = (
        addr.index() ^ counter.minor.rotate_left(20),
        counter.major.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (4u64 << 56) ^ counter.minor,
    );
    cipher.encrypt(iv).0
}

/// Every pad a seal/open needs for one `(addr, counter)`, produced in a
/// single pass over the five IV lanes.
///
/// The side lane's Speck call yields 128 bits but [`pad_word_with`] keeps
/// only the low word; the high word was thrown away on every call. The
/// fused path surfaces it as [`tweak`](PadSet::tweak) so the data MAC can
/// bind `(addr, counter)` through an already-paid-for PRF output instead
/// of hashing the address and counter words itself.
#[derive(Clone, Copy, Debug)]
pub struct PadSet {
    /// The four 16-byte data lanes (lanes 0–3), as one 64-byte pad block.
    pub data: Block,
    /// The 8-byte side-word pad (lane 4, low half) that encrypts the ECC.
    pub side: u64,
    /// The side lane's high half: an `(addr, counter)`-bound PRF word for
    /// keying the data MAC. Never stored, so revealing `side` on the DIMM
    /// does not reveal the tweak.
    pub tweak: u64,
}

/// Generates the full [`PadSet`] under a precomputed key schedule — the
/// hot-path entry point for seal/open/probe. `data` is bit-identical to
/// [`pad_with`] and `side` to [`pad_word_with`]; the IV base is computed
/// once and shared by all five lanes.
pub fn pad_set_with(cipher: &Speck128, addr: BlockAddr, counter: IvCounter) -> PadSet {
    let x = addr.index() ^ counter.minor.rotate_left(20);
    let y = counter.major.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ counter.minor;
    let mut data = Block::zeroed();
    for lane in 0..4u64 {
        let (a, b) = cipher.encrypt((x, y ^ (lane << 56)));
        data.set_word(lane as usize * 2, a);
        data.set_word(lane as usize * 2 + 1, b);
    }
    let (side, tweak) = cipher.encrypt((x, y ^ (4u64 << 56)));
    PadSet { data, side, tweak }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key([11, 22]).derive("encryption")
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let pt = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let ct = encrypt(key(), BlockAddr::new(7), IvCounter::split(3, 9), &pt);
        assert_eq!(
            decrypt(key(), BlockAddr::new(7), IvCounter::split(3, 9), &ct),
            pt
        );
    }

    #[test]
    fn spatial_uniqueness() {
        let pt = Block::filled(0);
        let a = encrypt(key(), BlockAddr::new(1), IvCounter::split(0, 0), &pt);
        let b = encrypt(key(), BlockAddr::new(2), IvCounter::split(0, 0), &pt);
        assert_ne!(a, b, "same data at different addresses must differ");
    }

    #[test]
    fn temporal_uniqueness() {
        let pt = Block::filled(0);
        let a = encrypt(key(), BlockAddr::new(1), IvCounter::split(0, 1), &pt);
        let b = encrypt(key(), BlockAddr::new(1), IvCounter::split(0, 2), &pt);
        let c = encrypt(key(), BlockAddr::new(1), IvCounter::split(1, 1), &pt);
        assert_ne!(a, b, "minor counter must vary the pad");
        assert_ne!(a, c, "major counter must vary the pad");
    }

    #[test]
    fn wrong_counter_does_not_decrypt() {
        let pt = Block::filled(0x5A);
        let ct = encrypt(key(), BlockAddr::new(1), IvCounter::split(0, 5), &pt);
        let wrong = decrypt(key(), BlockAddr::new(1), IvCounter::split(0, 6), &ct);
        assert_ne!(wrong, pt);
    }

    #[test]
    fn monolithic_and_split_differ() {
        let pt = Block::filled(0);
        let a = encrypt(key(), BlockAddr::new(1), IvCounter::monolithic(5), &pt);
        let b = encrypt(key(), BlockAddr::new(1), IvCounter::split(5, 0), &pt);
        assert_ne!(a, b);
    }

    #[test]
    fn precomputed_schedule_matches_per_call_expansion() {
        let k = key();
        let cipher = Speck128::new(k);
        let ctr = IvCounter::split(7, 11);
        let addr = BlockAddr::new(42);
        assert_eq!(pad(k, addr, ctr), pad_with(&cipher, addr, ctr));
        assert_eq!(pad_word(k, addr, ctr), pad_word_with(&cipher, addr, ctr));
        let pt = Block::filled(0x3C);
        assert_eq!(
            encrypt(k, addr, ctr, &pt),
            encrypt_with(&cipher, addr, ctr, &pt)
        );
        let ct = encrypt(k, addr, ctr, &pt);
        assert_eq!(
            decrypt(k, addr, ctr, &ct),
            decrypt_with(&cipher, addr, ctr, &ct)
        );
    }

    #[test]
    fn pad_set_matches_scalar_pads() {
        let k = key();
        let cipher = Speck128::new(k);
        for (addr, major, minor) in [(0u64, 0u64, 0u64), (7, 3, 9), (1 << 40, 5, 1 << 33)] {
            let addr = BlockAddr::new(addr);
            let ctr = IvCounter::split(major, minor);
            let set = pad_set_with(&cipher, addr, ctr);
            assert_eq!(set.data, pad_with(&cipher, addr, ctr));
            assert_eq!(set.side, pad_word_with(&cipher, addr, ctr));
        }
    }

    #[test]
    fn pad_set_tweak_distinct_from_stored_pads() {
        // The MAC tweak must not equal anything an adversary can read off
        // the DIMM (data lanes or the side word) for the same IV tuple.
        let cipher = Speck128::new(key());
        let set = pad_set_with(&cipher, BlockAddr::new(9), IvCounter::split(2, 3));
        assert_ne!(set.tweak, set.side);
        for i in 0..8 {
            assert_ne!(set.tweak, set.data.word(i));
        }
    }

    #[test]
    fn pad_word_distinct_from_block_lanes() {
        let k = key();
        let ctr = IvCounter::split(2, 3);
        let p = pad(k, BlockAddr::new(9), ctr);
        let w = pad_word(k, BlockAddr::new(9), ctr);
        for i in 0..8 {
            assert_ne!(p.word(i), w, "ECC lane must not reuse a data lane");
        }
    }
}
