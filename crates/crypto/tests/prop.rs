//! Randomized property tests for the cryptographic substrate, driven by
//! the in-tree [`SplitMix64`] generator (no external dependencies; every
//! assertion message carries the seed for reproduction).

use anubis_crypto::otp::IvCounter;
use anubis_crypto::{ecc, DataCodec, Key, SgxCounterNode, SplitCounterBlock};
use anubis_crypto::{MINOR_COUNTERS_PER_BLOCK, MINOR_MAX, SGX_COUNTER_MAX};
use anubis_nvm::{Block, BlockAddr, SplitMix64};

fn rand_block(rng: &mut SplitMix64) -> Block {
    Block::from_words(core::array::from_fn(|_| rng.next_u64()))
}

/// Counter-mode seal/open is the identity for every (key, address,
/// counter, plaintext).
#[test]
fn seal_open_identity() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let codec = DataCodec::new(Key([rng.next_u64(), rng.next_u64()]));
        let addr = BlockAddr::new(rng.next_u64());
        let iv = IvCounter::split(rng.next_u64(), rng.gen_range(0..(1 << 56)));
        let pt = rand_block(&mut rng);
        let sealed = codec.seal(addr, iv, &pt);
        assert_eq!(codec.open(addr, iv, &sealed).unwrap(), pt, "seed {seed}");
    }
}

/// Decrypting with a counter that differs in the minor fails the ECC
/// sanity check (the Osiris property) — overwhelmingly.
#[test]
fn wrong_minor_fails_probe() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0x0515);
        let codec = DataCodec::new(Key([11, 22]));
        let addr = BlockAddr::new(rng.next_u64());
        let minor = rng.gen_range(0..1000);
        let delta = rng.gen_range(1..16);
        let pt = rand_block(&mut rng);
        let sealed = codec.seal(addr, IvCounter::split(3, minor), &pt);
        let probe = codec.probe(addr, IvCounter::split(3, minor + delta), &sealed);
        assert!(probe.is_none(), "seed {seed}");
    }
}

/// The Osiris trial loop recovers the true counter whenever it lies
/// inside the candidate window.
#[test]
fn osiris_recovers_within_window() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0x0517);
        let base = rng.gen_range(0..100);
        let gap = rng.gen_range(0..4);
        let pt = rand_block(&mut rng);
        let codec = DataCodec::new(Key([5, 9]));
        let addr = BlockAddr::new(77);
        let truth = IvCounter::split(1, base + gap);
        let sealed = codec.seal(addr, truth, &pt);
        let candidates = (0..=4u64).map(|g| IvCounter::split(1, base + g));
        let (idx, recovered) = codec.osiris_recover(addr, candidates, &sealed).unwrap();
        assert_eq!(idx as u64, gap, "seed {seed}");
        assert_eq!(recovered, pt, "seed {seed}");
    }
}

/// Split-counter serialization round-trips for every counter state.
#[test]
fn split_counter_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0x5011);
        let mut ctr = SplitCounterBlock::with_major(rng.next_u64());
        for i in 0..MINOR_COUNTERS_PER_BLOCK {
            ctr.advance_minor(i, rng.gen_range(0..u64::from(MINOR_MAX) + 1) as u8)
                .unwrap();
        }
        let back = SplitCounterBlock::from_block(&ctr.to_block());
        assert_eq!(back, ctr, "seed {seed}");
    }
}

/// SGX node serialization round-trips, and a seal verifies only under
/// the exact parent counter.
#[test]
fn sgx_node_roundtrip_and_freshness() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed ^ 0x59C5);
        let mac_key = anubis_crypto::hash::Hasher64::new(Key([1, 2]).derive("sgx-mac"));
        let mut node = SgxCounterNode::new();
        for i in 0..8 {
            node.set_counter(i, rng.gen_range(0..SGX_COUNTER_MAX + 1));
        }
        let pc = rng.gen_range(0..(1 << 40));
        node.seal(&mac_key, pc);
        let back = SgxCounterNode::from_block(&node.to_block());
        assert_eq!(back, node, "seed {seed}");
        assert!(back.verify(&mac_key, pc), "seed {seed}");
        assert!(!back.verify(&mac_key, pc + 1), "seed {seed}");
    }
}

/// ECC detects every single-bit corruption of a block.
#[test]
fn ecc_detects_single_bit_flips() {
    let mut rng = SplitMix64::new(0xECC);
    for bit in 0..512usize {
        let pt = rand_block(&mut rng);
        let code = ecc::ecc_block(&pt);
        let mut tampered = pt;
        tampered.flip_bit(bit);
        assert!(!ecc::check_block(&tampered, code), "bit {bit}");
    }
}

/// Ciphertexts are position-bound: the same plaintext sealed at two
/// addresses or counters yields different ciphertexts.
#[test]
fn ciphertext_uniqueness() {
    let mut rng = SplitMix64::new(0xC1FE);
    let codec = DataCodec::new(Key([3, 4]));
    for case in 0..64u64 {
        let pt = rand_block(&mut rng);
        let (a1, a2) = (rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000));
        let (m1, m2) = (rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000));
        if a1 == a2 && m1 == m2 {
            continue;
        }
        let s1 = codec.seal(BlockAddr::new(a1), IvCounter::split(0, m1), &pt);
        let s2 = codec.seal(BlockAddr::new(a2), IvCounter::split(0, m2), &pt);
        assert_ne!(s1.ciphertext, s2.ciphertext, "case {case}");
    }
}

/// Speck decrypt ∘ encrypt is the identity for arbitrary keys/blocks.
#[test]
fn speck_roundtrip() {
    let mut rng = SplitMix64::new(0x5BEC);
    for case in 0..128u64 {
        let cipher = anubis_crypto::Speck128::new(Key([rng.next_u64(), rng.next_u64()]));
        let pt = (rng.next_u64(), rng.next_u64());
        assert_eq!(cipher.decrypt(cipher.encrypt(pt)), pt, "case {case}");
    }
}

/// Key derivation is injective-in-practice over purposes: distinct
/// purpose strings give distinct keys (collision would break domain
/// separation between encryption/MAC/tree keys).
#[test]
fn derive_distinct_purposes() {
    let mut rng = SplitMix64::new(0xDE51);
    let alphabet: Vec<char> = ('a'..='z').collect();
    let rand_purpose = |rng: &mut SplitMix64| -> String {
        let len = rng.gen_range(1..13) as usize;
        (0..len)
            .map(|_| alphabet[rng.gen_index(alphabet.len())])
            .collect()
    };
    for case in 0..64u64 {
        let m = Key([rng.next_u64(), rng.next_u64()]);
        let a = rand_purpose(&mut rng);
        let b = rand_purpose(&mut rng);
        if a == b {
            continue;
        }
        assert_ne!(m.derive(&a), m.derive(&b), "case {case}: {a} vs {b}");
    }
}

/// ECC is a pure function of the data: re-encoding is stable and
/// block-level check accepts exactly the original.
#[test]
fn ecc_stability() {
    let mut rng = SplitMix64::new(0xECC2);
    for case in 0..64u64 {
        let pt = rand_block(&mut rng);
        let c1 = ecc::ecc_block(&pt);
        let c2 = ecc::ecc_block(&pt);
        assert_eq!(c1, c2, "case {case}");
        assert!(ecc::check_block(&pt, c1), "case {case}");
    }
}
