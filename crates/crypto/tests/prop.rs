//! Property tests for the cryptographic substrate.

use anubis_crypto::otp::IvCounter;
use anubis_crypto::{ecc, DataCodec, Key, SgxCounterNode, SplitCounterBlock};
use anubis_crypto::{MINOR_COUNTERS_PER_BLOCK, MINOR_MAX, SGX_COUNTER_MAX};
use anubis_nvm::{Block, BlockAddr};
use proptest::prelude::*;

fn block_strategy() -> impl Strategy<Value = Block> {
    prop::array::uniform8(any::<u64>()).prop_map(Block::from_words)
}

proptest! {
    /// Counter-mode seal/open is the identity for every (key, address,
    /// counter, plaintext).
    #[test]
    fn seal_open_identity(
        key in prop::array::uniform2(any::<u64>()),
        addr in any::<u64>(),
        major in any::<u64>(),
        minor in 0u64..(1 << 56),
        pt in block_strategy(),
    ) {
        let codec = DataCodec::new(Key(key));
        let iv = IvCounter::split(major, minor);
        let sealed = codec.seal(BlockAddr::new(addr), iv, &pt);
        prop_assert_eq!(codec.open(BlockAddr::new(addr), iv, &sealed).unwrap(), pt);
    }

    /// Decrypting with a counter that differs in the minor fails the ECC
    /// sanity check (the Osiris property) — overwhelmingly.
    #[test]
    fn wrong_minor_fails_probe(
        addr in any::<u64>(),
        minor in 0u64..1000,
        delta in 1u64..16,
        pt in block_strategy(),
    ) {
        let codec = DataCodec::new(Key([11, 22]));
        let sealed = codec.seal(BlockAddr::new(addr), IvCounter::split(3, minor), &pt);
        let probe = codec.probe(BlockAddr::new(addr), IvCounter::split(3, minor + delta), &sealed);
        prop_assert!(probe.is_none());
    }

    /// The Osiris trial loop recovers the true counter whenever it lies
    /// inside the candidate window.
    #[test]
    fn osiris_recovers_within_window(
        base in 0u64..100,
        gap in 0u64..4,
        pt in block_strategy(),
    ) {
        let codec = DataCodec::new(Key([5, 9]));
        let addr = BlockAddr::new(77);
        let truth = IvCounter::split(1, base + gap);
        let sealed = codec.seal(addr, truth, &pt);
        let candidates = (0..=4u64).map(|g| IvCounter::split(1, base + g));
        let (idx, recovered) = codec.osiris_recover(addr, candidates, &sealed).unwrap();
        prop_assert_eq!(idx as u64, gap);
        prop_assert_eq!(recovered, pt);
    }

    /// Split-counter serialization round-trips for every counter state.
    #[test]
    fn split_counter_roundtrip(
        major in any::<u64>(),
        minors in prop::collection::vec(0u8..=MINOR_MAX, MINOR_COUNTERS_PER_BLOCK),
    ) {
        let mut ctr = SplitCounterBlock::with_major(major);
        for (i, &m) in minors.iter().enumerate() {
            ctr.advance_minor(i, m);
        }
        let back = SplitCounterBlock::from_block(&ctr.to_block());
        prop_assert_eq!(back, ctr);
    }

    /// SGX node serialization round-trips, and a seal verifies only under
    /// the exact parent counter.
    #[test]
    fn sgx_node_roundtrip_and_freshness(
        counters in prop::collection::vec(0u64..=SGX_COUNTER_MAX, 8),
        pc in 0u64..(1 << 40),
    ) {
        let mac_key = anubis_crypto::hash::Hasher64::new(Key([1, 2]).derive("sgx-mac"));
        let mut node = SgxCounterNode::new();
        for (i, &c) in counters.iter().enumerate() {
            node.set_counter(i, c);
        }
        node.seal(&mac_key, pc);
        let back = SgxCounterNode::from_block(&node.to_block());
        prop_assert_eq!(back, node);
        prop_assert!(back.verify(&mac_key, pc));
        prop_assert!(!back.verify(&mac_key, pc + 1));
    }

    /// ECC detects every single-bit corruption of a block.
    #[test]
    fn ecc_detects_single_bit_flips(pt in block_strategy(), bit in 0usize..512) {
        let code = ecc::ecc_block(&pt);
        let mut tampered = pt;
        tampered.flip_bit(bit);
        prop_assert!(!ecc::check_block(&tampered, code));
    }

    /// Ciphertexts are position-bound: the same plaintext sealed at two
    /// addresses or counters yields different ciphertexts.
    #[test]
    fn ciphertext_uniqueness(
        pt in block_strategy(),
        a1 in 0u64..1_000_000,
        a2 in 0u64..1_000_000,
        m1 in 0u64..1_000_000,
        m2 in 0u64..1_000_000,
    ) {
        prop_assume!(a1 != a2 || m1 != m2);
        let codec = DataCodec::new(Key([3, 4]));
        let s1 = codec.seal(BlockAddr::new(a1), IvCounter::split(0, m1), &pt);
        let s2 = codec.seal(BlockAddr::new(a2), IvCounter::split(0, m2), &pt);
        prop_assert_ne!(s1.ciphertext, s2.ciphertext);
    }
}

proptest! {
    /// Speck decrypt ∘ encrypt is the identity for arbitrary keys/blocks.
    #[test]
    fn speck_roundtrip(key in prop::array::uniform2(any::<u64>()), pt in (any::<u64>(), any::<u64>())) {
        let cipher = anubis_crypto::Speck128::new(Key(key));
        prop_assert_eq!(cipher.decrypt(cipher.encrypt(pt)), pt);
    }

    /// Key derivation is injective-in-practice over purposes: distinct
    /// purpose strings give distinct keys (collision would break domain
    /// separation between encryption/MAC/tree keys).
    #[test]
    fn derive_distinct_purposes(master in prop::array::uniform2(any::<u64>()), a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        let m = Key(master);
        prop_assert_ne!(m.derive(&a), m.derive(&b));
    }

    /// ECC is a pure function of the data: re-encoding is stable and
    /// block-level check accepts exactly the original.
    #[test]
    fn ecc_stability(pt in block_strategy()) {
        let c1 = ecc::ecc_block(&pt);
        let c2 = ecc::ecc_block(&pt);
        prop_assert_eq!(c1, c2);
        prop_assert!(ecc::check_block(&pt, c1));
    }
}
