//! Regression guard for the zero-allocation hot path: seal, open,
//! open_correcting (clean), probe and the cached read path must not touch
//! the heap. These run millions of times per recovery/replay, and an
//! allocation per op was exactly the waste the hot-path overhaul removed.
//!
//! Uses a counting wrapper around the system allocator — installing it as
//! the test binary's global allocator lets plain assertions observe every
//! heap round-trip the measured region makes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anubis_crypto::otp::IvCounter;
use anubis_crypto::{DataCodec, Key, MacCache};
use anubis_nvm::{Block, BlockAddr};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn scalar_hot_path_is_allocation_free() {
    let codec = DataCodec::new(Key([0xFEED, 0xF00D]));
    let addr = BlockAddr::new(42);
    let ctr = IvCounter::split(3, 17);
    let pt = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
    let sealed = codec.seal(addr, ctr, &pt);
    let mut cache = MacCache::new(64);

    // Warm up every path once so lazy runtime setup is paid for.
    codec.open(addr, ctr, &sealed).unwrap();
    codec.open_correcting(addr, ctr, &sealed).unwrap();
    codec
        .open_correcting_cached(&mut cache, addr, ctr, &sealed)
        .unwrap();
    codec.probe(addr, ctr, &sealed).unwrap();

    let n = allocations_in(|| {
        for minor in 0..64u64 {
            let ctr = IvCounter::split(3, minor);
            let s = codec.seal(addr, ctr, &pt);
            assert_eq!(codec.open(addr, ctr, &s).unwrap(), pt);
            assert_eq!(codec.open_correcting(addr, ctr, &s).unwrap(), (pt, 0));
            assert_eq!(codec.probe(addr, ctr, &s).unwrap(), pt);
        }
    });
    assert_eq!(n, 0, "scalar seal/open/open_correcting/probe allocated");

    let n = allocations_in(|| {
        for _ in 0..64 {
            codec
                .open_correcting_cached(&mut cache, addr, ctr, &sealed)
                .unwrap();
        }
    });
    assert_eq!(n, 0, "cached clean-read fast path allocated");
    assert!(cache.hits() >= 64);
}

#[test]
fn batch_hot_path_is_allocation_free_with_reused_buffers() {
    let codec = DataCodec::new(Key([0xFEED, 0xF00D]));
    let items: Vec<(BlockAddr, IvCounter, Block)> = (0..64u64)
        .map(|i| {
            (
                BlockAddr::new(i),
                IvCounter::split(1, i),
                Block::filled(i as u8),
            )
        })
        .collect();
    let mut sealed = Vec::new();
    let mut opened = Vec::new();

    // First pass sizes the reusable buffers.
    codec.seal_batch_into(&items, &mut sealed);
    let to_open: Vec<_> = items
        .iter()
        .zip(&sealed)
        .map(|((a, c, _), s)| (*a, *c, *s))
        .collect();
    codec.open_batch_into(&to_open, &mut opened);

    let n = allocations_in(|| {
        for _ in 0..16 {
            codec.seal_batch_into(&items, &mut sealed);
            codec.open_batch_into(&to_open, &mut opened);
        }
    });
    assert_eq!(n, 0, "steady-state batch seal/open allocated");
    for (res, (_, _, pt)) in opened.iter().zip(&items) {
        assert_eq!(res.as_ref().unwrap(), pt);
    }
}

#[test]
fn hash_words_is_allocation_free() {
    use anubis_crypto::hash::Hasher64;
    let h = Hasher64::new(Key([1, 2]).derive("tree-hash"));
    let words: Vec<u64> = (0..9).collect();
    h.hash_words(&words); // warm up
    let n = allocations_in(|| {
        for i in 0..64 {
            std::hint::black_box(h.hash_words(&words[..(i % 10)]));
        }
    });
    assert_eq!(n, 0, "hash_words allocated");
}
