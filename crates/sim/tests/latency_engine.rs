//! Determinism contract of the discrete-event latency engine: replaying
//! the same trace with 1, 2, and 8 lanes must produce bit-identical
//! merged results, identical per-op latency streams, and identical
//! telemetry histogram snapshots. The companion shuffled event-insertion
//! property lives next to the queue itself (`src/event.rs`); this test
//! covers the full replay path through controllers and channels.

use anubis::telemetry::Telemetry;
use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
use anubis_sim::{run_trace_sharded_with_telemetry, TimingModel, OP_LATENCY_METRIC};
use anubis_workloads::{spec2006, TraceGenerator};

const SHARDS: usize = 4;
const OPS: usize = 4_000;

fn assert_lane_invariant<C, F>(make_controller: F, scheme_label: &str)
where
    C: anubis::MemoryController,
    F: Fn(usize) -> C + Sync,
{
    let config = AnubisConfig::small_test();
    let trace = TraceGenerator::new(spec2006::milc(), config.capacity_bytes).generate(OPS, 1907);
    let model = TimingModel::paper();
    let mut reference = None;
    for lanes in [1usize, 2, 8] {
        let (reg, tele) = Telemetry::private();
        let result = run_trace_sharded_with_telemetry(
            &make_controller,
            &trace,
            &model,
            SHARDS,
            lanes,
            &tele,
        )
        .expect("sharded replay");
        let histograms = reg.snapshot().histograms;
        let hist = histograms
            .get(OP_LATENCY_METRIC)
            .and_then(|by_label| by_label.get(scheme_label))
            .cloned()
            .expect("op_latency_ns histogram recorded");
        assert_eq!(hist.count as usize, result.latencies.len());
        assert!(
            result.latencies.iter().all(|&l| l > 0),
            "zero-ns op latency"
        );
        match &reference {
            None => reference = Some((result, histograms)),
            Some((first, first_histograms)) => {
                assert_eq!(
                    first.merged, result.merged,
                    "merged diverged at lanes={lanes}"
                );
                assert_eq!(
                    first.shards, result.shards,
                    "shards diverged at lanes={lanes}"
                );
                assert_eq!(
                    first.latencies, result.latencies,
                    "latency stream diverged at lanes={lanes}"
                );
                assert_eq!(
                    first_histograms, &histograms,
                    "histogram snapshot diverged at lanes={lanes}"
                );
            }
        }
    }
}

#[test]
fn agit_plus_latency_streams_and_histograms_are_lane_invariant() {
    let config = AnubisConfig::small_test();
    assert_lane_invariant(
        move |_| BonsaiController::new(BonsaiScheme::AgitPlus, &config),
        "agit-plus",
    );
}

#[test]
fn asit_latency_streams_and_histograms_are_lane_invariant() {
    let config = AnubisConfig::small_test();
    assert_lane_invariant(
        move |_| SgxController::new(SgxScheme::Asit, &config),
        "asit",
    );
}
