//! Endurance and energy estimation — quantifying the paper's §6.2
//! lifetime argument ("at least an additional ten writes per memory
//! write ... can significantly reduce the lifetime of NVMs").

use crate::engine::RunResult;

/// Cell endurance and energy constants for a PCM-class device.
///
/// Defaults use commonly cited PCM figures: 10⁸ writes of cell endurance,
/// ~2 pJ/bit write energy, ~0.05 pJ/bit read energy.
#[derive(Clone, Debug, PartialEq)]
pub struct EnduranceModel {
    /// Writes a cell tolerates before wear-out.
    pub cell_endurance: f64,
    /// Energy per 64-byte block write (nJ).
    pub write_energy_nj: f64,
    /// Energy per 64-byte block read (nJ).
    pub read_energy_nj: f64,
    /// Energy per hash/MAC computation (nJ).
    pub hash_energy_nj: f64,
}

impl EnduranceModel {
    /// Representative PCM constants.
    pub fn pcm() -> Self {
        EnduranceModel {
            cell_endurance: 1e8,
            write_energy_nj: 1.024, // 2 pJ/bit × 512 bit
            read_energy_nj: 0.026,  // 0.05 pJ/bit × 512 bit
            hash_energy_nj: 0.05,
        }
    }

    /// Estimated device lifetime in years under perfect wear-leveling,
    /// given a run's write traffic extrapolated to steady state.
    ///
    /// `capacity_blocks` is the device size; the run's write rate (writes
    /// per simulated nanosecond) is assumed to continue forever and to be
    /// spread uniformly (ideal wear-leveling — an upper bound).
    pub fn ideal_lifetime_years(&self, result: &RunResult, capacity_blocks: u64) -> f64 {
        if result.total_ns == 0 || result.nvm_writes == 0 {
            return f64::INFINITY;
        }
        let writes_per_ns = result.nvm_writes as f64 / result.total_ns as f64;
        let total_budget = self.cell_endurance * capacity_blocks as f64;
        let ns = total_budget / writes_per_ns;
        ns / 1e9 / 3600.0 / 24.0 / 365.25
    }

    /// Worst-case lifetime in years with **no** wear-leveling: the
    /// hottest block (max single-block wear over the run) dies first.
    pub fn unleveled_lifetime_years(&self, max_wear: u64, total_ns: u64) -> f64 {
        if total_ns == 0 || max_wear == 0 {
            return f64::INFINITY;
        }
        let wear_per_ns = max_wear as f64 / total_ns as f64;
        let ns = self.cell_endurance / wear_per_ns;
        ns / 1e9 / 3600.0 / 24.0 / 365.25
    }

    /// Total memory-system energy for a run, in millijoules.
    pub fn energy_mj(&self, result: &RunResult, hash_ops: u64) -> f64 {
        let nj = result.nvm_reads as f64 * self.read_energy_nj
            + result.nvm_writes as f64 * self.write_energy_nj
            + hash_ops as f64 * self.hash_energy_nj;
        nj * 1e-6
    }
}

impl Default for EnduranceModel {
    fn default() -> Self {
        EnduranceModel::pcm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(writes: u64, reads: u64, total_ns: u64) -> RunResult {
        RunResult {
            scheme: "test",
            workload: "w".into(),
            total_ns,
            read_stall_ns: 0,
            write_stall_ns: 0,
            ops: 100,
            nvm_reads: reads,
            nvm_writes: writes,
            writes_per_data_write: 1.0,
            busy_ns: 0,
            channel_time_ns: total_ns,
            latency: crate::engine::LatencySummary::default(),
        }
    }

    #[test]
    fn more_writes_mean_shorter_life() {
        let m = EnduranceModel::pcm();
        let light = m.ideal_lifetime_years(&result(1_000, 0, 1_000_000_000), 1 << 20);
        let heavy = m.ideal_lifetime_years(&result(10_000, 0, 1_000_000_000), 1 << 20);
        assert!(light > heavy);
        assert!((light / heavy - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_writes_live_forever() {
        let m = EnduranceModel::pcm();
        assert!(m
            .ideal_lifetime_years(&result(0, 5, 1_000_000_000), 1024)
            .is_infinite());
        assert!(m.unleveled_lifetime_years(0, 1_000_000_000).is_infinite());
    }

    #[test]
    fn unleveled_is_shorter_than_ideal_for_hot_blocks() {
        let m = EnduranceModel::pcm();
        // 1000 writes total but one block took 500 of them.
        let ideal = m.ideal_lifetime_years(&result(1_000, 0, 1_000_000_000), 1 << 20);
        let unleveled = m.unleveled_lifetime_years(500, 1_000_000_000);
        assert!(unleveled < ideal);
    }

    #[test]
    fn energy_scales_with_traffic() {
        let m = EnduranceModel::pcm();
        let e1 = m.energy_mj(&result(100, 100, 1_000_000_000), 50);
        let e2 = m.energy_mj(&result(200, 200, 1_000_000_000), 100);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }
}
