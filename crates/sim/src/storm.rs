//! Crash-storm campaigns: randomized fault plans under *supervised*
//! recovery, including faults injected into recovery itself.
//!
//! Where [`crate::fault`] sweeps a single deterministic fault and asks the
//! scheme's own `recover()` for a verdict, a storm drives the full
//! [`anubis::Supervisor`] escalation ladder: every run must terminate in a
//! structured [`anubis::RecoveryOutcome`] (`Recovered`, `Degraded`, or
//! `Quarantined`) — never a panic, never silently wrong data. The checker
//! accepts exactly three states for an acknowledged write after
//! supervision: its committed value, the in-flight value of the one
//! interrupted op, or an explicit zero on a line the supervisor
//! quarantined. Anything else aborts the campaign.
//!
//! Each run draws a fresh scripted workload, a fault class (power cut,
//! torn write, bit flip) and an injection point from a [`SplitMix64`]
//! stream seeded per run, so campaigns are reproducible from
//! `(seed, run)` alone. With [`StormConfig::recovery_faults`] set, half
//! the runs additionally arm a device-level *write cut* during recovery —
//! persists silently stop partway through the supervisor's work, the
//! machine is crashed again, and recovery restarts from scratch
//! (recursively, up to three times) before a final uninterrupted attempt.
//!
//! None of the per-run randomness depends on the lane count, and every
//! supervisor rung applies its writes in deterministic item order, so the
//! campaign [`StormReport::fingerprint`] is bit-identical across 1/2/8
//! recovery lanes — the invariant `bench_recovery_degraded` enforces.
//!
//! Only schemes whose ladder terminates can ride a storm: the Bonsai
//! family (all four schemes) and SGX `StrictPersist`/`Asit`. SGX
//! write-back and Osiris are *structurally* unrecoverable once dirty
//! metadata is lost (paper §3) and fail the campaign by design. Give the
//! controller a generous spare pool
//! (e.g. `AnubisConfig::small_test().with_spare_blocks(256)`) so
//! quarantine never runs out of remap capacity mid-campaign.

use std::collections::BTreeMap;

use anubis::{DataAddr, RecoveryOutcome, Supervised, SupervisedRecovery, Supervisor};
use anubis_nvm::{Block, FaultKind, FaultPlan, SplitMix64};

use crate::fault::{count_persist_writes, op_payload, ScriptOp};

/// Maximum consecutive crash-during-recovery injections per run before
/// the final, uninterrupted recovery attempt.
const MAX_RECOVERY_CRASHES: u32 = 3;

/// Shape of one crash-storm campaign.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Number of independent runs (one randomized fault plan each).
    pub runs: u64,
    /// Operations per scripted workload.
    pub ops: u64,
    /// Data-line address space the script draws from.
    pub addr_space: u64,
    /// Campaign seed; run `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Recovery lanes handed to the supervisor.
    pub lanes: usize,
    /// Rung-2 retry budget handed to the supervisor.
    pub max_retries: u32,
    /// Arm write cuts *during* recovery on half the runs.
    pub recovery_faults: bool,
}

impl StormConfig {
    /// A small smoke-sized campaign with recovery faults enabled.
    pub fn smoke(seed: u64) -> Self {
        StormConfig {
            runs: 8,
            ops: 16,
            addr_space: 200,
            seed,
            lanes: 1,
            max_retries: 3,
            recovery_faults: true,
        }
    }

    /// Overrides the supervisor lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Overrides the number of runs.
    pub fn with_runs(mut self, runs: u64) -> Self {
        self.runs = runs;
        self
    }
}

/// Aggregate outcome of a crash-storm campaign.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// `scheme_name()` of the controller under test.
    pub scheme: String,
    /// Runs executed.
    pub runs: u64,
    /// Runs that ended `RecoveryOutcome::Recovered`.
    pub recovered: u64,
    /// Runs that ended `RecoveryOutcome::Degraded`.
    pub degraded: u64,
    /// Runs that ended `RecoveryOutcome::Quarantined`.
    pub quarantined: u64,
    /// Total data lines resealed after ECC repair.
    pub repaired_lines: u64,
    /// Total metadata blocks reconstructed.
    pub rebuilt_nodes: u64,
    /// Total lines remapped into the spare region.
    pub quarantined_lines: u64,
    /// Total quarantined lines whose committed content was lost.
    pub lost_lines: u64,
    /// Total rung-2 retries across all runs.
    pub retries_total: u64,
    /// Total ladder escalations across all runs.
    pub escalations_total: u64,
    /// Write cuts that actually fired during recovery attempts.
    pub recovery_faults_injected: u64,
    /// Order-sensitive digest of every run's outcome and repair counts;
    /// bit-identical across lane counts for the same `(seed, runs)`.
    pub fingerprint: u64,
}

/// Runs a crash-storm campaign against fresh controllers from `make`.
///
/// # Panics
///
/// Panics on any contract violation: wrong data served for an
/// acknowledged write, a post-supervision read error, an unexpected live
/// error, or a supervised recovery that fails outright.
pub fn crash_storm<C, F>(make: F, cfg: &StormConfig) -> StormReport
where
    C: Supervised,
    F: Fn() -> C,
{
    assert!(cfg.runs > 0, "a storm needs at least one run");
    assert!(cfg.ops > 0, "a storm script needs at least one op");
    assert!(cfg.addr_space > 0, "the address space must be non-empty");
    let mut report = StormReport {
        scheme: make().scheme_name().to_string(),
        runs: cfg.runs,
        recovered: 0,
        degraded: 0,
        quarantined: 0,
        repaired_lines: 0,
        rebuilt_nodes: 0,
        quarantined_lines: 0,
        lost_lines: 0,
        retries_total: 0,
        escalations_total: 0,
        recovery_faults_injected: 0,
        fingerprint: mix(0xA17B_0B15_5707_12C4, cfg.seed),
    };
    for run in 0..cfg.runs {
        let mut rng = SplitMix64::new(cfg.seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let script = random_script(&mut rng, cfg.ops, cfg.addr_space);
        let total = count_persist_writes(&make, &script);
        let k = rng.next_u64() % total.max(1);
        let plan = random_plan(&mut rng, k);
        let one = storm_run(&make, &script, plan, cfg, &mut rng);
        match one.sup.outcome {
            RecoveryOutcome::Recovered => report.recovered += 1,
            RecoveryOutcome::Degraded { .. } => report.degraded += 1,
            RecoveryOutcome::Quarantined { .. } => report.quarantined += 1,
        }
        report.repaired_lines += one.sup.repaired_lines;
        report.rebuilt_nodes += one.sup.rebuilt_nodes;
        report.quarantined_lines += one.sup.quarantined_lines;
        report.lost_lines += one.sup.lost_lines;
        report.retries_total += u64::from(one.sup.retries);
        report.escalations_total += u64::from(one.sup.escalations);
        report.recovery_faults_injected += u64::from(one.recovery_crashes);
        for v in [
            run,
            outcome_rank(&one.sup.outcome),
            one.sup.repaired_lines,
            one.sup.rebuilt_nodes,
            one.sup.quarantined_lines,
            one.sup.lost_lines,
            u64::from(one.sup.retries),
            u64::from(one.sup.escalations),
            u64::from(one.recovery_crashes),
        ] {
            report.fingerprint = mix(report.fingerprint, v);
        }
    }
    report
}

struct RunOutcome {
    sup: SupervisedRecovery,
    recovery_crashes: u32,
}

/// One storm run: execute the script with `plan` armed, crash, drive
/// supervised recovery (optionally interrupted by write cuts), then hold
/// the post-supervision state to the acknowledged-write contract.
fn storm_run<C, F>(
    make: &F,
    script: &[ScriptOp],
    plan: FaultPlan,
    cfg: &StormConfig,
    rng: &mut SplitMix64,
) -> RunOutcome
where
    C: Supervised,
    F: Fn() -> C,
{
    // Power cuts leave media intact; the detection-only classes may
    // legitimately surface typed corruption errors on live ops.
    let lenient = !matches!(plan.kind(), FaultKind::PowerCut);
    let label = format!("{plan:?}");

    let mut ctrl = make();
    ctrl.domain_mut().arm_fault(plan);

    let mut model: BTreeMap<u64, Block> = BTreeMap::new();
    let mut attempted: Option<(u64, Block)> = None;
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            let data = op_payload(i as u64, addr);
            match ctrl.write(DataAddr::new(addr), data) {
                Ok(()) => {
                    model.insert(addr, data);
                }
                Err(e) if e.is_power_loss() => {
                    attempted = Some((addr, data));
                    break;
                }
                // Damage detected live: stop driving the workload and
                // hand the machine to the supervisor below.
                Err(e) if lenient && e.is_detected_corruption() => break,
                Err(e) => panic!("[{label}] op {i}: unexpected write error: {e}"),
            }
        } else {
            match ctrl.read(DataAddr::new(addr)) {
                Ok(_) => {}
                Err(e) if e.is_power_loss() => break,
                Err(e) if lenient && e.is_detected_corruption() => break,
                Err(e) => panic!("[{label}] op {i}: unexpected read error: {e}"),
            }
        }
    }

    ctrl.crash();
    let supervisor = Supervisor::new()
        .with_lanes(cfg.lanes)
        .with_max_retries(cfg.max_retries);

    // Crash-during-recovery: arm a write cut so device persists silently
    // stop partway through the supervisor's work, then power-fail and
    // restart the ladder from scratch. The final attempt always runs
    // uninterrupted so every run terminates.
    let mut recovery_crashes = 0u32;
    let mut result = None;
    if cfg.recovery_faults && rng.next_u64().is_multiple_of(2) {
        for _ in 0..MAX_RECOVERY_CRASHES {
            let cut_after = 1 + rng.next_u64() % 256;
            ctrl.domain_mut().device_mut().arm_write_cut(cut_after);
            let attempt = supervisor.recover(&mut ctrl);
            let fired = ctrl.domain().device().write_cut_fired();
            ctrl.domain_mut().device_mut().clear_write_cut();
            if fired {
                // Whatever `attempt` said is void: persists were dropped
                // behind the supervisor's back. Crash and start over.
                recovery_crashes += 1;
                ctrl.crash();
                continue;
            }
            result = Some(attempt);
            break;
        }
    }
    let result = match result {
        Some(r) => r,
        None => supervisor.recover(&mut ctrl),
    };
    let sup =
        result.unwrap_or_else(|e| panic!("[{label}] supervised recovery must terminate, got: {e}"));

    // The contract: every acknowledged write reads back as its committed
    // value, the in-flight value (one interrupted op only), or an
    // explicit zero on a quarantined line. The supervisor's scrub scans
    // with full `read()` verification, so a read *error* here means the
    // ladder lied about converging.
    let in_flight = attempted.map(|(a, _)| a);
    for (&addr, expect) in &model {
        let da = DataAddr::new(addr);
        match ctrl.read(da) {
            Ok(got) => {
                let new_ok = in_flight == Some(addr) && attempted.map(|(_, d)| d) == Some(got);
                let quarantined_zero = got.is_zeroed() && ctrl.is_line_quarantined(da);
                assert!(
                    got == *expect || new_ok || quarantined_zero,
                    "[{label}] post-supervision read of acknowledged addr {addr} returned \
                     wrong data (not committed, not in-flight, not quarantined-zero)"
                );
            }
            Err(e) => panic!(
                "[{label}] post-supervision read of addr {addr} failed: {e} \
                 (outcome was {}, every line must stay readable)",
                sup.outcome
            ),
        }
    }

    RunOutcome {
        sup,
        recovery_crashes,
    }
}

/// A random script: 2/3 writes, addresses split between a 64-line hot set
/// (forcing overwrites and shared metadata) and the full space. The first
/// op is always a write so every script persists something.
fn random_script(rng: &mut SplitMix64, ops: u64, addr_space: u64) -> Vec<ScriptOp> {
    let hot = addr_space.min(64);
    (0..ops)
        .map(|i| {
            let is_write = i == 0 || rng.next_u64() % 3 != 2;
            let addr = if rng.next_u64().is_multiple_of(2) {
                rng.next_u64() % hot
            } else {
                rng.next_u64() % addr_space
            };
            (is_write, addr)
        })
        .collect()
}

/// A random fault plan firing on the `k`-th counted persist write: power
/// cut, torn write (1..=7 torn words), or bit flip (1..=4 random bits).
fn random_plan(rng: &mut SplitMix64, k: u64) -> FaultPlan {
    match rng.next_u64() % 3 {
        0 => FaultPlan::power_cut_after(k),
        1 => FaultPlan::torn_write_after(k, 1 + (rng.next_u64() % 7) as usize),
        _ => {
            let n = 1 + (rng.next_u64() % 4) as usize;
            let bits: Vec<usize> = (0..n).map(|_| (rng.next_u64() % 512) as usize).collect();
            FaultPlan::bit_flip_after(k, bits)
        }
    }
}

fn outcome_rank(outcome: &RecoveryOutcome) -> u64 {
    match outcome {
        RecoveryOutcome::Recovered => 0,
        RecoveryOutcome::Degraded { .. } => 1,
        RecoveryOutcome::Quarantined { .. } => 2,
    }
}

/// SplitMix64-style finalizer folding `v` into a running digest.
fn mix(fp: u64, v: u64) -> u64 {
    let mut x = fp ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};

    fn config() -> AnubisConfig {
        AnubisConfig::small_test().with_spare_blocks(256)
    }

    #[test]
    fn storm_bonsai_agit_plus_is_lane_invariant() {
        let cfg = StormConfig::smoke(0xA5).with_runs(5);
        let make = || BonsaiController::new(BonsaiScheme::AgitPlus, &config());
        let one = crash_storm(make, &cfg);
        let two = crash_storm(make, &cfg.with_lanes(2));
        assert_eq!(one.recovered + one.degraded + one.quarantined, one.runs);
        assert_eq!(one.fingerprint, two.fingerprint);
    }

    #[test]
    fn storm_sgx_asit_is_lane_invariant() {
        let cfg = StormConfig::smoke(0x51).with_runs(5);
        let make = || SgxController::new(SgxScheme::Asit, &config());
        let one = crash_storm(make, &cfg);
        let eight = crash_storm(make, &cfg.with_lanes(8));
        assert_eq!(one.recovered + one.degraded + one.quarantined, one.runs);
        assert_eq!(one.fingerprint, eight.fingerprint);
    }

    #[test]
    fn storm_osiris_terminates_structured() {
        let cfg = StormConfig::smoke(0x05).with_runs(4);
        let make = || BonsaiController::new(BonsaiScheme::Osiris, &config());
        let report = crash_storm(make, &cfg);
        assert_eq!(
            report.recovered + report.degraded + report.quarantined,
            report.runs
        );
    }
}
