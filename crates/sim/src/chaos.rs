//! Multi-tenant serving chaos harness: N concurrent tenant clients
//! against a child `anubis-serve` process, connection-layer fault
//! injection, SIGKILL at randomized ack thresholds, restart, and
//! acknowledged-write verification.
//!
//! The contract being drilled, per campaign point:
//!
//! 1. Spawn the server on a fresh data directory with ≥4 tenants.
//! 2. One client thread per tenant streams writes, recording every
//!    acknowledged `(addr, payload)`.
//! 3. A saboteur connection injects one connection-layer fault class
//!    (garbage magic, corrupted checksum, truncated frame, slowloris
//!    stall, mid-stream disconnect) and asserts it surfaces as a typed
//!    protocol error or a clean close — never a hang.
//! 4. When the global ack count crosses the point's randomized kill
//!    threshold, the server is SIGKILLed mid-flight.
//! 5. The server restarts on the same images; the harness measures
//!    **time-to-healthy** (every tenant back in full serving mode).
//! 6. Every acknowledged write must read back exactly; the single
//!    in-flight-at-kill write per tenant may read as either its old or
//!    new value (same tolerance as the single-process drill).
//!
//! Any acknowledged-write loss, untyped connection fault, or tenant that
//! never returns to full service fails the campaign with a typed
//! [`ChaosError`].

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use anubis_server::protocol::{
    fnv1a64, read_frame, write_frame, FrameEvent, Request, Response, MAGIC,
};
use anubis_server::{ClientError, ServeClient, ServeError, ServeMode};

/// Campaign-level failure. Everything carries enough context to
/// reproduce: the tenant, the address, the fault class, the path.
#[derive(Debug)]
pub enum ChaosError {
    /// Filesystem or process-management failure, with operation and path.
    Io {
        /// What the harness was doing.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The server child did not print its listening line.
    ServerSpawn {
        /// What went wrong.
        detail: String,
    },
    /// An acknowledged write read back wrong after restart.
    AckedWriteLost {
        /// The tenant that lost the write.
        tenant: String,
        /// The data-line address.
        addr: u64,
        /// First byte of the expected payload (acked value).
        want: u8,
        /// First byte of what was read back.
        got: u8,
    },
    /// A tenant did not return to full serving mode within the budget.
    NotHealthy {
        /// The stuck tenant.
        tenant: String,
        /// How long the harness waited.
        waited_ms: u64,
    },
    /// An injected connection fault did not surface as a typed protocol
    /// error or clean close.
    UntypedFault {
        /// The fault class that misbehaved.
        fault: &'static str,
        /// What was observed instead.
        detail: String,
    },
    /// A client could not complete the verification phase.
    Verify {
        /// The tenant being verified.
        tenant: String,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Io { op, path, source } => {
                write!(
                    f,
                    "chaos I/O failure while {op} at {}: {source}",
                    path.display()
                )
            }
            ChaosError::ServerSpawn { detail } => write!(f, "server spawn failed: {detail}"),
            ChaosError::AckedWriteLost {
                tenant,
                addr,
                want,
                got,
            } => write!(
                f,
                "ACKED WRITE LOST: tenant {tenant} addr {addr} want {want:#04x} got {got:#04x}"
            ),
            ChaosError::NotHealthy { tenant, waited_ms } => write!(
                f,
                "tenant {tenant} not back to full service after {waited_ms} ms"
            ),
            ChaosError::UntypedFault { fault, detail } => {
                write!(f, "connection fault {fault:?} was not typed: {detail}")
            }
            ChaosError::Verify { tenant, detail } => {
                write!(f, "verification failed for tenant {tenant}: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

fn io_ctx<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> ChaosError + 'a {
    move |source| ChaosError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Campaign geometry.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Seed for scripts and kill thresholds.
    pub seed: u64,
    /// Concurrent tenants (the acceptance floor is 4).
    pub tenants: usize,
    /// Data lines per tenant address space.
    pub lines: u64,
    /// Maximum writes per tenant per point.
    pub script_len: u64,
    /// Budget for every tenant to return to full service after restart.
    pub healthy_budget_ms: u64,
    /// Server-side mid-frame stall budget (kept small so slowloris
    /// points resolve quickly).
    pub server_stall_ms: u32,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0xC4A0_5EED,
            tenants: 4,
            lines: 48,
            script_len: 24,
            healthy_budget_ms: 20_000,
            server_stall_ms: 150,
        }
    }
}

/// One campaign point's outcome.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// Ack threshold at which the server was SIGKILLed.
    pub kill_after_acks: u64,
    /// Acknowledged writes across all tenants before the kill.
    pub acked: u64,
    /// Whether every script completed before the threshold was reached
    /// (the kill then lands post-quiescence).
    pub completed: bool,
    /// Connection fault class injected this point.
    pub fault: &'static str,
    /// Milliseconds from restart until every tenant served in full mode.
    pub time_to_healthy_ms: u64,
    /// Acknowledged `(tenant, addr)` pairs verified after restart.
    pub verified_addrs: u64,
    /// Reads that matched the in-flight-at-kill value instead of the
    /// last acked value (the allowed single-write tolerance).
    pub inflight_tolerated: u64,
}

/// Whole-campaign report.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Campaign points executed.
    pub points: u64,
    /// Concurrent tenants per point.
    pub tenants: u64,
    /// Total acknowledged writes across the campaign.
    pub acked_total: u64,
    /// Total acknowledged writes verified after restarts.
    pub verified_total: u64,
    /// Points whose scripts completed before the kill threshold.
    pub completed_runs: u64,
    /// Total in-flight-tolerance hits.
    pub inflight_tolerated: u64,
    /// Median time-to-healthy across points, milliseconds.
    pub tth_p50_ms: u64,
    /// 95th-percentile time-to-healthy across points, milliseconds.
    pub tth_p95_ms: u64,
    /// `(fault class, injections)` counts — every one surfaced typed.
    pub fault_counts: Vec<(&'static str, u64)>,
    /// Kill-threshold range exercised.
    pub kill_range: (u64, u64),
    /// Per-point detail.
    pub outcomes: Vec<PointOutcome>,
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const FAULTS: [&str; 5] = [
    "bad_magic",
    "bad_checksum",
    "truncated_disconnect",
    "slowloris",
    "midstream_disconnect",
];

fn tenant_name(i: usize) -> String {
    format!("tenant-{i}")
}

fn tenant_token(i: usize) -> String {
    format!("token-{i}")
}

fn roster(spec: &ChaosSpec) -> String {
    (0..spec.tenants)
        .map(|i| {
            let family = if i % 2 == 0 { "bonsai" } else { "sgx" };
            format!("{}:{}:{}", tenant_name(i), tenant_token(i), family)
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn payload_for(tenant: usize, op: u64, nonce: u64) -> [u8; 64] {
    let h = fnv1a64(&[tenant as u8, op as u8, (op >> 8) as u8]) ^ nonce.rotate_left(17);
    let mut b = [0u8; 64];
    for (i, slot) in b.iter_mut().enumerate() {
        *slot = (h.rotate_left((i % 64) as u32) & 0xFF) as u8;
    }
    b[0] = (h & 0x7F) as u8 | 0x80; // never zero: distinguishes from unwritten
    b
}

/// A spawned server child plus its parsed listen address.
struct ServerProc {
    child: Child,
    addr: String,
}

fn spawn_server(
    exe: &Path,
    serve_args: &[&str],
    data_dir: &Path,
    spec: &ChaosSpec,
) -> Result<ServerProc, ChaosError> {
    let mut child = Command::new(exe)
        .args(serve_args)
        .env("ANUBIS_SERVE_ADDR", "127.0.0.1:0")
        .env("ANUBIS_SERVE_DATA", data_dir)
        .env("ANUBIS_SERVE_TENANTS", roster(spec))
        .env("ANUBIS_SERVE_STALL_MS", spec.server_stall_ms.to_string())
        .env("ANUBIS_SERVE_IDLE_MS", "10000")
        .env("ANUBIS_SERVE_CHAOS", "0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(io_ctx("spawning server", exe))?;
    let stdout = child.stdout.take().ok_or_else(|| ChaosError::ServerSpawn {
        detail: "no stdout pipe".to_string(),
    })?;
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("ANUBIS_SERVE_LISTENING ") {
                    break rest.trim().to_string();
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                return Err(ChaosError::ServerSpawn {
                    detail: format!("stdout read failed: {e}"),
                });
            }
            None => {
                let _ = child.kill();
                return Err(ChaosError::ServerSpawn {
                    detail: "server exited before printing listen address".to_string(),
                });
            }
        }
    };
    Ok(ServerProc { child, addr })
}

/// What one tenant client learned before the kill.
#[derive(Default)]
struct TenantLedger {
    /// Last acknowledged payload per address.
    acked: BTreeMap<u64, [u8; 64]>,
    /// The write that was in flight when the connection died, if any.
    inflight: Option<(u64, [u8; 64])>,
    acks: u64,
}

/// Streams the write script for one tenant until the connection dies or
/// the script completes. Typed rejections (Degraded during the boot
/// ladder, Overloaded, CircuitOpen, DeadlineExceeded) are retried after
/// a short pause — they are backpressure, not failures.
fn run_tenant_script(
    addr: &str,
    tenant_idx: usize,
    spec: &ChaosSpec,
    point_nonce: u64,
    acks_global: &AtomicU64,
    stop: &AtomicBool,
) -> TenantLedger {
    let mut ledger = TenantLedger::default();
    let Ok(mut client) =
        ServeClient::connect(addr, &tenant_name(tenant_idx), &tenant_token(tenant_idx))
    else {
        return ledger;
    };
    let mut rng = XorShift::new(
        spec.seed ^ point_nonce.rotate_left(23) ^ (tenant_idx as u64).rotate_left(41),
    );
    let mut op = 0u64;
    while op < spec.script_len && !stop.load(Ordering::Relaxed) {
        let line = rng.next() % spec.lines;
        let payload = payload_for(tenant_idx, op, rng.next());
        ledger.inflight = Some((line, payload));
        match client.write(line, payload, 200) {
            Ok(()) => {
                ledger.inflight = None;
                ledger.acked.insert(line, payload);
                ledger.acks += 1;
                acks_global.fetch_add(1, Ordering::Relaxed);
                op += 1;
            }
            Err(ClientError::Server(
                ServeError::Degraded { .. }
                | ServeError::Overloaded { .. }
                | ServeError::CircuitOpen { .. }
                | ServeError::DeadlineExceeded { .. },
            )) => {
                // Typed backpressure: the write was not executed.
                ledger.inflight = None;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break, // Connection died (the kill); keep inflight.
        }
    }
    ledger
}

/// Injects one connection-layer fault and asserts the server's reaction
/// is typed: either a `BadFrame` error response or a clean close. A hang
/// (no reaction within the budget) is a campaign failure.
fn inject_connection_fault(addr: &str, fault: &'static str) -> Result<(), ChaosError> {
    let untyped = |detail: String| ChaosError::UntypedFault { fault, detail };
    let mut stream = TcpStream::connect(addr).map_err(|e| untyped(format!("connect: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .map_err(|e| untyped(format!("set timeout: {e}")))?;

    let expect_typed_or_close = |stream: &mut TcpStream| -> Result<(), ChaosError> {
        match read_frame(
            stream,
            1 << 20,
            Duration::from_secs(5),
            Duration::from_secs(5),
            &|| false,
        ) {
            Ok(FrameEvent::Payload(p)) => match Response::decode(&p) {
                Ok(Response::Err(ServeError::BadFrame { .. })) => Ok(()),
                Ok(other) => Err(untyped(format!("unexpected response {other:?}"))),
                Err(e) => Err(untyped(format!("undecodable response: {e}"))),
            },
            Ok(FrameEvent::Closed) => Ok(()),
            Err(e) => Err(untyped(format!("transport error: {e}"))),
        }
    };

    match fault {
        "bad_magic" => {
            stream
                .write_all(&[0xBA, 0xDC, 0x0F, 0xFE, 4, 0, 0, 0])
                .map_err(|e| untyped(format!("write: {e}")))?;
            expect_typed_or_close(&mut stream)
        }
        "bad_checksum" => {
            let payload = Request::Stats.encode();
            let mut frame = Vec::new();
            frame.extend_from_slice(&MAGIC.to_le_bytes());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&(fnv1a64(&payload) ^ 0xFFFF).to_le_bytes());
            stream
                .write_all(&frame)
                .map_err(|e| untyped(format!("write: {e}")))?;
            expect_typed_or_close(&mut stream)
        }
        "truncated_disconnect" => {
            let mut frame = Vec::new();
            frame.extend_from_slice(&MAGIC.to_le_bytes());
            frame.extend_from_slice(&128u32.to_le_bytes());
            frame.extend_from_slice(&[0xAA; 10]); // 10 of 128 promised bytes
            stream
                .write_all(&frame)
                .map_err(|e| untyped(format!("write: {e}")))?;
            drop(stream); // Disconnect mid-frame; server must not hang.
            Ok(())
        }
        "slowloris" => {
            let mut frame = Vec::new();
            frame.extend_from_slice(&MAGIC.to_le_bytes());
            frame.extend_from_slice(&64u32.to_le_bytes());
            frame.extend_from_slice(&[0x55; 8]);
            stream
                .write_all(&frame)
                .map_err(|e| untyped(format!("write: {e}")))?;
            // Go silent mid-frame past the server's stall budget; the
            // typed reaction is BadFrame(stalled) or a close.
            expect_typed_or_close(&mut stream)
        }
        "midstream_disconnect" => {
            // Handshake first, then vanish mid-frame on an established
            // session.
            let hello = Request::Hello {
                version: anubis_server::PROTO_VERSION,
                tenant: tenant_name(0),
                token: anubis_server::token_hash(&tenant_token(0)),
            };
            write_frame(&mut stream, &hello.encode())
                .map_err(|e| untyped(format!("hello: {e}")))?;
            match read_frame(
                &mut stream,
                1 << 20,
                Duration::from_secs(5),
                Duration::from_secs(5),
                &|| false,
            ) {
                Ok(FrameEvent::Payload(_)) => {}
                other => return Err(untyped(format!("handshake got {:?}", other.map(|_| ())))),
            }
            let mut partial = Vec::new();
            partial.extend_from_slice(&MAGIC.to_le_bytes());
            partial.extend_from_slice(&77u32.to_le_bytes());
            partial.extend_from_slice(&[1, 2, 3, 4]);
            stream
                .write_all(&partial)
                .map_err(|e| untyped(format!("write: {e}")))?;
            drop(stream);
            Ok(())
        }
        other => Err(untyped(format!("unknown fault class {other:?}"))),
    }
}

/// Polls every tenant until it reports full serving mode; returns the
/// elapsed milliseconds (time-to-healthy for the point).
fn await_all_healthy(addr: &str, spec: &ChaosSpec) -> Result<u64, ChaosError> {
    let start = Instant::now();
    let budget = Duration::from_millis(spec.healthy_budget_ms);
    for i in 0..spec.tenants {
        let name = tenant_name(i);
        loop {
            if start.elapsed() > budget {
                return Err(ChaosError::NotHealthy {
                    tenant: name,
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            match ServeClient::connect(addr, &name, &tenant_token(i)) {
                Ok(mut c) => match c.stats() {
                    Ok(s) if s.mode == ServeMode::Full.code() => break,
                    _ => std::thread::sleep(Duration::from_millis(5)),
                },
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
    Ok(start.elapsed().as_millis() as u64)
}

/// Verifies every acknowledged write for one tenant, honoring the
/// single in-flight tolerance. Returns `(verified, inflight_hits)`.
fn verify_tenant(
    addr: &str,
    tenant_idx: usize,
    ledger: &TenantLedger,
) -> Result<(u64, u64), ChaosError> {
    let name = tenant_name(tenant_idx);
    let mut client = ServeClient::connect(addr, &name, &tenant_token(tenant_idx)).map_err(|e| {
        ChaosError::Verify {
            tenant: name.clone(),
            detail: format!("connect: {e}"),
        }
    })?;
    let mut verified = 0u64;
    let mut inflight_hits = 0u64;
    for (&line, want) in &ledger.acked {
        let (got, _mode) = client.read(line, 0).map_err(|e| ChaosError::Verify {
            tenant: name.clone(),
            detail: format!("read addr {line}: {e}"),
        })?;
        if got == *want {
            verified += 1;
            continue;
        }
        // The one in-flight write at kill time may have landed instead.
        if let Some((infl_addr, infl_payload)) = &ledger.inflight {
            if *infl_addr == line && got == *infl_payload {
                verified += 1;
                inflight_hits += 1;
                continue;
            }
        }
        return Err(ChaosError::AckedWriteLost {
            tenant: name,
            addr: line,
            want: want[0],
            got: got[0],
        });
    }
    Ok((verified, inflight_hits))
}

/// Runs one campaign point; see the module docs for the sequence.
#[allow(clippy::too_many_lines)]
fn run_point(
    exe: &Path,
    serve_args: &[&str],
    spec: &ChaosSpec,
    dir: &Path,
    point: u64,
    kill_after_acks: u64,
    fault: &'static str,
) -> Result<PointOutcome, ChaosError> {
    let point_dir = dir.join(format!("point-{point}"));
    let _ = std::fs::remove_dir_all(&point_dir);
    std::fs::create_dir_all(&point_dir).map_err(io_ctx("creating point dir", &point_dir))?;

    // Phase 1: serve, stream writes, sabotage, kill.
    let mut server = spawn_server(exe, serve_args, &point_dir, spec)?;
    let acks = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for i in 0..spec.tenants {
        let addr = server.addr.clone();
        let spec_c = spec.clone();
        let acks_c = Arc::clone(&acks);
        let stop_c = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            run_tenant_script(&addr, i, &spec_c, point, &acks_c, &stop_c)
        }));
    }
    // The saboteur runs while the tenants stream.
    let fault_result = inject_connection_fault(&server.addr, fault);

    // Kill when the ack threshold is crossed (or all scripts finish).
    let kill_deadline = Instant::now() + Duration::from_secs(30);
    let completed = loop {
        let total = acks.load(Ordering::Relaxed);
        if total >= kill_after_acks {
            break false;
        }
        if workers.iter().all(|w| w.is_finished()) {
            break true;
        }
        if Instant::now() > kill_deadline {
            break true; // Stuck scripts: kill anyway; verification decides.
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    server
        .child
        .kill()
        .map_err(io_ctx("SIGKILLing server", exe))?;
    let _ = server.child.wait();
    stop.store(true, Ordering::Relaxed);
    let ledgers: Vec<TenantLedger> = workers
        .into_iter()
        .map(|w| w.join().unwrap_or_default())
        .collect();
    fault_result?;

    // Phase 2: restart on the same images, measure time-to-healthy.
    let restart = spawn_server(exe, serve_args, &point_dir, spec)?;
    let time_to_healthy_ms = match await_all_healthy(&restart.addr, spec) {
        Ok(ms) => ms,
        Err(e) => {
            let mut child = restart.child;
            let _ = child.kill();
            return Err(e);
        }
    };

    // Phase 3: every acknowledged write must read back.
    let mut verified_addrs = 0u64;
    let mut inflight_tolerated = 0u64;
    let mut verify_err = None;
    for (i, ledger) in ledgers.iter().enumerate() {
        if ledger.acked.is_empty() {
            continue;
        }
        match verify_tenant(&restart.addr, i, ledger) {
            Ok((v, t)) => {
                verified_addrs += v;
                inflight_tolerated += t;
            }
            Err(e) => {
                verify_err = Some(e);
                break;
            }
        }
    }
    let mut child = restart.child;
    let _ = child.kill();
    let _ = child.wait();
    if let Some(e) = verify_err {
        return Err(e);
    }
    let _ = std::fs::remove_dir_all(&point_dir);

    Ok(PointOutcome {
        kill_after_acks,
        acked: ledgers.iter().map(|l| l.acks).sum(),
        completed,
        fault,
        time_to_healthy_ms,
        verified_addrs,
        inflight_tolerated,
    })
}

/// Runs a chaos campaign of `points` kill points against the server
/// binary at `exe` (invoked with `serve_args`, e.g. `["--serve"]`).
/// `sweep` walks every ack threshold exhaustively instead of sampling.
///
/// # Errors
///
/// The first [`ChaosError`] encountered; a clean return means **zero
/// acknowledged-write loss**, every fault typed, and every tenant back
/// in full service within budget on every point.
pub fn run_chaos_campaign(
    exe: &Path,
    serve_args: &[&str],
    spec: &ChaosSpec,
    dir: &Path,
    points: u64,
    sweep: bool,
) -> Result<ChaosReport, ChaosError> {
    std::fs::create_dir_all(dir).map_err(io_ctx("creating campaign dir", dir))?;
    let max_acks = (spec.tenants as u64) * spec.script_len;
    let points = if sweep { points.min(max_acks) } else { points };
    let mut rng = XorShift::new(spec.seed);
    let mut outcomes = Vec::new();
    let mut fault_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut kill_lo = u64::MAX;
    let mut kill_hi = 0u64;
    for point in 0..points {
        let kill_after_acks = if sweep {
            point + 1
        } else {
            1 + rng.next() % max_acks
        };
        let fault = FAULTS[(point as usize) % FAULTS.len()];
        let outcome = run_point(exe, serve_args, spec, dir, point, kill_after_acks, fault)?;
        kill_lo = kill_lo.min(kill_after_acks);
        kill_hi = kill_hi.max(kill_after_acks);
        *fault_counts.entry(fault).or_insert(0) += 1;
        outcomes.push(outcome);
    }
    let mut tth: Vec<u64> = outcomes.iter().map(|o| o.time_to_healthy_ms).collect();
    tth.sort_unstable();
    Ok(ChaosReport {
        points,
        tenants: spec.tenants as u64,
        acked_total: outcomes.iter().map(|o| o.acked).sum(),
        verified_total: outcomes.iter().map(|o| o.verified_addrs).sum(),
        completed_runs: outcomes.iter().filter(|o| o.completed).count() as u64,
        inflight_tolerated: outcomes.iter().map(|o| o.inflight_tolerated).sum(),
        tth_p50_ms: anubis::telemetry::percentile_of_sorted(&tth, 0.50),
        tth_p95_ms: anubis::telemetry::percentile_of_sorted(&tth, 0.95),
        fault_counts: fault_counts.into_iter().collect(),
        kill_range: if kill_lo == u64::MAX {
            (0, 0)
        } else {
            (kill_lo, kill_hi)
        },
        outcomes,
    })
}
