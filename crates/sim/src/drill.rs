//! Kill −9 restart drills against the file-backed NVM device.
//!
//! The fault campaigns in [`crate::fault`] crash a controller *in
//! process*: the device image survives because it lives in the same
//! address space. This module removes that safety net. A **child
//! process** serves a deterministic script against a
//! [`anubis_nvm::FileBackend`] image and appends a checksummed,
//! fsynced *ack record* after every acknowledged write. The **parent**
//! SIGKILLs the child at a randomized point, then — in its own address
//! space, exactly like a machine restart — reopens the image, runs the
//! recovery supervisor, and verifies that every acknowledged write reads
//! back its last acknowledged payload.
//!
//! The contract under test is the durability side of the Anubis
//! recovery story: an acknowledged write (one whose commit group reached
//! the write-ahead log *and* was flushed by the backend barrier) must
//! survive an arbitrary process death, while an unacknowledged tail may
//! vanish — but must never surface as silently wrong data.
//!
//! Tolerance window: the child logs the ack *after* the controller
//! acknowledges, so a kill can land between the durable barrier and the
//! ack append. At most **one** write (the first scripted write past the
//! highest logged ack) may therefore be durable-but-unlogged; its
//! address may read either its old acknowledged payload or the in-flight
//! one. Everything else must match the ack log exactly.
//!
//! Verification re-runs at several recovery lane counts and demands a
//! bit-identical post-recovery device fingerprint at every count — the
//! determinism contract of [`anubis::parallel`], now checked across a
//! real process restart.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemError, MemoryController,
    RecoveryError, SgxController, SgxScheme, Supervised, SupervisedRecovery, Supervisor,
};
use anubis_nvm::{Block, FileBackend, NvmBackend, NvmError};

use crate::fault::{op_payload, ScriptOp};

/// Bytes per ack record: op index, address, FNV-1a checksum of the two.
const ACK_RECORD_BYTES: usize = 24;

/// How long the parent waits for the child before declaring it hung.
const CHILD_TIMEOUT: Duration = Duration::from_secs(300);

/// The controller families the drill exercises — the paper's two
/// recoverable schemes, one per tree style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillFamily {
    /// Bonsai-style Merkle tree under AGIT+ (Anubis general-purpose).
    BonsaiAgitPlus,
    /// SGX-style counter tree under ASIT (Anubis secure-metadata).
    SgxAsit,
}

impl DrillFamily {
    /// Stable identifier used on the child command line and in reports.
    pub fn name(self) -> &'static str {
        match self {
            DrillFamily::BonsaiAgitPlus => "bonsai-agit-plus",
            DrillFamily::SgxAsit => "sgx-asit",
        }
    }

    /// Parses the identifier produced by [`DrillFamily::name`].
    pub fn parse(s: &str) -> Option<DrillFamily> {
        match s {
            "bonsai-agit-plus" => Some(DrillFamily::BonsaiAgitPlus),
            "sgx-asit" => Some(DrillFamily::SgxAsit),
            _ => None,
        }
    }

    /// Both drilled families.
    pub fn all() -> [DrillFamily; 2] {
        [DrillFamily::BonsaiAgitPlus, DrillFamily::SgxAsit]
    }
}

/// Everything a drill campaign needs besides the family.
#[derive(Debug, Clone)]
pub struct DrillSpec {
    /// Script length in operations (reads and writes).
    pub script_len: usize,
    /// Data-line address range the script touches.
    pub lines: u64,
    /// Seed for the script and for the kill-point sequence.
    pub seed: u64,
    /// Recovery lane counts verified per kill point; fingerprints must
    /// agree across all of them.
    pub lanes: Vec<usize>,
}

impl Default for DrillSpec {
    fn default() -> Self {
        DrillSpec {
            script_len: 1_200,
            lines: 300,
            seed: 0xA17B_05E7,
            lanes: vec![1, 2, 8],
        }
    }
}

/// A drill failure. Every variant is a campaign-stopping finding (or an
/// environmental error the caller should surface), never a panic.
#[derive(Debug)]
pub enum DrillError {
    /// Filesystem or process-control failure in the harness itself,
    /// annotated with the operation that failed and the path involved.
    Io {
        /// What the harness was doing (e.g. `"spawn child"`).
        op: &'static str,
        /// The file or executable the operation targeted.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The child process was handed a malformed command line.
    BadChildArg {
        /// Which argument was missing or unparseable.
        what: &'static str,
    },
    /// The device image failed to open or replay.
    Nvm(NvmError),
    /// The child process exited with a failure *before* being killed —
    /// the serve loop hit an unexpected controller error.
    Child {
        /// Exit code, if the child exited (rather than died on signal).
        code: Option<i32>,
    },
    /// The child made no progress within [`CHILD_TIMEOUT`].
    Hung,
    /// Post-restart recovery failed outright.
    Recovery(RecoveryError),
    /// An acknowledged write did not read back after recovery.
    AckedWriteLost {
        /// The data-line address that lost its payload.
        addr: u64,
        /// The script index of the last acknowledged write to it.
        op_index: u64,
        /// Lane count of the verification run that caught it.
        lanes: usize,
    },
    /// A read of an acknowledged address errored after recovery.
    AckedReadFailed {
        /// The data-line address whose read failed.
        addr: u64,
        /// The controller error.
        err: MemError,
    },
    /// Two lane counts produced different post-recovery device images.
    FingerprintMismatch {
        /// Fingerprint at one lane count.
        got: u64,
        /// Fingerprint at the reference (first) lane count.
        want: u64,
        /// The lane count that diverged.
        lanes: usize,
    },
    /// An unexpected controller error inside the child serve loop,
    /// reported with its script position.
    Serve {
        /// Script index of the failing operation.
        op_index: u64,
        /// The controller error.
        err: MemError,
    },
    /// A campaign point failed; wraps the underlying error with enough
    /// context to reproduce it (the point's scratch dir is kept).
    Point {
        /// Index of the failing point in campaign order.
        index: u64,
        /// The point's kill threshold (acks).
        kill_after: u64,
        /// Scratch directory preserved for post-mortem.
        dir: PathBuf,
        /// The underlying failure.
        source: Box<DrillError>,
    },
}

impl std::fmt::Display for DrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrillError::Io { op, path, source } => write!(
                f,
                "drill harness I/O error: {op} {}: {source}",
                path.display()
            ),
            DrillError::BadChildArg { what } => {
                write!(f, "drill child: bad argument: {what}")
            }
            DrillError::Nvm(e) => write!(f, "device image error: {e}"),
            DrillError::Child { code: Some(c) } => {
                write!(f, "child failed before kill (exit code {c})")
            }
            DrillError::Child { code: None } => {
                write!(f, "child died on an unexpected signal before kill")
            }
            DrillError::Hung => write!(f, "child made no progress before timeout"),
            DrillError::Recovery(e) => write!(f, "post-restart recovery failed: {e}"),
            DrillError::AckedWriteLost {
                addr,
                op_index,
                lanes,
            } => write!(
                f,
                "acknowledged write lost: addr {addr} (op {op_index}) at {lanes} lanes"
            ),
            DrillError::AckedReadFailed { addr, err } => {
                write!(
                    f,
                    "post-recovery read of acknowledged addr {addr} failed: {err}"
                )
            }
            DrillError::FingerprintMismatch { got, want, lanes } => write!(
                f,
                "post-recovery fingerprint {got:#018x} at {lanes} lanes differs from {want:#018x}"
            ),
            DrillError::Serve { op_index, err } => {
                write!(f, "child serve loop failed at op {op_index}: {err}")
            }
            DrillError::Point {
                index,
                kill_after,
                dir,
                source,
            } => write!(
                f,
                "point {index} (kill after {kill_after} acks, artifacts in {}): {source}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for DrillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrillError::Io { source, .. } => Some(source),
            DrillError::Point { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Builds a [`DrillError::Io`] mapper that stamps `op` and `path` onto a
/// raw I/O error. There is deliberately no blanket `From<std::io::Error>`:
/// every call site must say what it was doing and to which file.
fn io_ctx<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> DrillError + 'a {
    move |source| DrillError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

impl From<NvmError> for DrillError {
    fn from(e: NvmError) -> Self {
        DrillError::Nvm(e)
    }
}

impl From<RecoveryError> for DrillError {
    fn from(e: RecoveryError) -> Self {
        DrillError::Recovery(e)
    }
}

/// FNV-1a over arbitrary bytes (same constants as the NVM crate's WAL
/// checksums; duplicated here because the drill is an external observer
/// of the image, not part of it).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Simple xorshift64* step — deterministic, dependency-free randomness
/// for scripts and kill points.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The deterministic drill workload: `len` operations over `lines` data
/// lines, roughly 70 % writes, fully determined by `seed`. Payloads come
/// from [`op_payload`], keyed by script position, so overwrites of the
/// same address are distinguishable.
pub fn drill_script(len: usize, lines: u64, seed: u64) -> Vec<ScriptOp> {
    let mut rng = seed | 1;
    (0..len)
        .map(|_| {
            let is_write = xorshift(&mut rng) % 10 < 7;
            let addr = xorshift(&mut rng) % lines.max(1);
            (is_write, addr)
        })
        .collect()
}

/// Append-only, fsync-per-record acknowledgement log the child maintains.
///
/// Each record is `[op_index u64 LE][addr u64 LE][fnv1a64 of the first
/// 16 bytes]`. `sync_data` after every append makes the log a durable
/// lower bound on what the device image must contain: a record is only
/// readable if the write it describes was already acknowledged (and the
/// acknowledgement barrier precedes the append in program order).
pub struct AckWriter {
    file: File,
}

impl AckWriter {
    /// Creates (truncating) the ack log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn create(path: &Path) -> std::io::Result<AckWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(AckWriter { file })
    }

    /// Appends and fsyncs one acknowledgement record.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn append(&mut self, op_index: u64, addr: u64) -> std::io::Result<()> {
        let mut rec = [0u8; ACK_RECORD_BYTES];
        rec[..8].copy_from_slice(&op_index.to_le_bytes());
        rec[8..16].copy_from_slice(&addr.to_le_bytes());
        let crc = fnv1a64(&rec[..16]);
        rec[16..].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&rec)?;
        self.file.sync_data()
    }
}

/// Parses an ack log, dropping a torn tail record (short or failing its
/// checksum — both only possible for the final append in flight when the
/// child died).
///
/// # Errors
///
/// Propagates read failures; a missing file parses as an empty log (the
/// child may have been killed before creating it).
pub fn read_ack_log(path: &Path) -> std::io::Result<Vec<(u64, u64)>> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let mut out = Vec::new();
    for rec in raw.chunks(ACK_RECORD_BYTES) {
        if rec.len() < ACK_RECORD_BYTES {
            break;
        }
        let crc = u64::from_le_bytes(rec[16..24].try_into().expect("sliced to 8 bytes"));
        if crc != fnv1a64(&rec[..16]) {
            break;
        }
        let idx = u64::from_le_bytes(rec[..8].try_into().expect("sliced to 8 bytes"));
        let addr = u64::from_le_bytes(rec[8..16].try_into().expect("sliced to 8 bytes"));
        out.push((idx, addr));
    }
    Ok(out)
}

/// Reopens a family's controller over `backend` and runs supervised
/// recovery: straight up the ladder normally, entering at rung 3 via
/// [`Supervisor::repair_then_recover`] when reopen surfaced a typed
/// corruption hint (e.g. an unparseable persisted quarantine table).
fn recover_reopened<C: Supervised>(
    ctrl: &mut C,
    hint: Option<&RecoveryError>,
    lanes: usize,
) -> Result<SupervisedRecovery, RecoveryError> {
    let sup = Supervisor::new().with_lanes(lanes);
    match hint {
        Some(err) => sup.repair_then_recover(ctrl, err),
        None => sup.recover(ctrl),
    }
}

/// A stable fingerprint of the persistent device state: every touched
/// block and every register mirror, hashed in address order. Two
/// recoveries that leave different fingerprints observably diverged.
pub fn device_fingerprint<C: MemoryController>(ctrl: &C) -> u64 {
    let backend = ctrl.domain().device().backend();
    let mut entries = backend.entries();
    entries.sort_by_key(|&(a, _)| a);
    let mut regs = backend.regs();
    regs.sort_by_key(|&(i, _)| i);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (addr, block) in &entries {
        mix(&addr.to_le_bytes());
        mix(block.as_bytes());
    }
    mix(b"|regs|");
    for (idx, block) in &regs {
        mix(&[*idx]);
        mix(block.as_bytes());
    }
    h
}

/// The serve loop: recover whatever state the image holds, then play the
/// script, appending an ack record after each acknowledged write.
fn serve<C: Supervised>(
    mut ctrl: C,
    hint: Option<RecoveryError>,
    ack: &Path,
    script: &[ScriptOp],
) -> Result<(), DrillError> {
    recover_reopened(&mut ctrl, hint.as_ref(), 1)?;
    let mut log = AckWriter::create(ack).map_err(io_ctx("create ack log", ack))?;
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .map_err(|err| DrillError::Serve {
                    op_index: i as u64,
                    err,
                })?;
            log.append(i as u64, addr)
                .map_err(io_ctx("append ack record to", ack))?;
        } else {
            ctrl.read(DataAddr::new(addr))
                .map_err(|err| DrillError::Serve {
                    op_index: i as u64,
                    err,
                })?;
        }
    }
    Ok(())
}

/// Child-process entry point. `args` is the tail of the command line
/// after the `--child` marker: `family image ack script_len lines seed`.
///
/// # Errors
///
/// Any [`DrillError`] from opening the image, recovering, or serving;
/// [`DrillError::BadChildArg`] for a malformed command line.
pub fn child_main(args: &[String]) -> Result<(), DrillError> {
    let bad = |what: &'static str| DrillError::BadChildArg { what };
    let family = args
        .first()
        .and_then(|s| DrillFamily::parse(s))
        .ok_or_else(|| bad("family"))?;
    let image = PathBuf::from(args.get(1).ok_or_else(|| bad("image path"))?);
    let ack = PathBuf::from(args.get(2).ok_or_else(|| bad("ack path"))?);
    let script_len: usize = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("script len"))?;
    let lines: u64 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("lines"))?;
    let seed: u64 = args
        .get(5)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("seed"))?;
    let script = drill_script(script_len, lines, seed);
    let config = AnubisConfig::small_test();
    let backend = FileBackend::open(&image)?;
    match family {
        DrillFamily::BonsaiAgitPlus => {
            let (ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &config, backend);
            serve(ctrl, hint, &ack, &script)
        }
        DrillFamily::SgxAsit => {
            let (ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &config, backend);
            serve(ctrl, hint, &ack, &script)
        }
    }
}

/// What one kill point established.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Ack-count threshold at which the parent pulled the trigger.
    pub kill_after_acks: u64,
    /// Acknowledged writes found in the (possibly torn) ack log.
    pub acked: u64,
    /// Whether the child finished the whole script before the kill
    /// threshold was reached (the kill then exercised a clean image).
    pub completed: bool,
    /// Distinct acknowledged addresses verified post-recovery.
    pub verified_addrs: u64,
    /// Whether the single durable-but-unlogged in-flight write was
    /// observed (kill landed between barrier and ack append).
    pub inflight_observed: bool,
    /// The supervised outcome at the first lane count, rendered.
    pub outcome: String,
    /// The (lane-invariant) post-recovery device fingerprint.
    pub fingerprint: u64,
}

/// Verifies one reopened controller against the ack log.
fn verify_reopened<C: Supervised>(
    mut ctrl: C,
    hint: Option<RecoveryError>,
    lanes: usize,
    expected: &BTreeMap<u64, (u64, Block)>,
    inflight: Option<(u64, u64)>,
) -> Result<(u64, String, bool), DrillError> {
    let sup = recover_reopened(&mut ctrl, hint.as_ref(), lanes)?;
    let fingerprint = device_fingerprint(&ctrl);
    let mut inflight_observed = false;
    for (&addr, &(op_index, want)) in expected {
        let got = ctrl
            .read(DataAddr::new(addr))
            .map_err(|err| DrillError::AckedReadFailed { addr, err })?;
        if got == want {
            continue;
        }
        // The one tolerated divergence: the first scripted write past the
        // highest ack may be durable without a log record.
        if let Some((j, aj)) = inflight {
            if aj == addr && got == op_payload(j, aj) {
                inflight_observed = true;
                continue;
            }
        }
        return Err(DrillError::AckedWriteLost {
            addr,
            op_index,
            lanes,
        });
    }
    Ok((fingerprint, sup.outcome.to_string(), inflight_observed))
}

/// Runs recovery + verification over a copy of the image for one family
/// at one lane count.
fn verify_image(
    family: DrillFamily,
    image: &Path,
    lanes: usize,
    expected: &BTreeMap<u64, (u64, Block)>,
    inflight: Option<(u64, u64)>,
) -> Result<(u64, String, bool), DrillError> {
    let config = AnubisConfig::small_test();
    let backend = FileBackend::open(image)?;
    match family {
        DrillFamily::BonsaiAgitPlus => {
            let (ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &config, backend);
            verify_reopened(ctrl, hint, lanes, expected, inflight)
        }
        DrillFamily::SgxAsit => {
            let (ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &config, backend);
            verify_reopened(ctrl, hint, lanes, expected, inflight)
        }
    }
}

/// The last acknowledged `(op index, payload)` per address.
pub type AckExpectations = BTreeMap<u64, (u64, Block)>;

/// Derives the per-address expectation and the in-flight tolerance from
/// a parsed ack log and the script that produced it.
///
/// Returns `(expected, inflight)`: the last acknowledged `(op index,
/// payload)` per address, and the first scripted-but-unacked write (if
/// any) whose durability the kill left ambiguous.
pub fn ack_expectations(
    acked: &[(u64, u64)],
    script: &[ScriptOp],
) -> (AckExpectations, Option<(u64, u64)>) {
    let mut expected = BTreeMap::new();
    for &(idx, addr) in acked {
        expected.insert(addr, (idx, op_payload(idx, addr)));
    }
    let next = acked.last().map_or(0, |&(idx, _)| idx as usize + 1);
    let inflight = script
        .iter()
        .enumerate()
        .skip(next)
        .find(|(_, op)| op.0)
        .map(|(j, op)| (j as u64, op.1));
    (expected, inflight)
}

/// Verifies every configured lane count over copies of a dead image and
/// demands fingerprint agreement. Shared by the process drill and the
/// in-process restart tests.
///
/// # Errors
///
/// Any verification failure ([`DrillError::AckedWriteLost`],
/// [`DrillError::FingerprintMismatch`], recovery or read errors).
pub fn verify_dead_image(
    family: DrillFamily,
    image: &Path,
    lanes: &[usize],
    acked: &[(u64, u64)],
    script: &[ScriptOp],
) -> Result<(u64, String, bool), DrillError> {
    let (expected, inflight) = ack_expectations(acked, script);
    let mut reference: Option<(u64, String, bool)> = None;
    for &l in lanes {
        let copy = image.with_extension(format!("lane{l}.wal"));
        fs::copy(image, &copy).map_err(io_ctx("copy image to", &copy))?;
        let result = verify_image(family, &copy, l, &expected, inflight);
        let _ = fs::remove_file(&copy);
        let (fp, outcome, observed) = result?;
        match reference {
            None => reference = Some((fp, outcome, observed)),
            Some((want, _, _)) if fp != want => {
                return Err(DrillError::FingerprintMismatch {
                    got: fp,
                    want,
                    lanes: l,
                });
            }
            Some(r) => reference = Some(r),
        }
    }
    Ok(reference.unwrap_or((0, String::from("no lanes configured"), false)))
}

/// Runs one kill point: spawn the child over a fresh image, SIGKILL it
/// once `kill_after_acks` acknowledgements are durable, then verify the
/// dead image at every configured lane count.
///
/// `exe` is the drill binary itself; the child is spawned as
/// `exe --child <family> <image> <ack> <script_len> <lines> <seed>`.
///
/// # Errors
///
/// Any [`DrillError`]; every contract violation is typed, never a panic.
pub fn run_point(
    exe: &Path,
    family: DrillFamily,
    spec: &DrillSpec,
    dir: &Path,
    kill_after_acks: u64,
) -> Result<PointOutcome, DrillError> {
    fs::create_dir_all(dir).map_err(io_ctx("create scratch dir", dir))?;
    let image = dir.join("image.wal");
    let ack = dir.join("acks.bin");
    for stale in [&image, &ack] {
        let _ = fs::remove_file(stale);
    }
    let mut child = Command::new(exe)
        .arg("--child")
        .arg(family.name())
        .arg(&image)
        .arg(&ack)
        .arg(spec.script_len.to_string())
        .arg(spec.lines.to_string())
        .arg(spec.seed.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(io_ctx("spawn child", exe))?;

    let started = Instant::now();
    let threshold = kill_after_acks.saturating_mul(ACK_RECORD_BYTES as u64);
    let mut completed = false;
    loop {
        if let Some(status) = child.try_wait().map_err(io_ctx("poll child", exe))? {
            if !status.success() {
                return Err(DrillError::Child {
                    code: status.code(),
                });
            }
            completed = true;
            break;
        }
        let acked_bytes = fs::metadata(&ack).map(|m| m.len()).unwrap_or(0);
        if acked_bytes >= threshold {
            child.kill().map_err(io_ctx("kill child", exe))?;
            child.wait().map_err(io_ctx("wait for child", exe))?;
            break;
        }
        if started.elapsed() > CHILD_TIMEOUT {
            child.kill().map_err(io_ctx("kill child", exe))?;
            child.wait().map_err(io_ctx("wait for child", exe))?;
            return Err(DrillError::Hung);
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let acked = read_ack_log(&ack).map_err(io_ctx("read ack log", &ack))?;
    let script = drill_script(spec.script_len, spec.lines, spec.seed);
    let (fingerprint, outcome, inflight_observed) =
        verify_dead_image(family, &image, &spec.lanes, &acked, &script)?;
    let verified_addrs = acked
        .iter()
        .map(|&(_, a)| a)
        .collect::<std::collections::BTreeSet<_>>();
    Ok(PointOutcome {
        kill_after_acks,
        acked: acked.len() as u64,
        completed,
        verified_addrs: verified_addrs.len() as u64,
        inflight_observed,
        outcome,
        fingerprint,
    })
}

/// Aggregate results of one family's campaign.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// The drilled family.
    pub family: DrillFamily,
    /// Kill points executed.
    pub points: u64,
    /// Points where the child outran the kill threshold and exited
    /// cleanly (the restart then exercised a quiescent image).
    pub completed_runs: u64,
    /// Total acknowledged writes verified across all points and lanes.
    pub acked_total: u64,
    /// Points where the durable-but-unlogged in-flight write surfaced.
    pub inflight_observed: u64,
    /// Smallest and largest kill thresholds drawn.
    pub kill_range: (u64, u64),
    /// Per-point outcomes (in execution order).
    pub outcomes: Vec<PointOutcome>,
}

/// Runs a family's full campaign: `points` randomized kill thresholds
/// (or, when `sweep` is set, one point per possible ack count — the
/// exhaustive nightly mode).
///
/// # Errors
///
/// Stops at the first [`DrillError`]; a completed campaign means zero
/// acknowledged-write loss at every point and lane count.
pub fn run_campaign(
    exe: &Path,
    family: DrillFamily,
    spec: &DrillSpec,
    dir: &Path,
    points: u64,
    sweep: bool,
) -> Result<FamilyReport, DrillError> {
    let script = drill_script(spec.script_len, spec.lines, spec.seed);
    let max_acks = script.iter().filter(|op| op.0).count() as u64;
    let planned: Vec<u64> = if sweep {
        (1..=max_acks).collect()
    } else {
        let mut rng = (spec.seed ^ fnv1a64(family.name().as_bytes())) | 1;
        (0..points)
            .map(|_| 1 + xorshift(&mut rng) % max_acks)
            .collect()
    };
    let mut report = FamilyReport {
        family,
        points: 0,
        completed_runs: 0,
        acked_total: 0,
        inflight_observed: 0,
        kill_range: (u64::MAX, 0),
        outcomes: Vec::with_capacity(planned.len()),
    };
    for (i, &kill_after) in planned.iter().enumerate() {
        let pdir = dir.join(format!("{}-p{i}", family.name()));
        let out = match run_point(exe, family, spec, &pdir, kill_after) {
            Ok(out) => {
                let _ = fs::remove_dir_all(&pdir);
                out
            }
            // Keep the point's image and ack log for post-mortem.
            Err(source) => {
                return Err(DrillError::Point {
                    index: i as u64,
                    kill_after,
                    dir: pdir,
                    source: Box::new(source),
                })
            }
        };
        report.points += 1;
        report.completed_runs += u64::from(out.completed);
        report.acked_total += out.acked;
        report.inflight_observed += u64::from(out.inflight_observed);
        report.kill_range.0 = report.kill_range.0.min(kill_after);
        report.kill_range.1 = report.kill_range.1.max(kill_after);
        report.outcomes.push(out);
    }
    if report.points == 0 {
        report.kill_range = (0, 0);
    }
    Ok(report)
}
