//! Trace replay over a memory controller with timing accounting.

use crate::timing::{Channel, ChannelStats, TimingModel};
use anubis::telemetry::{percentile_of_sorted, Snapshot, Telemetry};
use anubis::{parallel, CostAccum, DataAddr, MemError, MemoryController, LINES_PER_COUNTER_BLOCK};
use anubis_workloads::{MemOp, OpKind, Trace};

/// Telemetry histogram fed one observation per trace op: the op's
/// end-to-end critical-path latency in nanoseconds.
pub const OP_LATENCY_METRIC: &str = "op_latency_ns";

/// Tail summary of the per-op latency stream from one replay.
///
/// Percentiles use the shared nearest-rank convention
/// ([`percentile_of_sorted`]): the reported value is always an observed
/// latency, never an interpolation. All fields are deterministic
/// (simulated time) and bit-identical across lane counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of ops summarized.
    pub count: u64,
    /// Mean op latency (ns).
    pub mean_ns: f64,
    /// Median op latency (ns).
    pub p50_ns: u64,
    /// 95th-percentile op latency (ns).
    pub p95_ns: u64,
    /// 99th-percentile op latency (ns).
    pub p99_ns: u64,
    /// Worst op latency (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a latency stream (order does not matter).
    pub fn of(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        LatencySummary {
            count: sorted.len() as u64,
            mean_ns: sum as f64 / sorted.len() as f64,
            p50_ns: percentile_of_sorted(&sorted, 0.50),
            p95_ns: percentile_of_sorted(&sorted, 0.95),
            p99_ns: percentile_of_sorted(&sorted, 0.99),
            max_ns: sorted[sorted.len() - 1],
        }
    }
}

/// The outcome of replaying one trace on one controller.
///
/// All clock fields are integer nanoseconds: the discrete-event engine
/// never accumulates floating point, so identical replays — at any lane
/// count — produce bit-identical results.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Scheme name (from the controller).
    pub scheme: &'static str,
    /// Workload name (from the trace).
    pub workload: String,
    /// Simulated wall-clock time for the whole trace (ns).
    pub total_ns: u64,
    /// Time the CPU stalled waiting on reads (ns).
    pub read_stall_ns: u64,
    /// Time the CPU stalled on write-queue back-pressure (ns).
    pub write_stall_ns: u64,
    /// Number of trace operations executed.
    pub ops: usize,
    /// Total NVM block reads issued by the controller.
    pub nvm_reads: u64,
    /// Total NVM block writes issued by the controller.
    pub nvm_writes: u64,
    /// NVM writes per data write (endurance metric).
    pub writes_per_data_write: f64,
    /// Total bank occupancy, summed across channels (ns).
    pub busy_ns: u64,
    /// Total bank-time, summed across channels (ns); each channel
    /// contributes `wall clock × banks`, so idle shards add nothing.
    pub channel_time_ns: u64,
    /// Tail summary of the per-op latency stream. The mean alone hides
    /// the cost of metadata write bursts — schemes with similar means
    /// can differ several-fold at p99 (see DESIGN.md §13).
    pub latency: LatencySummary,
}

impl RunResult {
    /// Execution time normalized to a baseline result (> 1 means slower).
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        self.total_ns as f64 / baseline.total_ns as f64
    }

    /// Fraction of bank-time spent transferring, in `[0, 1]`; exactly
    /// `0.0` for an empty trace (no NaN). Invariant under sharding: a
    /// trace confined to one shard reports the same utilization at
    /// `shards == 1` and `shards == N` (idle shards contribute zero to
    /// both numerator and denominator).
    pub fn utilization(&self) -> f64 {
        if self.channel_time_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.channel_time_ns as f64).clamp(0.0, 1.0)
        }
    }
}

/// Replays `trace` through `controller`, feeding every op's
/// [`anubis::OpCost`] into the discrete-event channel.
///
/// Per-op latencies stream into the [`OP_LATENCY_METRIC`] histogram of
/// the process-global telemetry registry (when enabled) and are
/// summarized in [`RunResult::latency`]; use [`run_trace_latencies`] to
/// get the raw stream.
///
/// # Errors
///
/// Propagates the first [`MemError`] from the controller (which, for a
/// well-formed trace on an untampered memory, indicates a bug — tests
/// rely on that).
pub fn run_trace<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
) -> Result<RunResult, MemError> {
    run_trace_latencies(controller, trace, model).map(|(result, _)| result)
}

/// [`run_trace`] returning the raw per-op latency stream (trace order)
/// alongside the result.
///
/// # Errors
///
/// Same as [`run_trace`].
pub fn run_trace_latencies<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
) -> Result<(RunResult, Vec<u64>), MemError> {
    let mut channel = Channel::new(model);
    let mut latencies = Vec::with_capacity(trace.len());
    replay_ops(
        controller,
        trace.ops(),
        &mut channel,
        &mut latencies,
        &Telemetry::global(),
    )?;
    controller.publish_telemetry();
    channel.drain();
    let result = result_of(
        controller,
        trace,
        &ChannelStats::of(&channel),
        LatencySummary::of(&latencies),
    );
    Ok((result, latencies))
}

/// Distills a finished channel + controller into a [`RunResult`].
fn result_of<C: MemoryController>(
    controller: &C,
    trace: &Trace,
    stats: &ChannelStats,
    latency: LatencySummary,
) -> RunResult {
    let totals = *controller.total_cost();
    RunResult {
        scheme: controller.scheme_name(),
        workload: trace.name().to_string(),
        total_ns: stats.total_ns,
        read_stall_ns: stats.read_stall_ns,
        write_stall_ns: stats.write_stall_ns,
        ops: trace.len(),
        nvm_reads: totals.nvm_reads,
        nvm_writes: totals.nvm_writes,
        writes_per_data_write: totals.writes_per_data_write().unwrap_or(0.0),
        busy_ns: stats.busy_ns,
        channel_time_ns: stats.channel_time_ns,
        latency,
    }
}

/// [`run_trace`] with periodic telemetry snapshots: after every
/// `epoch_ops` trace operations the controller publishes its counters
/// (device stats, cache rates, WPQ occupancy) and a [`Snapshot`] is taken
/// from `telemetry`. Returns the run result plus the epoch snapshots in
/// order (one final snapshot covers the tail even when the trace length
/// is not a multiple of `epoch_ops`).
///
/// Epoch snapshots include the [`OP_LATENCY_METRIC`] histogram, so the
/// JSONL export carries p50/p95/p99 per epoch. Mid-run channel gauges
/// (`sim_now_ns`, `sim_utilization`) are computed on a drained *clone*
/// of the channel — the live backlog is untouched.
///
/// When telemetry is disabled the snapshot list comes back empty and the
/// replay costs the same as [`run_trace`].
///
/// # Errors
///
/// Same as [`run_trace`].
pub fn run_trace_with_epochs<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
    epoch_ops: usize,
    telemetry: &Telemetry,
) -> Result<(RunResult, Vec<Snapshot>), MemError> {
    let mut channel = Channel::new(model);
    let mut latencies = Vec::with_capacity(trace.len());
    let mut snapshots = Vec::new();
    let epoch = epoch_ops.max(1);
    let mut done: u64 = 0;
    for chunk in trace.ops().chunks(epoch) {
        replay_ops(controller, chunk, &mut channel, &mut latencies, telemetry)?;
        done += chunk.len() as u64;
        if telemetry.enabled() {
            controller.publish_telemetry();
            let stats = channel.drained_stats();
            telemetry.counter_set("sim_ops_total", controller.scheme_name(), done);
            telemetry.gauge_set("sim_now_ns", controller.scheme_name(), channel.now as f64);
            telemetry.gauge_set(
                "sim_utilization",
                controller.scheme_name(),
                stats.utilization(),
            );
            if let Some(snap) = telemetry.take_snapshot() {
                snapshots.push(snap);
            }
        }
    }
    channel.drain();
    Ok((
        result_of(
            controller,
            trace,
            &ChannelStats::of(&channel),
            LatencySummary::of(&latencies),
        ),
        snapshots,
    ))
}

/// The shared op loop: drives `ops` through `controller`, feeding every
/// cost into `channel`, recording each op's end-to-end latency into
/// `latencies` and the [`OP_LATENCY_METRIC`] histogram.
fn replay_ops<C: MemoryController>(
    controller: &mut C,
    ops: &[MemOp],
    channel: &mut Channel,
    latencies: &mut Vec<u64>,
    telemetry: &Telemetry,
) -> Result<(), MemError> {
    let record = telemetry.enabled();
    for op in ops {
        channel.advance(u64::from(op.gap_ns));
        match op.kind {
            OpKind::Read => {
                controller.read(DataAddr::new(op.addr.index()))?;
            }
            OpKind::Write => {
                // Deterministic, address-derived payload: contents don't
                // affect timing, but they make post-crash verification in
                // tests meaningful.
                let block = payload(op.addr.index());
                controller.write(DataAddr::new(op.addr.index()), block)?;
            }
        }
        let latency = channel.execute(controller.last_cost());
        latencies.push(latency);
        if record {
            telemetry.observe(OP_LATENCY_METRIC, controller.scheme_name(), latency as f64);
        }
    }
    Ok(())
}

/// The outcome of a sharded replay: the merged per-channel statistics
/// plus per-shard detail.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedRunResult {
    /// Merged statistics across shards: wall clock is the slowest shard
    /// (shards model independent channels running concurrently), stall
    /// time and NVM traffic are summed, and the latency summary covers
    /// every op across all shards.
    pub merged: RunResult,
    /// Number of address shards (= controllers = channels).
    pub shards: usize,
    /// Lane count the shards were replayed across. Does not affect any
    /// reported number — only how much host parallelism the replay used.
    pub lanes: usize,
    /// Per-shard wall clock (ns), in shard order.
    pub shard_ns: Vec<u64>,
    /// Per-op latency streams concatenated in shard order (within a
    /// shard: that shard's sub-trace order). Deterministic and
    /// lane-count invariant.
    pub latencies: Vec<u64>,
}

/// Maps a data-block index to its address shard: counter-block-granular
/// round-robin, so all 64 lines sharing one counter block (and its tree
/// path locality) land in the same shard.
pub fn shard_of(block_index: u64, shards: usize) -> usize {
    ((block_index / LINES_PER_COUNTER_BLOCK) % shards.max(1) as u64) as usize
}

/// Replays `trace` in sharded mode: the address space is split across
/// `shards` independent controllers (one memory channel each, see
/// [`shard_of`]), and the shards replay concurrently across `lanes`
/// scoped threads ([`anubis::parallel`]).
///
/// Each shard sees its sub-trace in original program order, so per-shard
/// results are deterministic; the merge runs in shard order over integer
/// nanoseconds, so the outcome is bit-identical for any `lanes` value
/// (including the inline `lanes == 1` path). With `shards == 1` this is
/// exactly [`run_trace`].
///
/// # Errors
///
/// Propagates the first [`MemError`] in shard order.
pub fn run_trace_sharded<C, F>(
    make_controller: F,
    trace: &Trace,
    model: &TimingModel,
    shards: usize,
    lanes: usize,
) -> Result<ShardedRunResult, MemError>
where
    C: MemoryController,
    F: Fn(usize) -> C + Sync,
{
    run_trace_sharded_with_telemetry(
        make_controller,
        trace,
        model,
        shards,
        lanes,
        &Telemetry::global(),
    )
}

/// [`run_trace_sharded`] recording per-op latencies into an explicit
/// telemetry handle instead of the process-global one — tests use this
/// with private registries to prove histogram snapshots are lane-count
/// invariant.
///
/// # Errors
///
/// Same as [`run_trace_sharded`].
pub fn run_trace_sharded_with_telemetry<C, F>(
    make_controller: F,
    trace: &Trace,
    model: &TimingModel,
    shards: usize,
    lanes: usize,
    telemetry: &Telemetry,
) -> Result<ShardedRunResult, MemError>
where
    C: MemoryController,
    F: Fn(usize) -> C + Sync,
{
    let shards = shards.max(1);
    let mut sub_traces: Vec<Vec<MemOp>> = vec![Vec::new(); shards];
    for op in trace.ops() {
        sub_traces[shard_of(op.addr.index(), shards)].push(*op);
    }

    struct ShardOutcome {
        stats: ChannelStats,
        totals: CostAccum,
        scheme: &'static str,
        latencies: Vec<u64>,
    }
    let outcomes: Vec<Result<ShardOutcome, MemError>> =
        parallel::map_range(lanes, shards as u64, |shard| {
            let mut controller = make_controller(shard as usize);
            let mut channel = Channel::new(model);
            let mut latencies = Vec::with_capacity(sub_traces[shard as usize].len());
            replay_ops(
                &mut controller,
                &sub_traces[shard as usize],
                &mut channel,
                &mut latencies,
                telemetry,
            )?;
            controller.publish_telemetry();
            channel.drain();
            Ok(ShardOutcome {
                stats: ChannelStats::of(&channel),
                totals: *controller.total_cost(),
                scheme: controller.scheme_name(),
                latencies,
            })
        });

    let mut stats = ChannelStats::default();
    let mut totals = CostAccum::default();
    let mut scheme = "";
    let mut shard_ns = Vec::with_capacity(shards);
    let mut latencies = Vec::with_capacity(trace.len());
    for outcome in outcomes {
        let o = outcome?;
        scheme = o.scheme;
        shard_ns.push(o.stats.total_ns);
        stats.merge(&o.stats);
        totals.reads += o.totals.reads;
        totals.writes += o.totals.writes;
        totals.nvm_reads += o.totals.nvm_reads;
        totals.nvm_writes += o.totals.nvm_writes;
        totals.hash_ops += o.totals.hash_ops;
        totals.bg_hash_ops += o.totals.bg_hash_ops;
        latencies.extend_from_slice(&o.latencies);
    }
    Ok(ShardedRunResult {
        merged: RunResult {
            scheme,
            workload: trace.name().to_string(),
            total_ns: stats.total_ns,
            read_stall_ns: stats.read_stall_ns,
            write_stall_ns: stats.write_stall_ns,
            ops: trace.len(),
            nvm_reads: totals.nvm_reads,
            nvm_writes: totals.nvm_writes,
            writes_per_data_write: totals.writes_per_data_write().unwrap_or(0.0),
            busy_ns: stats.busy_ns,
            channel_time_ns: stats.channel_time_ns,
            latency: LatencySummary::of(&latencies),
        },
        shards,
        lanes,
        shard_ns,
        latencies,
    })
}

/// Deterministic per-address block contents for trace writes.
pub fn payload(index: u64) -> anubis_nvm::Block {
    anubis_nvm::Block::from_words([
        index,
        index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        !index,
        index.rotate_left(21),
        index ^ 0xABCD_EF01_2345_6789,
        index.wrapping_add(7),
        index << 7,
        index >> 3,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
    use anubis_workloads::{spec2006, TraceGenerator};

    fn small_trace(n: usize) -> Trace {
        let cfg = AnubisConfig::small_test();
        TraceGenerator::new(spec2006::omnetpp(), cfg.capacity_bytes).generate(n, 3)
    }

    #[test]
    fn replay_produces_time_and_counts() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert_eq!(r.ops, 500);
        assert!(r.total_ns > 0);
        assert!(r.nvm_reads > 0);
        assert_eq!(r.scheme, "osiris");
        assert_eq!(r.workload, "omnetpp");
        assert_eq!(r.latency.count, 500);
        assert!(r.latency.p50_ns <= r.latency.p95_ns);
        assert!(r.latency.p95_ns <= r.latency.p99_ns);
        assert!(r.latency.p99_ns <= r.latency.max_ns);
    }

    #[test]
    fn latency_stream_matches_summary() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let (r, lats) =
            run_trace_latencies(&mut c, &small_trace(400), &TimingModel::paper()).unwrap();
        assert_eq!(lats.len(), 400);
        assert_eq!(r.latency, LatencySummary::of(&lats));
        assert_eq!(r.latency.max_ns, lats.iter().copied().max().unwrap());
    }

    #[test]
    fn strict_is_slower_than_write_back() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(2_000);
        let model = TimingModel::paper();
        let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &cfg);
        let base = run_trace(&mut wb, &trace, &model).unwrap();
        let mut strict = BonsaiController::new(BonsaiScheme::StrictPersist, &cfg);
        let s = run_trace(&mut strict, &trace, &model).unwrap();
        assert!(
            s.normalized_to(&base) > 1.0,
            "strict {} vs wb {}",
            s.total_ns,
            base.total_ns
        );
        // The latency-distribution claim behind this PR: strict
        // persistence hurts the tail at least as much as the mean.
        assert!(
            s.latency.p99_ns > base.latency.p99_ns,
            "strict p99 {} vs wb p99 {}",
            s.latency.p99_ns,
            base.latency.p99_ns
        );
    }

    #[test]
    fn sgx_controllers_replay_too() {
        let cfg = AnubisConfig::small_test();
        let mut c = SgxController::new(SgxScheme::Asit, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert!(r.total_ns > 0);
        assert!(r.writes_per_data_write >= 1.0);
    }

    #[test]
    fn empty_trace_reports_zero_not_nan() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let trace = Trace::new("empty", Vec::new());
        let r = run_trace(&mut c, &trace, &TimingModel::paper()).unwrap();
        assert_eq!(r.total_ns, 0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.latency, LatencySummary::default());
        assert!(r.utilization().is_finite());
        let sharded = run_trace_sharded(
            |_| BonsaiController::new(BonsaiScheme::Osiris, &cfg),
            &trace,
            &TimingModel::paper(),
            4,
            2,
        )
        .unwrap();
        assert_eq!(sharded.merged.utilization(), 0.0);
        assert!(sharded.merged.utilization().is_finite());
    }

    #[test]
    fn sharded_with_one_shard_matches_run_trace() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(800);
        let model = TimingModel::paper();
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let (serial, serial_lats) = run_trace_latencies(&mut c, &trace, &model).unwrap();
        let sharded = run_trace_sharded(
            |_| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
            1,
            1,
        )
        .unwrap();
        assert_eq!(sharded.merged, serial);
        assert_eq!(sharded.shard_ns, vec![serial.total_ns]);
        assert_eq!(sharded.latencies, serial_lats);
    }

    #[test]
    fn sharded_replay_is_lane_count_invariant() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(1_000);
        let model = TimingModel::paper();
        let run = |lanes: usize| {
            run_trace_sharded(
                |_| BonsaiController::new(BonsaiScheme::Osiris, &cfg),
                &trace,
                &model,
                4,
                lanes,
            )
            .unwrap()
        };
        let inline = run(1);
        for lanes in [2, 4, 8] {
            let threaded = run(lanes);
            assert_eq!(threaded.merged, inline.merged, "lanes={lanes}");
            assert_eq!(threaded.shard_ns, inline.shard_ns, "lanes={lanes}");
            assert_eq!(threaded.latencies, inline.latencies, "lanes={lanes}");
        }
    }

    #[test]
    fn one_vs_eight_shard_totals_of_a_confined_trace_are_bit_identical() {
        // The f64 regression this PR fixes: with floating-point clocks,
        // 8-shard merges accumulated in a different order than 1-shard
        // replays and drifted by ULPs. On the integer engine a trace
        // confined to one shard must produce *exactly* equal totals at
        // any shard count — assert_eq on u64, no epsilon.
        let cfg = AnubisConfig::small_test();
        let ops: Vec<MemOp> = (0..700)
            .map(|i| {
                let addr = anubis_nvm::BlockAddr::new(i % LINES_PER_COUNTER_BLOCK);
                if i % 3 == 0 {
                    MemOp::read(addr, 15)
                } else {
                    MemOp::write(addr, 15)
                }
            })
            .collect();
        let trace = Trace::new("confined", ops);
        let model = TimingModel::paper();
        let run = |shards: usize| {
            run_trace_sharded(
                |_| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
                &trace,
                &model,
                shards,
                1,
            )
            .unwrap()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.merged.total_ns, eight.merged.total_ns);
        assert_eq!(one.merged.read_stall_ns, eight.merged.read_stall_ns);
        assert_eq!(one.merged.write_stall_ns, eight.merged.write_stall_ns);
        assert_eq!(one.merged.busy_ns, eight.merged.busy_ns);
        assert_eq!(one.merged.channel_time_ns, eight.merged.channel_time_ns);
        assert_eq!(one.merged.latency, eight.merged.latency);
        assert_eq!(one.latencies, eight.latencies);
    }

    #[test]
    fn sharding_splits_work_across_channels() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(2_000);
        let model = TimingModel::paper();
        let sharded = run_trace_sharded(
            |_| SgxController::new(SgxScheme::Asit, &cfg),
            &trace,
            &model,
            4,
            2,
        )
        .unwrap();
        assert_eq!(sharded.shards, 4);
        assert_eq!(sharded.merged.ops, trace.len());
        assert_eq!(sharded.shard_ns.len(), 4);
        assert_eq!(sharded.latencies.len(), trace.len());
        // Every shard saw work, and the merged clock is the slowest shard.
        assert!(sharded.shard_ns.iter().all(|&ns| ns > 0));
        let slowest = *sharded.shard_ns.iter().max().unwrap();
        assert_eq!(sharded.merged.total_ns, slowest);
    }

    #[test]
    fn epoch_snapshots_are_monotone_and_cover_the_tail() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let (reg, tel) = anubis::telemetry::Telemetry::private();
        c.set_telemetry(tel.clone());
        let trace = small_trace(250);
        let (result, snaps) =
            run_trace_with_epochs(&mut c, &trace, &TimingModel::paper(), 100, &tel).unwrap();
        assert_eq!(result.ops, 250);
        // 100 + 100 + 50 → three epochs.
        assert_eq!(snaps.len(), 3);
        for pair in snaps.windows(2) {
            assert!(pair[1].seq > pair[0].seq);
            assert!(pair[1].at_ns >= pair[0].at_ns);
            for (name, labels) in &pair[0].counters {
                for (label, value) in labels {
                    let later = pair[1].counter(name, label);
                    assert!(
                        later >= *value,
                        "counter {name}{{{label}}} regressed: {later} < {value}"
                    );
                }
            }
        }
        let last = snaps.last().unwrap();
        assert_eq!(last.counter("sim_ops_total", "agit-plus"), 250);
        assert!(last.counter("nvm_writes_total", "agit-plus") > 0);
        // The op-latency histogram reaches the snapshot, covers every op,
        // and its bucket-resolution p99 brackets the exact stream p99.
        let h = &last.histograms[OP_LATENCY_METRIC]["agit-plus"];
        assert_eq!(h.count, 250);
        assert!(h.percentile(0.99) >= result.latency.p99_ns);
        drop(reg);
    }

    #[test]
    fn epoch_variant_matches_run_trace_when_disabled() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(400);
        let model = TimingModel::paper();
        let mut a = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        a.set_telemetry(anubis::telemetry::Telemetry::off());
        let plain = run_trace(&mut a, &trace, &model).unwrap();
        let mut b = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let off = anubis::telemetry::Telemetry::off();
        b.set_telemetry(off.clone());
        let (epoch, snaps) = run_trace_with_epochs(&mut b, &trace, &model, 64, &off).unwrap();
        assert_eq!(plain, epoch);
        assert!(snaps.is_empty());
    }

    #[test]
    fn utilization_is_invariant_under_sharding_for_a_one_shard_trace() {
        let cfg = AnubisConfig::small_test();
        // Confine every op to the first counter-block group so the trace
        // lands entirely in shard 0 at any shard count.
        let ops: Vec<MemOp> = (0..600)
            .map(|i| {
                let addr = anubis_nvm::BlockAddr::new(i % LINES_PER_COUNTER_BLOCK);
                if i % 3 == 0 {
                    MemOp::read(addr, 10)
                } else {
                    MemOp::write(addr, 10)
                }
            })
            .collect();
        let trace = Trace::new("one-shard", ops);
        let model = TimingModel::paper();
        let run = |shards: usize| {
            run_trace_sharded(
                |_| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
                &trace,
                &model,
                shards,
                1,
            )
            .unwrap()
        };
        let single = run(1);
        let many = run(4);
        assert!(single.merged.utilization() > 0.0);
        assert_eq!(
            single.merged.utilization(),
            many.merged.utilization(),
            "idle shards must not change utilization"
        );
        assert_eq!(single.merged.busy_ns, many.merged.busy_ns);
        assert_eq!(single.merged.channel_time_ns, many.merged.channel_time_ns);
    }

    #[test]
    fn utilization_stays_in_unit_interval_with_busy_shards() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(1_500);
        let model = TimingModel::paper();
        let sharded = run_trace_sharded(
            |_| BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
            &trace,
            &model,
            4,
            2,
        )
        .unwrap();
        let u = sharded.merged.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
        // The old bug: dividing summed per-channel work by the max wall
        // clock. With 4 busy shards that quotient can exceed 1.0; the
        // summed channel-time denominator keeps it a true fraction.
        assert!(sharded.merged.channel_time_ns >= sharded.merged.total_ns);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(300);
        let model = TimingModel::paper();
        let r1 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        let r2 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        assert_eq!(r1, r2);
    }
}
