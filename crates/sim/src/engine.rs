//! Trace replay over a memory controller with timing accounting.

use crate::timing::{Channel, TimingModel};
use anubis::{DataAddr, MemError, MemoryController};
use anubis_workloads::{OpKind, Trace};

/// The outcome of replaying one trace on one controller.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Scheme name (from the controller).
    pub scheme: &'static str,
    /// Workload name (from the trace).
    pub workload: String,
    /// Simulated wall-clock time for the whole trace (ns).
    pub total_ns: f64,
    /// Time the CPU stalled waiting on reads (ns).
    pub read_stall_ns: f64,
    /// Time the CPU stalled on write-queue back-pressure (ns).
    pub write_stall_ns: f64,
    /// Number of trace operations executed.
    pub ops: usize,
    /// Total NVM block reads issued by the controller.
    pub nvm_reads: u64,
    /// Total NVM block writes issued by the controller.
    pub nvm_writes: u64,
    /// NVM writes per data write (endurance metric).
    pub writes_per_data_write: f64,
}

impl RunResult {
    /// Execution time normalized to a baseline result (> 1 means slower).
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        self.total_ns / baseline.total_ns
    }
}

/// Replays `trace` through `controller`, feeding every op's
/// [`anubis::OpCost`] into the timing model.
///
/// # Errors
///
/// Propagates the first [`MemError`] from the controller (which, for a
/// well-formed trace on an untampered memory, indicates a bug — tests
/// rely on that).
pub fn run_trace<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
) -> Result<RunResult, MemError> {
    let mut channel = Channel::default();
    for op in trace.iter() {
        channel.advance(op.gap_ns as f64);
        match op.kind {
            OpKind::Read => {
                controller.read(DataAddr::new(op.addr.index()))?;
            }
            OpKind::Write => {
                // Deterministic, address-derived payload: contents don't
                // affect timing, but they make post-crash verification in
                // tests meaningful.
                let block = payload(op.addr.index());
                controller.write(DataAddr::new(op.addr.index()), block)?;
            }
        }
        channel.execute(controller.last_cost(), model);
    }
    let totals = *controller.total_cost();
    Ok(RunResult {
        scheme: controller.scheme_name(),
        workload: trace.name().to_string(),
        total_ns: channel.finish(),
        read_stall_ns: channel.read_stall_ns,
        write_stall_ns: channel.write_stall_ns,
        ops: trace.len(),
        nvm_reads: totals.nvm_reads,
        nvm_writes: totals.nvm_writes,
        writes_per_data_write: totals.writes_per_data_write().unwrap_or(0.0),
    })
}

/// Deterministic per-address block contents for trace writes.
pub fn payload(index: u64) -> anubis_nvm::Block {
    anubis_nvm::Block::from_words([
        index,
        index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        !index,
        index.rotate_left(21),
        index ^ 0xABCD_EF01_2345_6789,
        index.wrapping_add(7),
        index << 7,
        index >> 3,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
    use anubis_workloads::{spec2006, TraceGenerator};

    fn small_trace(n: usize) -> Trace {
        let cfg = AnubisConfig::small_test();
        TraceGenerator::new(spec2006::omnetpp(), cfg.capacity_bytes).generate(n, 3)
    }

    #[test]
    fn replay_produces_time_and_counts() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert_eq!(r.ops, 500);
        assert!(r.total_ns > 0.0);
        assert!(r.nvm_reads > 0);
        assert_eq!(r.scheme, "osiris");
        assert_eq!(r.workload, "omnetpp");
    }

    #[test]
    fn strict_is_slower_than_write_back() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(2_000);
        let model = TimingModel::paper();
        let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &cfg);
        let base = run_trace(&mut wb, &trace, &model).unwrap();
        let mut strict = BonsaiController::new(BonsaiScheme::StrictPersist, &cfg);
        let s = run_trace(&mut strict, &trace, &model).unwrap();
        assert!(
            s.normalized_to(&base) > 1.0,
            "strict {} vs wb {}",
            s.total_ns,
            base.total_ns
        );
    }

    #[test]
    fn sgx_controllers_replay_too() {
        let cfg = AnubisConfig::small_test();
        let mut c = SgxController::new(SgxScheme::Asit, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert!(r.total_ns > 0.0);
        assert!(r.writes_per_data_write >= 1.0);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(300);
        let model = TimingModel::paper();
        let r1 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        let r2 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        assert_eq!(r1, r2);
    }
}
