//! Trace replay over a memory controller with timing accounting.

use crate::timing::{Channel, ChannelStats, TimingModel};
use anubis::telemetry::{Snapshot, Telemetry};
use anubis::{parallel, CostAccum, DataAddr, MemError, MemoryController, LINES_PER_COUNTER_BLOCK};
use anubis_workloads::{MemOp, OpKind, Trace};

/// The outcome of replaying one trace on one controller.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Scheme name (from the controller).
    pub scheme: &'static str,
    /// Workload name (from the trace).
    pub workload: String,
    /// Simulated wall-clock time for the whole trace (ns).
    pub total_ns: f64,
    /// Time the CPU stalled waiting on reads (ns).
    pub read_stall_ns: f64,
    /// Time the CPU stalled on write-queue back-pressure (ns).
    pub write_stall_ns: f64,
    /// Number of trace operations executed.
    pub ops: usize,
    /// Total NVM block reads issued by the controller.
    pub nvm_reads: u64,
    /// Total NVM block writes issued by the controller.
    pub nvm_writes: u64,
    /// NVM writes per data write (endurance metric).
    pub writes_per_data_write: f64,
    /// Channel transfer occupancy, summed across channels (ns).
    pub busy_ns: f64,
    /// Total channel-time, summed across channels (ns); each channel
    /// contributes its own wall clock, so idle shards add nothing.
    pub channel_time_ns: f64,
}

impl RunResult {
    /// Execution time normalized to a baseline result (> 1 means slower).
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        self.total_ns / baseline.total_ns
    }

    /// Fraction of channel-time spent transferring, in `[0, 1]`.
    /// Invariant under sharding: a trace confined to one shard reports
    /// the same utilization at `shards == 1` and `shards == N` (idle
    /// shards contribute zero to both numerator and denominator).
    pub fn utilization(&self) -> f64 {
        if self.channel_time_ns <= 0.0 {
            0.0
        } else {
            (self.busy_ns / self.channel_time_ns).clamp(0.0, 1.0)
        }
    }
}

/// Replays `trace` through `controller`, feeding every op's
/// [`anubis::OpCost`] into the timing model.
///
/// # Errors
///
/// Propagates the first [`MemError`] from the controller (which, for a
/// well-formed trace on an untampered memory, indicates a bug — tests
/// rely on that).
pub fn run_trace<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
) -> Result<RunResult, MemError> {
    let mut channel = Channel::default();
    replay_ops(controller, trace.ops(), &mut channel, model)?;
    controller.publish_telemetry();
    Ok(result_of(controller, trace, &ChannelStats::of(&channel)))
}

/// Distills a finished channel + controller into a [`RunResult`].
fn result_of<C: MemoryController>(
    controller: &C,
    trace: &Trace,
    stats: &ChannelStats,
) -> RunResult {
    let totals = *controller.total_cost();
    RunResult {
        scheme: controller.scheme_name(),
        workload: trace.name().to_string(),
        total_ns: stats.total_ns,
        read_stall_ns: stats.read_stall_ns,
        write_stall_ns: stats.write_stall_ns,
        ops: trace.len(),
        nvm_reads: totals.nvm_reads,
        nvm_writes: totals.nvm_writes,
        writes_per_data_write: totals.writes_per_data_write().unwrap_or(0.0),
        busy_ns: stats.busy_ns,
        channel_time_ns: stats.channel_time_ns,
    }
}

/// [`run_trace`] with periodic telemetry snapshots: after every
/// `epoch_ops` trace operations the controller publishes its counters
/// (device stats, cache rates, WPQ occupancy) and a [`Snapshot`] is taken
/// from `telemetry`. Returns the run result plus the epoch snapshots in
/// order (one final snapshot covers the tail even when the trace length
/// is not a multiple of `epoch_ops`).
///
/// When telemetry is disabled the snapshot list comes back empty and the
/// replay costs the same as [`run_trace`].
///
/// # Errors
///
/// Same as [`run_trace`].
pub fn run_trace_with_epochs<C: MemoryController>(
    controller: &mut C,
    trace: &Trace,
    model: &TimingModel,
    epoch_ops: usize,
    telemetry: &Telemetry,
) -> Result<(RunResult, Vec<Snapshot>), MemError> {
    let mut channel = Channel::default();
    let mut snapshots = Vec::new();
    let epoch = epoch_ops.max(1);
    let mut done: u64 = 0;
    for chunk in trace.ops().chunks(epoch) {
        replay_ops(controller, chunk, &mut channel, model)?;
        done += chunk.len() as u64;
        if telemetry.enabled() {
            controller.publish_telemetry();
            telemetry.counter_set("sim_ops_total", controller.scheme_name(), done);
            telemetry.gauge_set("sim_now_ns", controller.scheme_name(), channel.now);
            telemetry.gauge_set(
                "sim_utilization",
                controller.scheme_name(),
                ChannelStats::of(&channel).utilization(),
            );
            if let Some(snap) = telemetry.take_snapshot() {
                snapshots.push(snap);
            }
        }
    }
    Ok((
        result_of(controller, trace, &ChannelStats::of(&channel)),
        snapshots,
    ))
}

/// The shared op loop: drives `ops` through `controller`, feeding every
/// cost into `channel`.
fn replay_ops<C: MemoryController>(
    controller: &mut C,
    ops: &[MemOp],
    channel: &mut Channel,
    model: &TimingModel,
) -> Result<(), MemError> {
    for op in ops {
        channel.advance(op.gap_ns as f64);
        match op.kind {
            OpKind::Read => {
                controller.read(DataAddr::new(op.addr.index()))?;
            }
            OpKind::Write => {
                // Deterministic, address-derived payload: contents don't
                // affect timing, but they make post-crash verification in
                // tests meaningful.
                let block = payload(op.addr.index());
                controller.write(DataAddr::new(op.addr.index()), block)?;
            }
        }
        channel.execute(controller.last_cost(), model);
    }
    Ok(())
}

/// The outcome of a sharded replay: the merged per-channel statistics
/// plus per-shard detail.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedRunResult {
    /// Merged statistics across shards: wall clock is the slowest shard
    /// (shards model independent channels running concurrently), stall
    /// time and NVM traffic are summed.
    pub merged: RunResult,
    /// Number of address shards (= controllers = channels).
    pub shards: usize,
    /// Lane count the shards were replayed across. Does not affect any
    /// reported number — only how much host parallelism the replay used.
    pub lanes: usize,
    /// Per-shard wall clock (ns), in shard order.
    pub shard_ns: Vec<f64>,
}

/// Maps a data-block index to its address shard: counter-block-granular
/// round-robin, so all 64 lines sharing one counter block (and its tree
/// path locality) land in the same shard.
pub fn shard_of(block_index: u64, shards: usize) -> usize {
    ((block_index / LINES_PER_COUNTER_BLOCK) % shards.max(1) as u64) as usize
}

/// Replays `trace` in sharded mode: the address space is split across
/// `shards` independent controllers (one memory channel each, see
/// [`shard_of`]), and the shards replay concurrently across `lanes`
/// scoped threads ([`anubis::parallel`]).
///
/// Each shard sees its sub-trace in original program order, so per-shard
/// results are deterministic; the merge runs in shard order, so the
/// outcome is bit-identical for any `lanes` value (including the inline
/// `lanes == 1` path). With `shards == 1` this is exactly [`run_trace`].
///
/// # Errors
///
/// Propagates the first [`MemError`] in shard order.
pub fn run_trace_sharded<C, F>(
    make_controller: F,
    trace: &Trace,
    model: &TimingModel,
    shards: usize,
    lanes: usize,
) -> Result<ShardedRunResult, MemError>
where
    C: MemoryController,
    F: Fn(usize) -> C + Sync,
{
    let shards = shards.max(1);
    let mut sub_traces: Vec<Vec<MemOp>> = vec![Vec::new(); shards];
    for op in trace.ops() {
        sub_traces[shard_of(op.addr.index(), shards)].push(*op);
    }

    struct ShardOutcome {
        stats: ChannelStats,
        totals: CostAccum,
        scheme: &'static str,
    }
    let outcomes: Vec<Result<ShardOutcome, MemError>> =
        parallel::map_range(lanes, shards as u64, |shard| {
            let mut controller = make_controller(shard as usize);
            let mut channel = Channel::default();
            replay_ops(
                &mut controller,
                &sub_traces[shard as usize],
                &mut channel,
                model,
            )?;
            controller.publish_telemetry();
            Ok(ShardOutcome {
                stats: ChannelStats::of(&channel),
                totals: *controller.total_cost(),
                scheme: controller.scheme_name(),
            })
        });

    let mut stats = ChannelStats::default();
    let mut totals = CostAccum::default();
    let mut scheme = "";
    let mut shard_ns = Vec::with_capacity(shards);
    for outcome in outcomes {
        let o = outcome?;
        scheme = o.scheme;
        shard_ns.push(o.stats.total_ns);
        stats.merge(&o.stats);
        totals.reads += o.totals.reads;
        totals.writes += o.totals.writes;
        totals.nvm_reads += o.totals.nvm_reads;
        totals.nvm_writes += o.totals.nvm_writes;
        totals.hash_ops += o.totals.hash_ops;
        totals.bg_hash_ops += o.totals.bg_hash_ops;
    }
    Ok(ShardedRunResult {
        merged: RunResult {
            scheme,
            workload: trace.name().to_string(),
            total_ns: stats.total_ns,
            read_stall_ns: stats.read_stall_ns,
            write_stall_ns: stats.write_stall_ns,
            ops: trace.len(),
            nvm_reads: totals.nvm_reads,
            nvm_writes: totals.nvm_writes,
            writes_per_data_write: totals.writes_per_data_write().unwrap_or(0.0),
            busy_ns: stats.busy_ns,
            channel_time_ns: stats.channel_time_ns,
        },
        shards,
        lanes,
        shard_ns,
    })
}

/// Deterministic per-address block contents for trace writes.
pub fn payload(index: u64) -> anubis_nvm::Block {
    anubis_nvm::Block::from_words([
        index,
        index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        !index,
        index.rotate_left(21),
        index ^ 0xABCD_EF01_2345_6789,
        index.wrapping_add(7),
        index << 7,
        index >> 3,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
    use anubis_workloads::{spec2006, TraceGenerator};

    fn small_trace(n: usize) -> Trace {
        let cfg = AnubisConfig::small_test();
        TraceGenerator::new(spec2006::omnetpp(), cfg.capacity_bytes).generate(n, 3)
    }

    #[test]
    fn replay_produces_time_and_counts() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert_eq!(r.ops, 500);
        assert!(r.total_ns > 0.0);
        assert!(r.nvm_reads > 0);
        assert_eq!(r.scheme, "osiris");
        assert_eq!(r.workload, "omnetpp");
    }

    #[test]
    fn strict_is_slower_than_write_back() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(2_000);
        let model = TimingModel::paper();
        let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &cfg);
        let base = run_trace(&mut wb, &trace, &model).unwrap();
        let mut strict = BonsaiController::new(BonsaiScheme::StrictPersist, &cfg);
        let s = run_trace(&mut strict, &trace, &model).unwrap();
        assert!(
            s.normalized_to(&base) > 1.0,
            "strict {} vs wb {}",
            s.total_ns,
            base.total_ns
        );
    }

    #[test]
    fn sgx_controllers_replay_too() {
        let cfg = AnubisConfig::small_test();
        let mut c = SgxController::new(SgxScheme::Asit, &cfg);
        let r = run_trace(&mut c, &small_trace(500), &TimingModel::paper()).unwrap();
        assert!(r.total_ns > 0.0);
        assert!(r.writes_per_data_write >= 1.0);
    }

    #[test]
    fn sharded_with_one_shard_matches_run_trace() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(800);
        let model = TimingModel::paper();
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let serial = run_trace(&mut c, &trace, &model).unwrap();
        let sharded = run_trace_sharded(
            |_| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
            1,
            1,
        )
        .unwrap();
        assert_eq!(sharded.merged, serial);
        assert_eq!(sharded.shard_ns, vec![serial.total_ns]);
    }

    #[test]
    fn sharded_replay_is_lane_count_invariant() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(1_000);
        let model = TimingModel::paper();
        let run = |lanes: usize| {
            run_trace_sharded(
                |_| BonsaiController::new(BonsaiScheme::Osiris, &cfg),
                &trace,
                &model,
                4,
                lanes,
            )
            .unwrap()
        };
        let inline = run(1);
        for lanes in [2, 4, 8] {
            let threaded = run(lanes);
            assert_eq!(threaded.merged, inline.merged, "lanes={lanes}");
            assert_eq!(threaded.shard_ns, inline.shard_ns, "lanes={lanes}");
        }
    }

    #[test]
    fn sharding_splits_work_across_channels() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(2_000);
        let model = TimingModel::paper();
        let sharded = run_trace_sharded(
            |_| SgxController::new(SgxScheme::Asit, &cfg),
            &trace,
            &model,
            4,
            2,
        )
        .unwrap();
        assert_eq!(sharded.shards, 4);
        assert_eq!(sharded.merged.ops, trace.len());
        assert_eq!(sharded.shard_ns.len(), 4);
        // Every shard saw work, and the merged clock is the slowest shard.
        assert!(sharded.shard_ns.iter().all(|&ns| ns > 0.0));
        let slowest = sharded.shard_ns.iter().cloned().fold(0.0, f64::max);
        assert_eq!(sharded.merged.total_ns, slowest);
    }

    #[test]
    fn epoch_snapshots_are_monotone_and_cover_the_tail() {
        let cfg = AnubisConfig::small_test();
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let (reg, tel) = anubis::telemetry::Telemetry::private();
        c.set_telemetry(tel.clone());
        let trace = small_trace(250);
        let (result, snaps) =
            run_trace_with_epochs(&mut c, &trace, &TimingModel::paper(), 100, &tel).unwrap();
        assert_eq!(result.ops, 250);
        // 100 + 100 + 50 → three epochs.
        assert_eq!(snaps.len(), 3);
        for pair in snaps.windows(2) {
            assert!(pair[1].seq > pair[0].seq);
            assert!(pair[1].at_ns >= pair[0].at_ns);
            for (name, labels) in &pair[0].counters {
                for (label, value) in labels {
                    let later = pair[1].counter(name, label);
                    assert!(
                        later >= *value,
                        "counter {name}{{{label}}} regressed: {later} < {value}"
                    );
                }
            }
        }
        let last = snaps.last().unwrap();
        assert_eq!(last.counter("sim_ops_total", "agit-plus"), 250);
        assert!(last.counter("nvm_writes_total", "agit-plus") > 0);
        drop(reg);
    }

    #[test]
    fn epoch_variant_matches_run_trace_when_disabled() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(400);
        let model = TimingModel::paper();
        let mut a = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        a.set_telemetry(anubis::telemetry::Telemetry::off());
        let plain = run_trace(&mut a, &trace, &model).unwrap();
        let mut b = BonsaiController::new(BonsaiScheme::Osiris, &cfg);
        let off = anubis::telemetry::Telemetry::off();
        b.set_telemetry(off.clone());
        let (epoch, snaps) = run_trace_with_epochs(&mut b, &trace, &model, 64, &off).unwrap();
        assert_eq!(plain, epoch);
        assert!(snaps.is_empty());
    }

    #[test]
    fn utilization_is_invariant_under_sharding_for_a_one_shard_trace() {
        let cfg = AnubisConfig::small_test();
        // Confine every op to the first counter-block group so the trace
        // lands entirely in shard 0 at any shard count.
        let ops: Vec<MemOp> = (0..600)
            .map(|i| {
                let addr = anubis_nvm::BlockAddr::new(i % LINES_PER_COUNTER_BLOCK);
                if i % 3 == 0 {
                    MemOp::read(addr, 10)
                } else {
                    MemOp::write(addr, 10)
                }
            })
            .collect();
        let trace = Trace::new("one-shard", ops);
        let model = TimingModel::paper();
        let run = |shards: usize| {
            run_trace_sharded(
                |_| BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
                &trace,
                &model,
                shards,
                1,
            )
            .unwrap()
        };
        let single = run(1);
        let many = run(4);
        assert!(single.merged.utilization() > 0.0);
        assert_eq!(
            single.merged.utilization(),
            many.merged.utilization(),
            "idle shards must not change utilization"
        );
        assert_eq!(single.merged.busy_ns, many.merged.busy_ns);
        assert_eq!(single.merged.channel_time_ns, many.merged.channel_time_ns);
    }

    #[test]
    fn utilization_stays_in_unit_interval_with_busy_shards() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(1_500);
        let model = TimingModel::paper();
        let sharded = run_trace_sharded(
            |_| BonsaiController::new(BonsaiScheme::StrictPersist, &cfg),
            &trace,
            &model,
            4,
            2,
        )
        .unwrap();
        let u = sharded.merged.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
        // The old bug: dividing summed per-channel work by the max wall
        // clock. With 4 busy shards that quotient can exceed 1.0; the
        // summed channel-time denominator keeps it a true fraction.
        assert!(sharded.merged.channel_time_ns >= sharded.merged.total_ns);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let cfg = AnubisConfig::small_test();
        let trace = small_trace(300);
        let model = TimingModel::paper();
        let r1 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        let r2 = run_trace(
            &mut BonsaiController::new(BonsaiScheme::AgitPlus, &cfg),
            &trace,
            &model,
        )
        .unwrap();
        assert_eq!(r1, r2);
    }
}
