//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned-column table, printed by the per-figure harness
/// binaries in `anubis-bench`.
///
/// # Example
///
/// ```
/// use anubis_sim::Table;
/// let mut t = Table::new(vec!["workload".into(), "slowdown".into()]);
/// t.row(vec!["mcf".into(), "1.02".into()]);
/// let text = t.to_string();
/// assert!(text.contains("mcf"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the {} headers",
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, for programmatic inspection in tests.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimals (the normalized-overhead convention).
#[allow(dead_code)]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a'));
        assert!(lines[2].contains("xxxxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(1.23456), "1.235");
    }
}
