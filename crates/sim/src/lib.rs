//! Trace-driven timing simulation and experiment harness.
//!
//! This crate converts the per-operation [`anubis::OpCost`]s reported by
//! the memory controllers into wall-clock execution time, standing in for
//! the cycle-level gem5 simulation the paper used. The model
//! (see [`TimingModel`]) is a single PCM channel with the paper's Table 1
//! latencies (read 60 ns, write 150 ns): reads stall the CPU, writes are
//! posted through a bounded write queue whose back-pressure stalls the
//! CPU only when full — exactly the mechanism that makes write-amplifying
//! schemes (strict persistence) slow and shadow-table schemes (Anubis)
//! nearly free.
//!
//! What is deliberately *not* modeled: bank-level parallelism, row
//! buffers, on-chip cache hierarchy above the LLC (traces are LLC-miss
//! streams), and instruction-level overlap. Figures 10/11/13 report
//! overheads *normalized to the write-back baseline on the same trace*,
//! which this level of abstraction preserves (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use anubis::{AnubisConfig, BonsaiController, BonsaiScheme};
//! use anubis_sim::{run_trace, TimingModel};
//! use anubis_workloads::{spec2006, TraceGenerator};
//!
//! let config = AnubisConfig::small_test();
//! let trace = TraceGenerator::new(spec2006::xalancbmk(), config.capacity_bytes)
//!     .generate(2_000, 7);
//! let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
//! let result = run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
//! assert!(result.total_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod endurance;
mod engine;
mod report;
mod timing;

pub mod chaos;
pub mod drill;
pub mod experiments;
pub mod fault;
pub mod storm;

pub use endurance::EnduranceModel;
pub use engine::{
    payload, run_trace, run_trace_sharded, run_trace_with_epochs, shard_of, RunResult,
    ShardedRunResult,
};
pub use fault::{
    bit_flip_sweep, count_persist_writes, op_payload, power_cut_sweep, run_with_fault,
    torn_write_sweep, CampaignReport, FaultVerdict, ScriptOp,
};
pub use report::Table;
pub use storm::{crash_storm, StormConfig, StormReport};
pub use timing::TimingModel;
