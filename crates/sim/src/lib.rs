//! Trace-driven timing simulation and experiment harness.
//!
//! This crate converts the per-operation [`anubis::OpCost`]s reported by
//! the memory controllers into wall-clock execution time, standing in for
//! the cycle-level gem5 simulation the paper used. The model
//! (see [`TimingModel`]) is a banked PCM channel with the paper's Table 1
//! latencies (read 60 ns, write 150 ns), driven by a deterministic
//! discrete-event engine on an integer-nanosecond clock: reads stall the
//! CPU and schedule with priority over queued writes, writes are posted
//! through a bounded write-pending queue whose back-pressure stalls the
//! CPU only when full, and bank conflicts serialize — exactly the
//! mechanisms that make write-amplifying schemes (strict persistence)
//! slow, visibly *more* so at p99 than in the mean, and shadow-table
//! schemes (Anubis) nearly free. Every replay reports the per-op latency
//! distribution ([`LatencySummary`]: p50/p95/p99), not just totals.
//!
//! What is deliberately *not* modeled: row buffers, the on-chip cache
//! hierarchy above the LLC (traces are LLC-miss streams), and
//! instruction-level overlap. Figures 10/11/13 report overheads
//! *normalized to the write-back baseline on the same trace*, which this
//! level of abstraction preserves (see DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use anubis::{AnubisConfig, BonsaiController, BonsaiScheme};
//! use anubis_sim::{run_trace, TimingModel};
//! use anubis_workloads::{spec2006, TraceGenerator};
//!
//! let config = AnubisConfig::small_test();
//! let trace = TraceGenerator::new(spec2006::xalancbmk(), config.capacity_bytes)
//!     .generate(2_000, 7);
//! let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
//! let result = run_trace(&mut ctrl, &trace, &TimingModel::paper()).unwrap();
//! assert!(result.total_ns > 0);
//! assert!(result.latency.p99_ns >= result.latency.p50_ns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod endurance;
mod engine;
mod event;
mod report;
mod timing;

pub mod adversary;
pub mod chaos;
pub mod drill;
pub mod experiments;
pub mod fault;
pub mod storm;

pub use endurance::EnduranceModel;
pub use engine::{
    payload, run_trace, run_trace_latencies, run_trace_sharded, run_trace_sharded_with_telemetry,
    run_trace_with_epochs, shard_of, LatencySummary, RunResult, ShardedRunResult,
    OP_LATENCY_METRIC,
};
pub use fault::{
    bit_flip_sweep, count_persist_writes, op_payload, power_cut_sweep, run_with_fault,
    torn_write_sweep, CampaignReport, FaultVerdict, ScriptOp,
};
pub use report::Table;
pub use storm::{crash_storm, StormConfig, StormReport};
pub use timing::TimingModel;
