//! Reusable experiment drivers for the paper's figures.
//!
//! Each per-figure binary in `anubis-bench` is a thin wrapper over these
//! functions, so integration tests can exercise the same code paths at
//! reduced scale.

use crate::engine::{run_trace, RunResult};
use crate::timing::TimingModel;
use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, MemError, MemoryController, SgxController,
    SgxScheme,
};
use anubis_workloads::{TraceGenerator, WorkloadSpec};

/// How many trace operations a figure run replays per workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Measured operations per (workload, scheme) run.
    pub ops: usize,
    /// Warm-up operations replayed before measurement starts (cost
    /// counters and cache statistics reset afterwards) — the analogue of
    /// the paper's fast-forward to a representative region.
    pub warmup_ops: usize,
    /// RNG seed for trace generation.
    pub seed: u64,
}

impl Scale {
    /// Full-figure scale (used by the bench binaries).
    pub fn full() -> Self {
        Scale {
            ops: 200_000,
            warmup_ops: 20_000,
            seed: 1907,
        }
    }

    /// Reduced scale for integration tests.
    pub fn smoke() -> Self {
        Scale {
            ops: 3_000,
            warmup_ops: 500,
            seed: 1907,
        }
    }
}

/// Replays the warm-up prefix (untimed) and returns the measured suffix.
fn split_trace(
    trace: &anubis_workloads::Trace,
    scale: Scale,
) -> (anubis_workloads::Trace, anubis_workloads::Trace) {
    let warm: anubis_workloads::Trace = anubis_workloads::Trace::new(
        trace.name(),
        trace.ops()[..scale.warmup_ops.min(trace.len())].to_vec(),
    );
    let measured = anubis_workloads::Trace::new(
        trace.name(),
        trace.ops()[scale.warmup_ops.min(trace.len())..].to_vec(),
    );
    (warm, measured)
}

/// Warms a controller on the prefix, resets its statistics, and replays
/// the measured suffix through the timing model.
///
/// # Errors
///
/// Propagates controller errors.
pub fn run_measured<C: anubis::MemoryController>(
    controller: &mut C,
    trace: &anubis_workloads::Trace,
    model: &TimingModel,
    scale: Scale,
) -> Result<RunResult, MemError> {
    let (warm, measured) = split_trace(trace, scale);
    if !warm.is_empty() {
        run_trace(controller, &warm, model)?;
        controller.reset_costs();
    }
    run_trace(controller, &measured, model)
}

/// One workload's results across the Bonsai schemes (Figure 10 row).
#[derive(Clone, Debug)]
pub struct BonsaiRow {
    /// Workload name.
    pub workload: String,
    /// Results per scheme, in [`BonsaiScheme::all`] order.
    pub results: Vec<RunResult>,
}

impl BonsaiRow {
    /// Normalized execution time per scheme (write-back = 1.0).
    pub fn normalized(&self) -> Vec<f64> {
        let base = &self.results[0];
        self.results.iter().map(|r| r.normalized_to(base)).collect()
    }
}

/// Runs one workload through every Bonsai scheme (one Figure 10 row).
///
/// # Errors
///
/// Propagates controller errors (indicating a harness bug).
pub fn bonsai_row(
    spec: &WorkloadSpec,
    config: &AnubisConfig,
    model: &TimingModel,
    scale: Scale,
) -> Result<BonsaiRow, MemError> {
    let trace = TraceGenerator::new(spec.clone(), config.capacity_bytes)
        .generate(scale.ops + scale.warmup_ops, scale.seed);
    let mut results = Vec::with_capacity(5);
    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, config);
        results.push(run_measured(&mut ctrl, &trace, model, scale)?);
    }
    Ok(BonsaiRow {
        workload: spec.name.to_string(),
        results,
    })
}

/// One workload's results across the SGX schemes (Figure 11 row).
#[derive(Clone, Debug)]
pub struct SgxRow {
    /// Workload name.
    pub workload: String,
    /// Results per scheme, in [`SgxScheme::all`] order.
    pub results: Vec<RunResult>,
}

impl SgxRow {
    /// Normalized execution time per scheme (write-back = 1.0).
    pub fn normalized(&self) -> Vec<f64> {
        let base = &self.results[0];
        self.results.iter().map(|r| r.normalized_to(base)).collect()
    }
}

/// Runs one workload through every SGX scheme (one Figure 11 row).
///
/// # Errors
///
/// Propagates controller errors (indicating a harness bug).
pub fn sgx_row(
    spec: &WorkloadSpec,
    config: &AnubisConfig,
    model: &TimingModel,
    scale: Scale,
) -> Result<SgxRow, MemError> {
    let trace = TraceGenerator::new(spec.clone(), config.capacity_bytes)
        .generate(scale.ops + scale.warmup_ops, scale.seed);
    let mut results = Vec::with_capacity(4);
    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, config);
        results.push(run_measured(&mut ctrl, &trace, model, scale)?);
    }
    Ok(SgxRow {
        workload: spec.name.to_string(),
        results,
    })
}

/// Geometric mean of normalized overheads across rows (the "GEOMEAN" bar
/// in the paper's figures).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty set");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Clean-eviction fraction of the counter cache for one workload
/// (a Figure 7 bar). Uses the write-back baseline, as the paper does.
///
/// # Errors
///
/// Propagates controller errors.
pub fn clean_eviction_fraction(
    spec: &WorkloadSpec,
    config: &AnubisConfig,
    scale: Scale,
) -> Result<Option<f64>, MemError> {
    let trace = TraceGenerator::new(spec.clone(), config.capacity_bytes)
        .generate(scale.ops + scale.warmup_ops, scale.seed);
    let mut ctrl = BonsaiController::new(BonsaiScheme::WriteBack, config);
    run_measured(&mut ctrl, &trace, &TimingModel::paper(), scale)?;
    Ok(ctrl.counter_cache_stats().clean_eviction_fraction())
}

/// A cache-size sweep point for Figure 13: normalized execution time of
/// each recoverable scheme at one cache size.
#[derive(Clone, Debug)]
pub struct SensitivityPoint {
    /// Per-side cache size in bytes (counter and tree caches each).
    pub cache_bytes: usize,
    /// (scheme name, normalized-to-write-back-at-same-size) pairs.
    pub normalized: Vec<(&'static str, f64)>,
    /// Raw write-back time at this size (for absolute-improvement plots).
    pub write_back_ns: f64,
}

/// Runs the Figure 13 sensitivity sweep for one workload.
///
/// # Errors
///
/// Propagates controller errors.
pub fn cache_sensitivity(
    spec: &WorkloadSpec,
    base_config: &AnubisConfig,
    cache_sizes: &[usize],
    model: &TimingModel,
    scale: Scale,
) -> Result<Vec<SensitivityPoint>, MemError> {
    let mut points = Vec::with_capacity(cache_sizes.len());
    for &bytes in cache_sizes {
        let config = base_config.clone().with_cache_bytes(bytes);
        let trace = TraceGenerator::new(spec.clone(), config.capacity_bytes)
            .generate(scale.ops + scale.warmup_ops, scale.seed);
        let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &config);
        let base = run_measured(&mut wb, &trace, model, scale)?;
        let mut normalized = Vec::new();
        for scheme in [BonsaiScheme::AgitRead, BonsaiScheme::AgitPlus] {
            let mut ctrl = BonsaiController::new(scheme, &config);
            let r = run_measured(&mut ctrl, &trace, model, scale)?;
            normalized.push((scheme.name(), r.normalized_to(&base)));
        }
        // ASIT normalizes to the SGX write-back baseline at the same size.
        let mut sgx_wb = SgxController::new(SgxScheme::WriteBack, &config);
        let sgx_base = run_measured(&mut sgx_wb, &trace, model, scale)?;
        let mut asit = SgxController::new(SgxScheme::Asit, &config);
        let r = run_measured(&mut asit, &trace, model, scale)?;
        normalized.push((SgxScheme::Asit.name(), r.normalized_to(&sgx_base)));
        points.push(SensitivityPoint {
            cache_bytes: bytes,
            normalized,
            write_back_ns: base.total_ns as f64,
        });
    }
    Ok(points)
}

/// Executes a live crash + recovery for one scheme at one cache size and
/// returns the measured recovery report (Figure 12's executed companion).
///
/// # Errors
///
/// Returns harness errors; recovery failures panic (they indicate bugs at
/// this scale).
pub fn measured_recovery(
    spec: &WorkloadSpec,
    config: &AnubisConfig,
    scale: Scale,
    agit: bool,
) -> Result<anubis::RecoveryReport, MemError> {
    let trace =
        TraceGenerator::new(spec.clone(), config.capacity_bytes).generate(scale.ops, scale.seed);
    // (No warm-up split here: recovery work depends on the cache contents
    // at crash time, which any prefix provides equally well.)
    if agit {
        let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, config);
        run_trace(&mut ctrl, &trace, &TimingModel::paper())?;
        ctrl.crash();
        Ok(ctrl.recover().expect("AGIT recovery at test scale"))
    } else {
        let mut ctrl = SgxController::new(SgxScheme::Asit, config);
        run_trace(&mut ctrl, &trace, &TimingModel::paper())?;
        ctrl.crash();
        Ok(ctrl.recover().expect("ASIT recovery at test scale"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_workloads::spec2006;

    fn cfg() -> AnubisConfig {
        AnubisConfig::small_test()
    }

    #[test]
    fn bonsai_row_ordering_holds_at_smoke_scale() {
        let row = bonsai_row(
            &spec2006::libquantum(),
            &cfg(),
            &TimingModel::paper(),
            Scale::smoke(),
        )
        .unwrap();
        let n = row.normalized();
        assert_eq!(n[0], 1.0);
        // Strict must be the slowest; every Anubis variant must beat it.
        assert!(
            n[1] > n[3] && n[1] > n[4],
            "strict {} vs agit {} {}",
            n[1],
            n[3],
            n[4]
        );
        assert!(n[2] >= 0.99, "osiris ~ baseline: {}", n[2]);
    }

    #[test]
    fn sgx_row_ordering_holds_at_smoke_scale() {
        let row = sgx_row(
            &spec2006::lbm(),
            &cfg(),
            &TimingModel::paper(),
            Scale::smoke(),
        )
        .unwrap();
        let n = row.normalized();
        assert_eq!(n[0], 1.0);
        assert!(n[1] > n[3], "strict {} must exceed asit {}", n[1], n[3]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn clean_eviction_fraction_in_range() {
        let f = clean_eviction_fraction(&spec2006::mcf(), &cfg(), Scale::smoke()).unwrap();
        if let Some(f) = f {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn measured_recovery_runs_both_families() {
        let agit = measured_recovery(&spec2006::milc(), &cfg(), Scale::smoke(), true).unwrap();
        assert!(agit.total_ops() > 0);
        let asit = measured_recovery(&spec2006::milc(), &cfg(), Scale::smoke(), false).unwrap();
        assert!(asit.total_ops() > 0);
    }
}
