//! The banked-channel discrete-event timing model.
//!
//! [`TimingModel`] keeps the paper's Table 1 parameters as an `f64`
//! configuration surface; internally every replay runs on an integer
//! nanosecond clock (see [`LatNs`]) driven by the event queue in
//! [`crate::event`]. Integer time makes shard merges exactly
//! associative — 1-shard and 8-shard replays of the same trace produce
//! bit-identical totals, not epsilon-close ones — and lets the engine
//! record exact per-op latencies for tail (p95/p99) reporting.

use std::collections::VecDeque;

use anubis::OpCost;

use crate::event::{Completion, Event, EventQueue};

/// Latency parameters and queue geometry for the memory channel.
///
/// Defaults follow the paper's Table 1 (PCM read 60 ns, write 150 ns).
#[derive(Clone, Debug, PartialEq)]
pub struct TimingModel {
    /// PCM array read latency per 64-byte block (ns).
    pub read_ns: f64,
    /// PCM array write latency per 64-byte block (ns).
    pub write_ns: f64,
    /// Latency of one hash/MAC/pad computation (ns). Metadata hash checks
    /// largely overlap with data fetch in real engines; a small serial
    /// component remains on the critical path.
    pub hash_ns: f64,
    /// Write-queue depth: posted writes stall the CPU only when this many
    /// writes are already posted but not yet completed (WPQ
    /// back-pressure).
    pub write_queue_depth: usize,
    /// Bank-level parallelism: the channel schedules accesses onto this
    /// many independently busy banks. Accesses to distinct idle banks
    /// overlap fully; a bank conflict serializes behind the bank's
    /// current access.
    pub banks: u32,
}

impl TimingModel {
    /// The paper's Table 1 configuration (read 60 ns, write 150 ns) with
    /// four banks and a pipelined hash engine.
    pub fn paper() -> Self {
        TimingModel {
            read_ns: 60.0,
            write_ns: 150.0,
            hash_ns: 5.0,
            write_queue_depth: 32,
            banks: 4,
        }
    }

    /// Quantizes the `f64` parameter surface to the integer-nanosecond
    /// domain the event engine runs in. Rounding happens once, up front,
    /// so all replay arithmetic is exact integer math.
    pub(crate) fn quantized(&self) -> LatNs {
        LatNs {
            read: self.read_ns.max(0.0).round() as u64,
            write: self.write_ns.max(0.0).round() as u64,
            hash: self.hash_ns.max(0.0).round() as u64,
            depth: self.write_queue_depth.max(1),
            banks: self.banks.max(1) as usize,
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper()
    }
}

/// [`TimingModel`] rounded to whole nanoseconds, with queue geometry
/// clamped to sane minimums (at least one bank, depth at least one).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LatNs {
    /// Array read latency (ns).
    pub read: u64,
    /// Array write latency (ns).
    pub write: u64,
    /// Serial hash latency (ns).
    pub hash: u64,
    /// WPQ depth (posted-but-incomplete writes before the CPU stalls).
    pub depth: usize,
    /// Bank count.
    pub banks: usize,
}

/// Discrete-event channel state threaded through a trace replay.
///
/// The channel owns `banks` independently busy banks, a bounded write
/// pending queue (WPQ), and a completion-event heap. Scheduling rules:
///
/// * **Writes are posted.** A write issues immediately onto an idle bank;
///   otherwise it parks in the WPQ. The CPU stalls only when the number
///   of posted-but-incomplete writes reaches `depth` (back-pressure).
/// * **Bank conflicts serialize.** An access to a busy bank starts when
///   the bank's current access completes; the bank with the earliest
///   free time wins, ties broken by lowest bank index (deterministic).
/// * **Reads have priority.** At a read's arrival instant, banks that
///   free exactly then are reserved for the read rather than handed to a
///   queued write; queued writes resume on banks the read did not take.
///   Reads never preempt an access that has already started.
///
/// Event processing is lazy: completions are applied when the CPU next
/// interacts with the channel, which keeps replay O(ops log ops) while
/// producing the same schedule as an eagerly stepped clock.
#[derive(Clone, Debug)]
pub(crate) struct Channel {
    lat: LatNs,
    /// CPU-visible clock (ns).
    pub now: u64,
    /// Per-bank completion time of the bank's latest scheduled access.
    bank_free: Vec<u64>,
    /// Pending completion events, keyed `(time, seq)`.
    events: EventQueue,
    /// Posted writes waiting for a bank, by post time (FIFO).
    wpq: VecDeque<u64>,
    /// Writes issued to a bank but not yet completed.
    inflight_writes: usize,
    /// Total CPU stall time waiting on reads (ns).
    pub read_stall_ns: u64,
    /// Total CPU stall time from WPQ back-pressure (ns).
    pub write_stall_ns: u64,
    /// Total bank occupancy: summed access latencies (ns). With `b`
    /// banks this can legitimately reach `b ×` the wall clock.
    pub busy_ns: u64,
    /// Latest completion time ever scheduled (ns).
    horizon: u64,
}

impl Channel {
    /// A fresh channel configured from `model`.
    pub fn new(model: &TimingModel) -> Self {
        let lat = model.quantized();
        Channel {
            bank_free: vec![0; lat.banks],
            lat,
            now: 0,
            events: EventQueue::new(),
            wpq: VecDeque::new(),
            inflight_writes: 0,
            read_stall_ns: 0,
            write_stall_ns: 0,
            busy_ns: 0,
            horizon: 0,
        }
    }

    /// Advances the CPU clock by the trace's compute gap. Channel
    /// completions that fall inside the gap are applied lazily on the
    /// next `execute`.
    pub fn advance(&mut self, gap_ns: u64) {
        self.now += gap_ns;
    }

    /// Schedules a write on `bank` starting at `start`.
    fn issue_write(&mut self, bank: usize, start: u64) {
        let done = start + self.lat.write;
        self.bank_free[bank] = done;
        self.busy_ns += self.lat.write;
        self.horizon = self.horizon.max(done);
        self.inflight_writes += 1;
        self.events.push(done, bank, Completion::Write);
    }

    /// Applies one completion: the bank frees and — unless the bank was
    /// re-claimed for a later access, or it frees exactly at a read's
    /// reserved arrival instant — the oldest queued write takes it.
    fn complete(&mut self, ev: Event, reserve_at: Option<u64>) {
        if ev.kind == Completion::Write {
            self.inflight_writes -= 1;
        }
        // A read may have claimed this bank's future slot already; the
        // bank is then not actually idle at the completion instant.
        if self.bank_free[ev.bank] > ev.at_ns {
            return;
        }
        if reserve_at == Some(ev.at_ns) {
            return;
        }
        if let Some(posted) = self.wpq.pop_front() {
            self.issue_write(ev.bank, ev.at_ns.max(posted));
        }
    }

    /// Processes every completion at or before `t`. With
    /// `reserve_for_read`, banks freeing exactly at `t` stay idle so the
    /// arriving read can claim them first.
    fn sync(&mut self, t: u64, reserve_for_read: bool) {
        let reserve = if reserve_for_read { Some(t) } else { None };
        while let Some(ev) = self.events.pop_until(t) {
            self.complete(ev, reserve);
        }
    }

    /// Lowest-indexed bank idle at `t`, if any.
    fn idle_bank_at(&self, t: u64) -> Option<usize> {
        (0..self.bank_free.len()).find(|&b| self.bank_free[b] <= t)
    }

    /// Bank with the earliest free time (ties to the lowest index).
    fn earliest_bank(&self) -> usize {
        let mut best = 0;
        for b in 1..self.bank_free.len() {
            if self.bank_free[b] < self.bank_free[best] {
                best = b;
            }
        }
        best
    }

    /// Starts queued writes on every bank idle at `t`, oldest first.
    fn issue_queued_at(&mut self, t: u64) {
        while !self.wpq.is_empty() {
            let Some(bank) = self.idle_bank_at(t) else {
                break;
            };
            if let Some(posted) = self.wpq.pop_front() {
                self.issue_write(bank, t.max(posted));
            }
        }
    }

    /// Writes posted but not yet completed (queued + in flight). This is
    /// the quantity the WPQ depth bounds.
    fn wpq_occupancy(&self) -> usize {
        self.wpq.len() + self.inflight_writes
    }

    /// Executes one operation's memory-controller work and returns the
    /// op's end-to-end critical-path latency (read waits + serial hash
    /// + any WPQ back-pressure stall).
    pub fn execute(&mut self, cost: OpCost) -> u64 {
        let begin = self.now;
        if cost.nvm_reads > 0 {
            self.sync(self.now, true);
            // All of the op's reads dispatch together; each claims the
            // earliest-free bank, so independent banks overlap and
            // conflicts serialize. The op completes when its last read
            // does.
            let mut op_done = self.now;
            for _ in 0..cost.nvm_reads {
                let bank = self.earliest_bank();
                let start = self.now.max(self.bank_free[bank]);
                let done = start + self.lat.read;
                self.bank_free[bank] = done;
                self.busy_ns += self.lat.read;
                self.horizon = self.horizon.max(done);
                self.events.push(done, bank, Completion::Read);
                op_done = op_done.max(done);
            }
            // Banks the reads did not claim may resume queued writes.
            self.issue_queued_at(self.now);
            self.read_stall_ns += op_done - self.now;
            self.now = op_done;
        }
        self.now += u64::from(cost.hash_ops) * self.lat.hash;
        if cost.nvm_writes > 0 {
            self.sync(self.now, false);
            for _ in 0..cost.nvm_writes {
                // Back-pressure: stall the CPU on completion events until
                // a WPQ slot frees. Completions in the lazy backlog (at
                // times before `now`) free slots without advancing time.
                while self.wpq_occupancy() >= self.lat.depth {
                    let Some(ev) = self.events.pop() else {
                        break;
                    };
                    let at = ev.at_ns;
                    self.complete(ev, None);
                    if at > self.now {
                        self.write_stall_ns += at - self.now;
                        self.now = at;
                    }
                }
                match self.idle_bank_at(self.now) {
                    Some(bank) => self.issue_write(bank, self.now),
                    None => self.wpq.push_back(self.now),
                }
            }
        }
        self.now - begin
    }

    /// Retires every scheduled and queued access, emptying the event
    /// heap and the WPQ. End-of-run only: a drained channel has lost its
    /// backlog, so mid-run snapshots must use [`Channel::drained_stats`]
    /// (which drains a clone) instead.
    pub fn drain(&mut self) {
        while let Some(ev) = self.events.pop() {
            self.complete(ev, None);
        }
        debug_assert!(
            self.wpq.is_empty(),
            "queued writes with no pending completion event"
        );
    }

    /// Wall-clock end of the run: CPU done and every scheduled access
    /// complete. Exact only once drained; before that it is a lower
    /// bound that excludes still-queued writes.
    pub fn finish(&self) -> u64 {
        self.now.max(self.horizon)
    }

    /// Statistics as if the run ended now: drains a clone so the live
    /// channel keeps its backlog. Used for both end-of-run results and
    /// mid-run epoch snapshots.
    pub fn drained_stats(&self) -> ChannelStats {
        let mut c = self.clone();
        c.drain();
        ChannelStats::of(&c)
    }
}

/// Occupancy statistics distilled from one channel, mergeable across the
/// per-shard channels of a sharded replay.
///
/// Sharded mode gives every address shard its own [`Channel`] — the shards
/// model independent memory channels, so threading one channel's state
/// through all shards would falsely serialize them. Merging takes the
/// *slowest* shard's wall clock (shards run concurrently) and sums the
/// stall, occupancy, and channel-time fields (work performed, not elapsed
/// time, so it adds across channels). All fields are integer nanoseconds:
/// `max` and `+` on `u64` are exactly associative, so any merge order —
/// and any lane count — produces bit-identical totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ChannelStats {
    /// Wall-clock end of the shard's run (ns).
    pub total_ns: u64,
    /// Total read-stall work on this channel (ns).
    pub read_stall_ns: u64,
    /// Total write-queue back-pressure work on this channel (ns).
    pub write_stall_ns: u64,
    /// Total bank occupancy across the merged channels (ns, summed).
    pub busy_ns: u64,
    /// Total bank-time across the merged channels (ns, summed): each
    /// channel contributes `wall clock × banks`, so an idle shard adds
    /// nothing. This is the utilization denominator — with banked
    /// parallelism `busy_ns` can exceed the wall clock, and dividing by
    /// the *max* wall clock would inflate utilization by up to the
    /// shard count.
    pub channel_time_ns: u64,
}

impl ChannelStats {
    /// Snapshots a drained channel.
    pub fn of(ch: &Channel) -> Self {
        ChannelStats {
            total_ns: ch.finish(),
            read_stall_ns: ch.read_stall_ns,
            write_stall_ns: ch.write_stall_ns,
            busy_ns: ch.busy_ns,
            channel_time_ns: ch.finish() * ch.bank_free.len() as u64,
        }
    }

    /// Folds another shard's stats in: max wall clock, summed stalls,
    /// summed occupancy and channel-time.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.total_ns = self.total_ns.max(other.total_ns);
        self.read_stall_ns += other.read_stall_ns;
        self.write_stall_ns += other.write_stall_ns;
        self.busy_ns += other.busy_ns;
        self.channel_time_ns += other.channel_time_ns;
    }

    /// Fraction of bank-time spent transferring, in `[0, 1]`. Defined
    /// as exactly `0.0` for an empty trace (`channel_time_ns == 0`) so
    /// no NaN reaches telemetry gauges or BENCH JSON. Invariant under
    /// sharding: a trace confined to one shard reports the same
    /// utilization at `shards == 1` and `shards == N`, because idle
    /// shards contribute zero to both numerator and denominator.
    pub fn utilization(&self) -> f64 {
        if self.channel_time_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.channel_time_ns as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(r: u32, w: u32, h: u32) -> OpCost {
        OpCost {
            nvm_reads: r,
            nvm_writes: w,
            hash_ops: h,
            bg_hash_ops: 0,
        }
    }

    fn serial() -> TimingModel {
        TimingModel {
            banks: 1,
            ..TimingModel::paper()
        }
    }

    #[test]
    fn paper_model_quantizes_to_whole_ns() {
        let q = TimingModel::paper().quantized();
        assert_eq!((q.read, q.write, q.hash), (60, 150, 5));
        assert_eq!((q.depth, q.banks), (32, 4));
        // Degenerate geometry clamps instead of dividing by zero.
        let q = TimingModel {
            banks: 0,
            write_queue_depth: 0,
            ..TimingModel::paper()
        }
        .quantized();
        assert_eq!((q.depth, q.banks), (1, 1));
    }

    #[test]
    fn reads_stall_cpu() {
        let mut ch = Channel::new(&serial());
        let lat = ch.execute(cost(2, 0, 0));
        assert_eq!(lat, 120);
        assert_eq!(ch.now, 120);
        assert_eq!(ch.read_stall_ns, 120);
    }

    #[test]
    fn reads_overlap_across_banks_and_conflicts_serialize() {
        let m = TimingModel {
            banks: 2,
            ..serial()
        };
        // Two reads on two banks: fully overlapped.
        let mut ch = Channel::new(&m);
        assert_eq!(ch.execute(cost(2, 0, 0)), 60);
        // Four reads on two banks: two waves.
        let mut ch = Channel::new(&m);
        assert_eq!(ch.execute(cost(4, 0, 0)), 120);
        // Five reads: one bank runs a third wave.
        let mut ch = Channel::new(&m);
        assert_eq!(ch.execute(cost(5, 0, 0)), 180);
    }

    #[test]
    fn writes_are_posted_until_queue_fills() {
        let m = TimingModel {
            write_queue_depth: 2,
            ..serial()
        };
        let mut ch = Channel::new(&m);
        // Two writes fit in the queue: no stall.
        let lat = ch.execute(cost(0, 2, 0));
        assert_eq!(lat, 0);
        assert_eq!(ch.write_stall_ns, 0);
        // Two more exceed the depth: the CPU stalls on completions. The
        // first write completes at 150 and the second at 300, so posting
        // two more writes waits out both.
        let lat = ch.execute(cost(0, 2, 0));
        assert_eq!(lat, 300);
        assert_eq!(ch.write_stall_ns, 300);
    }

    #[test]
    fn reads_jump_ahead_of_queued_writes_but_wait_for_inflight() {
        let mut ch = Channel::new(&serial());
        // One write in flight (0..150), three parked in the WPQ.
        ch.execute(cost(0, 4, 0));
        // The read cannot preempt the in-flight write but schedules ahead
        // of the three queued ones: it claims the bank at 150.
        let lat = ch.execute(cost(1, 0, 0));
        assert_eq!(lat, 210, "read = wait for in-flight write + array read");
        // The queued writes then drain behind the read: 210..660.
        let mut drained = ch.clone();
        drained.drain();
        assert_eq!(drained.finish(), 660);
    }

    #[test]
    fn read_priority_wins_a_bank_freeing_at_arrival_instant() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(0, 2, 0)); // write A in flight 0..150, write B queued
        ch.advance(150);
        // At exactly t=150 the bank frees. Read priority: the read takes
        // it (150..210) and write B waits until 210, instead of the
        // write claiming the bank and pushing the read to 300.
        let lat = ch.execute(cost(1, 0, 0));
        assert_eq!(lat, 60);
        let mut drained = ch.clone();
        drained.drain();
        assert_eq!(drained.finish(), 360);
    }

    #[test]
    fn idle_gaps_let_writes_drain() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(0, 4, 0));
        ch.advance(10_000); // long compute gap
        let lat = ch.execute(cost(1, 0, 0));
        assert_eq!(lat, 60, "channel drained during gap");
    }

    #[test]
    fn hash_ops_add_serial_latency() {
        let mut ch = Channel::new(&serial());
        let lat = ch.execute(cost(1, 0, 3));
        assert_eq!(lat, 60 + 3 * 5);
    }

    #[test]
    fn finish_includes_pending_writes_after_drain() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(0, 3, 0));
        assert_eq!(ch.finish(), 150, "undrained finish is a lower bound");
        ch.drain();
        assert_eq!(ch.finish(), 450);
    }

    #[test]
    fn drained_stats_leaves_the_live_channel_intact() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(0, 3, 0));
        let stats = ch.drained_stats();
        assert_eq!(stats.total_ns, 450);
        assert_eq!(stats.busy_ns, 450);
        // The live channel still has its backlog: a following read must
        // queue behind all three writes.
        let lat = ch.execute(cost(1, 0, 0));
        assert_eq!(lat, 210, "read waits for the in-flight write only");
    }

    #[test]
    fn channel_stats_merge_takes_max_clock_and_sums_stalls() {
        let mut a = ChannelStats {
            total_ns: 100,
            read_stall_ns: 10,
            write_stall_ns: 1,
            busy_ns: 50,
            channel_time_ns: 100,
        };
        let b = ChannelStats {
            total_ns: 250,
            read_stall_ns: 5,
            write_stall_ns: 2,
            busy_ns: 100,
            channel_time_ns: 250,
        };
        a.merge(&b);
        assert_eq!(a.total_ns, 250);
        assert_eq!(a.read_stall_ns, 15);
        assert_eq!(a.write_stall_ns, 3);
        assert_eq!(a.busy_ns, 150);
        assert_eq!(a.channel_time_ns, 350);
        assert!((a.utilization() - 150.0 / 350.0).abs() < 1e-12);
    }

    #[test]
    fn busy_tracks_occupancy_and_bounds_utilization() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(2, 3, 0));
        let s = ch.drained_stats();
        // 2 reads * 60 + 3 writes * 150 of occupancy, back-to-back on
        // one bank: the channel never idles.
        assert_eq!(s.busy_ns, 120 + 450);
        assert_eq!(s.total_ns, 570);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn banked_busy_can_exceed_wall_clock() {
        let m = TimingModel {
            banks: 4,
            ..TimingModel::paper()
        };
        let mut ch = Channel::new(&m);
        ch.execute(cost(4, 0, 0)); // fully overlapped: 60 ns wall clock
        let s = ch.drained_stats();
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.busy_ns, 240);
        assert_eq!(s.channel_time_ns, 240);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn idle_channel_reports_zero_utilization() {
        let s = Channel::new(&TimingModel::paper()).drained_stats();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.channel_time_ns, 0);
        assert_eq!(s.total_ns, 0);
    }

    #[test]
    fn idle_shards_do_not_dilute_or_inflate_utilization() {
        let mut ch = Channel::new(&serial());
        ch.execute(cost(4, 4, 0));
        let active = ch.drained_stats();
        let mut merged = active;
        for _ in 0..7 {
            merged.merge(&Channel::new(&serial()).drained_stats());
        }
        assert_eq!(merged.utilization(), active.utilization());
    }

    #[test]
    fn replay_totals_are_exactly_reproducible() {
        // Same op sequence, two independent replays: every counter is
        // bit-identical (integer clock, no accumulation-order drift).
        let run = || {
            let mut ch = Channel::new(&TimingModel::paper());
            let mut lats = Vec::new();
            for i in 0..200u32 {
                ch.advance(u64::from(i % 7) * 10);
                lats.push(ch.execute(cost(1 + i % 3, i % 5, i % 2)));
            }
            (ch.drained_stats(), lats)
        };
        assert_eq!(run(), run());
    }
}
