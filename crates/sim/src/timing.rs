//! The single-channel PCM timing model.

use anubis::OpCost;

/// Latency parameters and queue geometry for the memory channel.
///
/// Defaults follow the paper's Table 1 (PCM read 60 ns, write 150 ns).
#[derive(Clone, Debug, PartialEq)]
pub struct TimingModel {
    /// PCM array read latency per 64-byte block (ns).
    pub read_ns: f64,
    /// PCM array write latency per 64-byte block (ns).
    pub write_ns: f64,
    /// Latency of one hash/MAC/pad computation (ns). Metadata hash checks
    /// largely overlap with data fetch in real engines; a small serial
    /// component remains on the critical path.
    pub hash_ns: f64,
    /// Write-queue depth: posted writes stall the CPU only when the
    /// channel backlog exceeds this many writes (WPQ back-pressure).
    pub write_queue_depth: usize,
    /// Bank-level parallelism: the device sustains this many overlapped
    /// array accesses, so channel *occupancy* per access is
    /// `latency / banks` while the first access of an op still pays full
    /// latency on the critical path.
    pub banks: u32,
}

impl TimingModel {
    /// The paper's Table 1 configuration (read 60 ns, write 150 ns) with
    /// four banks and a pipelined hash engine.
    pub fn paper() -> Self {
        TimingModel {
            read_ns: 60.0,
            write_ns: 150.0,
            hash_ns: 5.0,
            write_queue_depth: 32,
            banks: 4,
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper()
    }
}

/// Channel state threaded through a trace replay.
#[derive(Clone, Debug, Default)]
pub(crate) struct Channel {
    /// CPU-visible clock (ns).
    pub now: f64,
    /// Time at which all scheduled channel work completes (ns).
    pub chan_free: f64,
    /// Total stall time attributable to write-queue back-pressure (ns).
    pub write_stall_ns: f64,
    /// Total stall time waiting on reads (ns).
    pub read_stall_ns: f64,
    /// Total channel occupancy: time the channel spent actually
    /// transferring blocks (ns). Grows by exactly `latency / banks` per
    /// scheduled access, so `busy_ns <= finish()` always holds.
    pub busy_ns: f64,
}

impl Channel {
    /// Advances the CPU clock by the trace's compute gap.
    pub fn advance(&mut self, gap_ns: f64) {
        self.now += gap_ns;
    }

    /// Executes one operation's memory-controller work and returns the
    /// op's critical-path latency.
    pub fn execute(&mut self, cost: OpCost, model: &TimingModel) -> f64 {
        let begin = self.now;
        let banks = model.banks.max(1) as f64;
        // Reads stall the CPU: the first pays full array latency behind
        // whatever the channel has scheduled; further reads of the same op
        // pipeline across banks.
        if cost.nvm_reads > 0 {
            let start = self.chan_free.max(self.now);
            let latency = model.read_ns + (cost.nvm_reads as f64 - 1.0) * model.read_ns / banks;
            let occupancy = cost.nvm_reads as f64 * model.read_ns / banks;
            self.chan_free = start + occupancy;
            self.busy_ns += occupancy;
            let done = start + latency;
            let stall = done - self.now;
            self.read_stall_ns += stall.max(0.0);
            self.now = done.max(self.now);
        }
        // Serial hash component.
        self.now += cost.hash_ops as f64 * model.hash_ns;
        // Writes are posted: they consume channel occupancy but the CPU
        // only stalls when the backlog exceeds the queue depth.
        if cost.nvm_writes > 0 {
            let occupancy = cost.nvm_writes as f64 * model.write_ns / banks;
            self.chan_free = self.chan_free.max(self.now) + occupancy;
            self.busy_ns += occupancy;
            let backlog_limit = model.write_queue_depth as f64 * model.write_ns / banks;
            if self.chan_free - self.now > backlog_limit {
                let target = self.chan_free - backlog_limit;
                self.write_stall_ns += target - self.now;
                self.now = target;
            }
        }
        self.now - begin
    }

    /// Wall-clock end of the run: CPU done and channel drained.
    pub fn finish(&self) -> f64 {
        self.now.max(self.chan_free)
    }
}

/// Occupancy statistics distilled from one channel, mergeable across the
/// per-shard channels of a sharded replay.
///
/// Sharded mode gives every address shard its own [`Channel`] — the shards
/// model independent memory channels, so threading one channel's `now` /
/// `chan_free` state through all shards would falsely serialize them.
/// Merging instead takes the *slowest* shard's wall clock (shards run
/// concurrently) and sums the stall time (work performed, not elapsed
/// time, so it adds across channels).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct ChannelStats {
    /// Wall-clock end of the shard's run (ns).
    pub total_ns: f64,
    /// Total read-stall work on this channel (ns).
    pub read_stall_ns: f64,
    /// Total write-queue back-pressure work on this channel (ns).
    pub write_stall_ns: f64,
    /// Total transfer occupancy across the merged channels (ns, summed).
    pub busy_ns: f64,
    /// Total channel-time across the merged channels (ns, summed): each
    /// channel contributes its own wall clock, so an idle shard adds
    /// nothing. This is the correct denominator for utilization — dividing
    /// summed per-channel work by the *max* wall clock (the merged
    /// `total_ns`) would inflate utilization by up to the shard count.
    pub channel_time_ns: f64,
}

impl ChannelStats {
    /// Snapshots a finished channel.
    pub fn of(ch: &Channel) -> Self {
        ChannelStats {
            total_ns: ch.finish(),
            read_stall_ns: ch.read_stall_ns,
            write_stall_ns: ch.write_stall_ns,
            busy_ns: ch.busy_ns,
            channel_time_ns: ch.finish(),
        }
    }

    /// Folds another shard's stats in: max wall clock, summed stalls,
    /// summed occupancy and channel-time.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.total_ns = self.total_ns.max(other.total_ns);
        self.read_stall_ns += other.read_stall_ns;
        self.write_stall_ns += other.write_stall_ns;
        self.busy_ns += other.busy_ns;
        self.channel_time_ns += other.channel_time_ns;
    }

    /// Fraction of channel-time spent transferring, in `[0, 1]`.
    /// Invariant under sharding: a trace confined to one shard reports
    /// the same utilization at `shards == 1` and `shards == N`, because
    /// idle shards contribute zero to both numerator and denominator.
    pub fn utilization(&self) -> f64 {
        if self.channel_time_ns <= 0.0 {
            0.0
        } else {
            (self.busy_ns / self.channel_time_ns).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(r: u32, w: u32, h: u32) -> OpCost {
        OpCost {
            nvm_reads: r,
            nvm_writes: w,
            hash_ops: h,
            bg_hash_ops: 0,
        }
    }

    fn serial() -> TimingModel {
        TimingModel {
            banks: 1,
            ..TimingModel::paper()
        }
    }

    #[test]
    fn reads_stall_cpu() {
        let m = serial();
        let mut ch = Channel::default();
        let lat = ch.execute(cost(2, 0, 0), &m);
        assert!((lat - 120.0).abs() < 1e-9);
        assert!((ch.now - 120.0).abs() < 1e-9);
    }

    #[test]
    fn banks_pipeline_extra_reads() {
        let m = TimingModel {
            banks: 4,
            ..serial()
        };
        let mut ch = Channel::default();
        let lat = ch.execute(cost(5, 0, 0), &m);
        assert!((lat - (60.0 + 4.0 * 15.0)).abs() < 1e-9, "got {lat}");
    }

    #[test]
    fn writes_are_posted_until_queue_fills() {
        let m = TimingModel {
            write_queue_depth: 2,
            ..serial()
        };
        let mut ch = Channel::default();
        // Two writes fit in the queue: no stall.
        let lat = ch.execute(cost(0, 2, 0), &m);
        assert_eq!(lat, 0.0);
        assert_eq!(ch.write_stall_ns, 0.0);
        // Two more exceed the depth: CPU stalls for the excess.
        let lat = ch.execute(cost(0, 2, 0), &m);
        assert!(lat > 0.0);
        assert!(ch.write_stall_ns > 0.0);
    }

    #[test]
    fn reads_wait_behind_scheduled_writes() {
        let m = serial();
        let mut ch = Channel::default();
        ch.execute(cost(0, 4, 0), &m); // 600 ns of channel work, posted
        let lat = ch.execute(cost(1, 0, 0), &m);
        assert!((lat - 660.0).abs() < 1e-9, "read waits for drain: {lat}");
    }

    #[test]
    fn idle_gaps_let_writes_drain() {
        let m = serial();
        let mut ch = Channel::default();
        ch.execute(cost(0, 4, 0), &m);
        ch.advance(10_000.0); // long compute gap
        let lat = ch.execute(cost(1, 0, 0), &m);
        assert!(
            (lat - 60.0).abs() < 1e-9,
            "channel drained during gap: {lat}"
        );
    }

    #[test]
    fn hash_ops_add_serial_latency() {
        let m = serial();
        let mut ch = Channel::default();
        let lat = ch.execute(cost(1, 0, 3), &m);
        assert!((lat - (60.0 + 3.0 * m.hash_ns)).abs() < 1e-9);
    }

    #[test]
    fn finish_includes_pending_writes() {
        let m = serial();
        let mut ch = Channel::default();
        ch.execute(cost(0, 3, 0), &m);
        assert!((ch.finish() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn channel_stats_merge_takes_max_clock_and_sums_stalls() {
        let mut a = ChannelStats {
            total_ns: 100.0,
            read_stall_ns: 10.0,
            write_stall_ns: 1.0,
            busy_ns: 50.0,
            channel_time_ns: 100.0,
        };
        let b = ChannelStats {
            total_ns: 250.0,
            read_stall_ns: 5.0,
            write_stall_ns: 2.0,
            busy_ns: 100.0,
            channel_time_ns: 250.0,
        };
        a.merge(&b);
        assert_eq!(a.total_ns, 250.0);
        assert_eq!(a.read_stall_ns, 15.0);
        assert_eq!(a.write_stall_ns, 3.0);
        assert_eq!(a.busy_ns, 150.0);
        assert_eq!(a.channel_time_ns, 350.0);
        assert!((a.utilization() - 150.0 / 350.0).abs() < 1e-12);
    }

    #[test]
    fn busy_tracks_occupancy_and_bounds_utilization() {
        let m = serial();
        let mut ch = Channel::default();
        ch.execute(cost(2, 3, 0), &m);
        // 2 reads * 60 + 3 writes * 150 of occupancy at banks=1.
        assert!((ch.busy_ns - (120.0 + 450.0)).abs() < 1e-9);
        assert!(ch.busy_ns <= ch.finish() + 1e-9);
        let s = ChannelStats::of(&ch);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }

    #[test]
    fn idle_channel_reports_zero_utilization() {
        let s = ChannelStats::of(&Channel::default());
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.channel_time_ns, 0.0);
    }

    #[test]
    fn idle_shards_do_not_dilute_or_inflate_utilization() {
        let m = serial();
        let mut ch = Channel::default();
        ch.execute(cost(4, 4, 0), &m);
        let active = ChannelStats::of(&ch);
        let mut merged = ChannelStats::of(&ch);
        for _ in 0..7 {
            merged.merge(&ChannelStats::of(&Channel::default()));
        }
        assert_eq!(merged.utilization(), active.utilization());
    }
}
