//! Restart-time adversary engine: at-rest tamper drills for durable state.
//!
//! The kill −9 drills in [`crate::drill`] prove that an *honest* crash
//! loses no acknowledged write. This module drops the honesty
//! assumption: between the child's death and the restart, an adversary
//! with full filesystem access **mutates the durable artifacts** — bit
//! flips, truncations, frame splices and reorders, wholesale rollback to
//! an earlier captured state, cross-domain image swaps, and attacks on
//! the freshness anchor itself — and the campaign demands that every
//! single mutated restart terminates in one of exactly three typed
//! verdicts:
//!
//! 1. **Full recovery** — every acknowledged write reads back intact
//!    (only allowed when the mutation could not have removed acked
//!    state, e.g. an anchor deletion under the explicit operator
//!    override);
//! 2. **Degraded** — the system serves, but damage is *declared*
//!    through typed read errors or quarantine loss accounting;
//! 3. **Refusal** — reopen or supervised recovery returns a typed
//!    error ([`RecoveryError::RollbackDetected`] for freshness
//!    violations) and nothing is served.
//!
//! Two outcomes are campaign-stopping findings, not verdicts: a
//! **panic** anywhere in the reopen/recover/read path, and a **silent
//! stale serve** — a read of an acknowledged address returning wrong
//! data without a typed error or declared quarantine loss. A completed
//! campaign therefore certifies: zero panics, zero silent staleness,
//! and 100 % detection of snapshot/WAL rollback.
//!
//! ## Threat-model boundary
//!
//! The sealed anchor beside the image stands in for the paper's
//! *on-chip NVRAM root register*: the adversary may read it but its
//! mutations there are limited to deletion/corruption/rollback of the
//! *file* (modeling NVRAM loss, not NVRAM forgery — the MAC key lives
//! in the processor). Substituting a *consistent old pair* (image +
//! matching anchor captured together) is out of scope, exactly as
//! rewinding the on-chip register in lockstep with external NVM is out
//! of scope for Anubis itself. Likewise, a single forged tail frame at
//! `anchored + 1` is indistinguishable from the one honest in-flight
//! barrier a crash can leave unanchored; anything further ahead is
//! refused as [`anubis_nvm::Freshness::TailForged`].

use std::collections::BTreeMap;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, RecoveryError, RecoveryOutcome,
    SgxController, SgxScheme, Supervised, Supervisor,
};
use anubis_nvm::{anchor_path_for, AnchorPolicy, FileBackend, FreshnessAnchor, NvmBackend};

use crate::drill::{
    ack_expectations, drill_script, read_ack_log, AckExpectations, AckWriter, DrillError,
    DrillFamily,
};
use crate::fault::op_payload;

/// Bytes per ack record (same format as the drill's ack log).
const ACK_RECORD_BYTES: u64 = 24;

/// How long the parent waits for a child before declaring it hung.
const CHILD_TIMEOUT: Duration = Duration::from_secs(300);

/// WAL image header bytes (magic + version) — the adversary is an
/// external observer of the on-disk format, so the constants are
/// duplicated from the NVM crate rather than exported by it.
const WAL_HEADER_BYTES: usize = 12;

/// WAL frame header bytes: payload len u32 | crc u64 | epoch u64.
const FRAME_HEADER_BYTES: usize = 20;

/// Acks the capture run stops short of the base run, so the captured
/// image is strictly older than the base image's sealed anchor even
/// after kill-latency overshoot.
const CAPTURE_MARGIN_ACKS: u64 = 35;

/// Smallest kill threshold: enough acked frames for every frame-level
/// mutation and comfortably past the capture margin.
const MIN_KILL_ACKS: u64 = 45;

/// Mutations evaluated per base kill point (including the unmutated
/// control), across all classes in [`MutationClass::all`].
pub const MUTATIONS_PER_RUN: u64 = 22;

/// Campaign parameters besides the family.
#[derive(Debug, Clone)]
pub struct AdversarySpec {
    /// Script length in operations (reads and writes).
    pub script_len: usize,
    /// Data-line address range the script touches.
    pub lines: u64,
    /// Seed for the script, kill points, and mutation draws.
    pub seed: u64,
}

impl Default for AdversarySpec {
    fn default() -> Self {
        AdversarySpec {
            script_len: 900,
            lines: 220,
            seed: 0xAD7E_5A21,
        }
    }
}

/// The mutation classes the adversary draws from. Every class carries a
/// *required verdict floor* — the weakest verdict the campaign accepts
/// for it (see [`Requirement`]); stronger outcomes are always allowed
/// upward in the order refusal > degraded > full recovery for damage,
/// but a required refusal is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationClass {
    /// The unmutated dead image — must recover and serve (baseline).
    Control,
    /// One bit flipped somewhere past the image header.
    BitFlip,
    /// Bytes sheared off the end of the image (torn or malicious tail).
    TruncateTail,
    /// Two or more *complete acked frames* removed from the WAL tail —
    /// internally consistent older state; only the anchor can tell.
    WalRollback,
    /// Two adjacent frames swapped in place (reordered log).
    FrameReorder,
    /// An earlier frame appended again at the tail (duplicated log).
    FrameDuplicate,
    /// An old frame's payload re-framed at fresh epochs with valid
    /// checksums — a format-aware replay splice.
    ReplaySplice,
    /// The whole image replaced by a capture taken mid-run (snapshot +
    /// WAL rollback); the anchor stays, as on-chip NVRAM would.
    StateRollback,
    /// The image (and optionally anchor) of a *different device with a
    /// different key* swapped in.
    CrossSwap,
    /// Attacks on the anchor file itself: deletion (strict and
    /// override), corruption, rollback, and the one-barrier lag heal.
    AnchorAttack,
}

impl MutationClass {
    /// Stable identifier used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::Control => "control",
            MutationClass::BitFlip => "bit-flip",
            MutationClass::TruncateTail => "truncate-tail",
            MutationClass::WalRollback => "wal-rollback",
            MutationClass::FrameReorder => "frame-reorder",
            MutationClass::FrameDuplicate => "frame-duplicate",
            MutationClass::ReplaySplice => "replay-splice",
            MutationClass::StateRollback => "state-rollback",
            MutationClass::CrossSwap => "cross-swap",
            MutationClass::AnchorAttack => "anchor-attack",
        }
    }

    /// Every class, in report order.
    pub fn all() -> [MutationClass; 10] {
        [
            MutationClass::Control,
            MutationClass::BitFlip,
            MutationClass::TruncateTail,
            MutationClass::WalRollback,
            MutationClass::FrameReorder,
            MutationClass::FrameDuplicate,
            MutationClass::ReplaySplice,
            MutationClass::StateRollback,
            MutationClass::CrossSwap,
            MutationClass::AnchorAttack,
        ]
    }
}

/// The verdict floor a mutation must reach for the campaign to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requirement {
    /// Any of the three verdicts (silent staleness and panics are
    /// campaign failures regardless, so "any" still means *typed*).
    AnyTyped,
    /// Recovery must refuse: reopen or the supervisor returns a typed
    /// error and nothing is served.
    Refusal,
    /// Recovery must refuse *specifically* with
    /// [`RecoveryError::RollbackDetected`].
    RollbackRefusal,
    /// The system must serve (full or degraded recovery) — refusing
    /// would mean the legitimate path is broken.
    Accepted,
}

impl Requirement {
    /// Stable identifier used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Requirement::AnyTyped => "any-typed",
            Requirement::Refusal => "refusal",
            Requirement::RollbackRefusal => "rollback-refusal",
            Requirement::Accepted => "accepted",
        }
    }

    /// Whether `verdict` satisfies this floor.
    pub fn met(self, verdict: &Verdict) -> bool {
        match self {
            Requirement::AnyTyped => true,
            Requirement::Refusal => matches!(verdict, Verdict::Refused { .. }),
            Requirement::RollbackRefusal => {
                matches!(verdict, Verdict::Refused { rollback: true, .. })
            }
            Requirement::Accepted => !matches!(verdict, Verdict::Refused { .. }),
        }
    }
}

/// How one mutated restart terminated. Every point lands in exactly one
/// of these; silent staleness and panics are *errors*, never verdicts.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Recovery succeeded and every acknowledged write read back its
    /// acknowledged payload (the one in-flight tolerance of the drill
    /// applies).
    FullRecovery,
    /// The system serves, but some acknowledged state was damaged — and
    /// said so, through typed read errors or declared quarantine loss.
    Degraded {
        /// Acknowledged addresses whose reads errored or were declared
        /// lost by quarantine.
        damage: u64,
        /// The supervised recovery outcome, rendered.
        outcome: String,
    },
    /// Reopen or supervised recovery returned a typed error; nothing
    /// was served.
    Refused {
        /// Whether the refusal was specifically
        /// [`RecoveryError::RollbackDetected`].
        rollback: bool,
        /// The refusal, rendered.
        reason: String,
    },
}

impl Verdict {
    /// Stable identifier used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::FullRecovery => "full-recovery",
            Verdict::Degraded { .. } => "degraded",
            Verdict::Refused { .. } => "refused",
        }
    }
}

/// An adversary-campaign failure. Every variant is typed and campaign
/// stopping; a completed campaign means every requirement in every
/// class was met with zero panics and zero silent-stale serves.
#[derive(Debug)]
pub enum AdversaryError {
    /// Harness filesystem or process-control failure.
    Io {
        /// What the harness was doing.
        op: &'static str,
        /// The file or executable involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A base or capture child run failed (spawn, serve, or hang) —
    /// infrastructure, not a finding.
    Child(DrillError),
    /// A mutation could not be applied (e.g. too few frames to splice);
    /// indicates a bad spec, not a finding.
    Mutation {
        /// The mutation's label.
        label: String,
        /// Why it could not be applied.
        detail: String,
    },
    /// THE FINDING: a read of an acknowledged address returned wrong
    /// data with no typed error and no declared quarantine loss.
    SilentStale {
        /// The mutation class that slipped through.
        class: &'static str,
        /// The specific mutation label.
        label: String,
        /// The acknowledged data-line address served stale.
        addr: u64,
    },
    /// THE FINDING: the reopen/recover/read path panicked instead of
    /// returning a typed error.
    Panicked {
        /// The mutation class that triggered it.
        class: &'static str,
        /// The specific mutation label.
        label: String,
        /// The panic payload, rendered.
        what: String,
    },
    /// THE FINDING: the point terminated in a typed verdict, but not
    /// the one its class requires (e.g. a WAL rollback that was not
    /// refused as rollback).
    MissedRequirement {
        /// The mutation class.
        class: &'static str,
        /// The specific mutation label.
        label: String,
        /// The required verdict floor.
        want: &'static str,
        /// The verdict actually reached, rendered.
        got: String,
    },
    /// A campaign point failed; wraps the underlying error with its
    /// scratch dir (preserved for post-mortem).
    Point {
        /// The drilled family.
        family: &'static str,
        /// Base-run index in campaign order.
        run: u64,
        /// Scratch directory preserved for post-mortem.
        dir: PathBuf,
        /// The underlying failure.
        source: Box<AdversaryError>,
    },
}

impl std::fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdversaryError::Io { op, path, source } => {
                write!(
                    f,
                    "adversary harness I/O: {op} {}: {source}",
                    path.display()
                )
            }
            AdversaryError::Child(e) => write!(f, "adversary child run failed: {e}"),
            AdversaryError::Mutation { label, detail } => {
                write!(f, "mutation {label} could not be applied: {detail}")
            }
            AdversaryError::SilentStale { class, label, addr } => write!(
                f,
                "SILENT STALE SERVE: class {class} ({label}) read acked addr {addr} \
                 wrong with no typed error and no declared loss"
            ),
            AdversaryError::Panicked { class, label, what } => {
                write!(f, "PANIC in recovery path: class {class} ({label}): {what}")
            }
            AdversaryError::MissedRequirement {
                class,
                label,
                want,
                got,
            } => write!(
                f,
                "requirement missed: class {class} ({label}) requires {want}, got {got}"
            ),
            AdversaryError::Point {
                family,
                run,
                dir,
                source,
            } => write!(
                f,
                "{family} base run {run} (artifacts in {}): {source}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for AdversaryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdversaryError::Io { source, .. } => Some(source),
            AdversaryError::Child(e) => Some(e),
            AdversaryError::Point { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<DrillError> for AdversaryError {
    fn from(e: DrillError) -> Self {
        AdversaryError::Child(e)
    }
}

/// Stamps `op` and `path` onto a raw I/O error.
fn io_ctx<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> AdversaryError + 'a {
    move |source| AdversaryError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// FNV-1a over arbitrary bytes (the WAL frame checksum primitive; the
/// adversary knows the format, so it is duplicated here).
fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a stream from `seed`.
fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The keyless WAL frame checksum: FNV-1a over epoch ‖ payload. The
/// adversary can forge it — which is exactly why the anchor, not the
/// checksum, carries the freshness authority.
fn frame_crc(epoch: u64, payload: &[u8]) -> u64 {
    fnv1a64_seeded(fnv1a64(&epoch.to_le_bytes()), payload)
}

/// xorshift64* — deterministic, dependency-free randomness.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A complete WAL frame located in an image's byte stream.
#[derive(Debug, Clone, Copy)]
struct FrameLoc {
    /// Byte offset of the frame header.
    start: usize,
    /// Total frame length (header + payload).
    len: usize,
    /// The frame's epoch field.
    epoch: u64,
}

impl FrameLoc {
    fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Locates every *complete* frame in a WAL image (a torn tail is
/// ignored, matching the backend's own open behavior).
fn parse_frames(bytes: &[u8]) -> Vec<FrameLoc> {
    let mut out = Vec::new();
    let mut pos = WAL_HEADER_BYTES;
    while pos + FRAME_HEADER_BYTES <= bytes.len() {
        let plen = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let Some(end) = pos.checked_add(FRAME_HEADER_BYTES + plen) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let epoch = u64::from_le_bytes(
            bytes[pos + 12..pos + 20]
                .try_into()
                .expect("sliced to 8 bytes"),
        );
        out.push(FrameLoc {
            start: pos,
            len: FRAME_HEADER_BYTES + plen,
            epoch,
        });
        pos = end;
    }
    out
}

/// The byte-level operation one mutation performs on the staged copy.
#[derive(Debug, Clone)]
enum MutationOp {
    /// Leave the image alone (the control point).
    Noop,
    /// Flip one bit; `draw` selects offset and bit.
    FlipBit { draw: u64 },
    /// Shear bytes off the tail; `draw` selects how many.
    TruncateTail { draw: u64 },
    /// Remove the last `frames` complete frames (≥ 2, so detection
    /// cannot hinge on the one-barrier anchor lag).
    DropTailFrames { frames: usize },
    /// Swap two adjacent frames; `draw` selects which pair.
    SwapAdjacentFrames { draw: u64 },
    /// Append a copy of an earlier frame at the tail; `draw` selects it.
    DuplicateFrame { draw: u64 },
    /// Re-frame an earlier frame's payload at two fresh epochs with
    /// valid checksums; `draw` selects the source frame.
    SpliceReplay { draw: u64 },
    /// Replace the image with the mid-run capture (anchor untouched).
    SubstituteCapturedImage,
    /// Replace the image with the foreign-key device's image; when
    /// `with_anchor`, its anchor too.
    SwapInForeign {
        /// Also swap in the foreign anchor (a consistent foreign pair).
        with_anchor: bool,
    },
    /// Delete the anchor file.
    DeleteAnchor,
    /// Overwrite the anchor file with garbage of the same length.
    CorruptAnchor,
    /// Replace the anchor with the mid-run capture's anchor (anchor
    /// rolled back far beyond the crash window).
    RollBackAnchor,
    /// Reseal the anchor at `image epoch − 1` — the honest one-barrier
    /// crash lag, which reopen must heal forward, not refuse.
    LagAnchorByOne,
}

/// One planned mutation: the op plus its class, label, open policy,
/// and required verdict floor.
#[derive(Debug, Clone)]
struct MutationSpec {
    class: MutationClass,
    label: String,
    op: MutationOp,
    policy: AnchorPolicy,
    requirement: Requirement,
}

/// Draws the per-base-run mutation plan: [`MUTATIONS_PER_RUN`] specs
/// covering every class in [`MutationClass::all`].
fn plan_mutations(rng: &mut u64) -> Vec<MutationSpec> {
    let mut plan = Vec::with_capacity(MUTATIONS_PER_RUN as usize);
    let mut push = |class: MutationClass,
                    label: String,
                    op: MutationOp,
                    policy: AnchorPolicy,
                    requirement: Requirement| {
        plan.push(MutationSpec {
            class,
            label,
            op,
            policy,
            requirement,
        });
    };

    push(
        MutationClass::Control,
        "control".into(),
        MutationOp::Noop,
        AnchorPolicy::Strict,
        Requirement::Accepted,
    );
    for k in 0..4 {
        push(
            MutationClass::BitFlip,
            format!("bit-flip-{k}"),
            MutationOp::FlipBit {
                draw: xorshift(rng),
            },
            AnchorPolicy::Strict,
            Requirement::AnyTyped,
        );
    }
    for k in 0..3 {
        push(
            MutationClass::TruncateTail,
            format!("truncate-tail-{k}"),
            MutationOp::TruncateTail {
                draw: xorshift(rng),
            },
            AnchorPolicy::Strict,
            Requirement::AnyTyped,
        );
    }
    for k in 0..3 {
        let frames = 2 + (xorshift(rng) % 8) as usize;
        push(
            MutationClass::WalRollback,
            format!("wal-rollback-{k}x{frames}"),
            MutationOp::DropTailFrames { frames },
            AnchorPolicy::Strict,
            Requirement::RollbackRefusal,
        );
    }
    push(
        MutationClass::FrameReorder,
        "frame-reorder".into(),
        MutationOp::SwapAdjacentFrames {
            draw: xorshift(rng),
        },
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::FrameDuplicate,
        "frame-duplicate".into(),
        MutationOp::DuplicateFrame {
            draw: xorshift(rng),
        },
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::ReplaySplice,
        "replay-splice".into(),
        MutationOp::SpliceReplay {
            draw: xorshift(rng),
        },
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::StateRollback,
        "state-rollback".into(),
        MutationOp::SubstituteCapturedImage,
        AnchorPolicy::Strict,
        Requirement::RollbackRefusal,
    );
    push(
        MutationClass::CrossSwap,
        "cross-swap-image".into(),
        MutationOp::SwapInForeign { with_anchor: false },
        AnchorPolicy::Strict,
        Requirement::RollbackRefusal,
    );
    push(
        MutationClass::CrossSwap,
        "cross-swap-pair".into(),
        MutationOp::SwapInForeign { with_anchor: true },
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::AnchorAttack,
        "anchor-delete-strict".into(),
        MutationOp::DeleteAnchor,
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::AnchorAttack,
        "anchor-delete-override".into(),
        MutationOp::DeleteAnchor,
        AnchorPolicy::Override,
        Requirement::Accepted,
    );
    push(
        MutationClass::AnchorAttack,
        "anchor-corrupt-strict".into(),
        MutationOp::CorruptAnchor,
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::AnchorAttack,
        "anchor-rollback".into(),
        MutationOp::RollBackAnchor,
        AnchorPolicy::Strict,
        Requirement::Refusal,
    );
    push(
        MutationClass::AnchorAttack,
        "anchor-lag-one".into(),
        MutationOp::LagAnchorByOne,
        AnchorPolicy::Strict,
        Requirement::Accepted,
    );
    debug_assert_eq!(plan.len() as u64, MUTATIONS_PER_RUN);
    plan
}

/// Artifacts of one killed child run: the dead image, its anchor, and
/// the parsed ack log.
struct DeadRun {
    image: PathBuf,
    anchor: PathBuf,
    acked: Vec<(u64, u64)>,
}

/// Spawns the child (`exe --child family image ack len lines seed`),
/// SIGKILLs it once `kill_after` acks are durable, and returns the dead
/// artifacts. The child must not finish: `kill_after` stays below the
/// script's total writes.
fn run_killed_child(
    exe: &Path,
    family: DrillFamily,
    spec: &AdversarySpec,
    dir: &Path,
    kill_after: u64,
) -> Result<DeadRun, AdversaryError> {
    fs::create_dir_all(dir).map_err(io_ctx("create scratch dir", dir))?;
    let image = dir.join("image.wal");
    let ack = dir.join("acks.bin");
    for stale in [&image, &ack, &anchor_path_for(&image)] {
        let _ = fs::remove_file(stale);
    }
    let mut child = Command::new(exe)
        .arg("--child")
        .arg(family.name())
        .arg(&image)
        .arg(&ack)
        .arg(spec.script_len.to_string())
        .arg(spec.lines.to_string())
        .arg(spec.seed.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(io_ctx("spawn child", exe))?;

    let started = Instant::now();
    let threshold = kill_after.saturating_mul(ACK_RECORD_BYTES);
    loop {
        if let Some(status) = child.try_wait().map_err(io_ctx("poll child", exe))? {
            // The kill thresholds are capped below the script's write
            // count, so a clean exit means the child failed early.
            return Err(AdversaryError::Child(DrillError::Child {
                code: status.code().filter(|_| !status.success()),
            }));
        }
        let acked_bytes = fs::metadata(&ack).map(|m| m.len()).unwrap_or(0);
        if acked_bytes >= threshold {
            child.kill().map_err(io_ctx("kill child", exe))?;
            child.wait().map_err(io_ctx("wait for child", exe))?;
            break;
        }
        if started.elapsed() > CHILD_TIMEOUT {
            child.kill().map_err(io_ctx("kill child", exe))?;
            child.wait().map_err(io_ctx("wait for child", exe))?;
            return Err(AdversaryError::Child(DrillError::Hung));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let acked = read_ack_log(&ack).map_err(io_ctx("read ack log", &ack))?;
    let anchor = anchor_path_for(&image);
    Ok(DeadRun {
        image,
        anchor,
        acked,
    })
}

/// Builds a small healthy device of the same family under a *different
/// key* — the cross-swap donor. Returns its image, anchor, and final
/// epoch (the campaign keeps every kill threshold above it so a swapped
/// foreign image always reads as rolled back).
fn build_foreign(
    family: DrillFamily,
    dir: &Path,
    spec: &AdversarySpec,
) -> Result<(PathBuf, PathBuf, u64), AdversaryError> {
    fs::create_dir_all(dir).map_err(io_ctx("create foreign dir", dir))?;
    let image = dir.join("foreign.wal");
    for stale in [&image, &anchor_path_for(&image)] {
        let _ = fs::remove_file(stale);
    }
    let mut config = AnubisConfig::small_test();
    config.key.0 = [0x0F0E_1617_C0FF_EE00, 0x5EED_0000_0000_0042];
    let backend = FileBackend::open_with_anchor(&image, config.key.0, AnchorPolicy::Strict)
        .map_err(|e| AdversaryError::Child(DrillError::Nvm(e)))?;
    let epoch = match family {
        DrillFamily::BonsaiAgitPlus => {
            let (mut ctrl, hint) =
                BonsaiController::reopen(BonsaiScheme::AgitPlus, &config, backend);
            foreign_writes(&mut ctrl, hint, spec)?;
            ctrl.domain().device().backend().epoch()
        }
        DrillFamily::SgxAsit => {
            let (mut ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &config, backend);
            foreign_writes(&mut ctrl, hint, spec)?;
            ctrl.domain().device().backend().epoch()
        }
    };
    let anchor = anchor_path_for(&image);
    Ok((image, anchor, epoch))
}

/// Recovers a freshly-built foreign controller and writes a handful of
/// distinct lines so the donor image has real history.
fn foreign_writes<C: Supervised>(
    ctrl: &mut C,
    hint: Option<RecoveryError>,
    spec: &AdversarySpec,
) -> Result<(), AdversaryError> {
    let sup = Supervisor::new().with_lanes(1);
    let res = match hint {
        Some(ref e) => sup.repair_then_recover(ctrl, e),
        None => sup.recover(ctrl),
    };
    res.map_err(|e| AdversaryError::Child(DrillError::Recovery(e)))?;
    for i in 0..8u64 {
        let addr = i % spec.lines.max(1);
        ctrl.write(DataAddr::new(addr), op_payload(0xF0_0000 + i, addr))
            .map_err(|err| AdversaryError::Child(DrillError::Serve { op_index: i, err }))?;
    }
    Ok(())
}

/// Everything a mutation can draw on when staging its files.
struct PointCtx<'a> {
    base: &'a DeadRun,
    capture: &'a DeadRun,
    foreign_image: &'a Path,
    foreign_anchor: &'a Path,
}

/// Stages one mutation into `dir` and returns the image path to
/// evaluate. The staged copy always has its own anchor file beside it
/// (except when the mutation removes it).
fn stage_mutation(
    spec: &MutationSpec,
    ctx: &PointCtx<'_>,
    dir: &Path,
) -> Result<PathBuf, AdversaryError> {
    fs::create_dir_all(dir).map_err(io_ctx("create mutation dir", dir))?;
    let work = dir.join("image.wal");
    let work_anchor = anchor_path_for(&work);
    for stale in [&work, &work_anchor] {
        let _ = fs::remove_file(stale);
    }
    let (src_image, src_anchor): (&Path, Option<&Path>) = match &spec.op {
        MutationOp::SubstituteCapturedImage => (&ctx.capture.image, Some(&ctx.base.anchor)),
        MutationOp::SwapInForeign { with_anchor: false } => {
            (ctx.foreign_image, Some(&ctx.base.anchor))
        }
        MutationOp::SwapInForeign { with_anchor: true } => {
            (ctx.foreign_image, Some(ctx.foreign_anchor))
        }
        MutationOp::DeleteAnchor => (&ctx.base.image, None),
        _ => (&ctx.base.image, Some(&ctx.base.anchor)),
    };
    fs::copy(src_image, &work).map_err(io_ctx("copy image to", &work))?;
    if let Some(a) = src_anchor {
        fs::copy(a, &work_anchor).map_err(io_ctx("copy anchor to", &work_anchor))?;
    }

    let bad = |label: &str, detail: String| AdversaryError::Mutation {
        label: label.to_string(),
        detail,
    };
    match &spec.op {
        MutationOp::Noop
        | MutationOp::SubstituteCapturedImage
        | MutationOp::SwapInForeign { .. }
        | MutationOp::DeleteAnchor => {}
        MutationOp::FlipBit { draw } => {
            let mut bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            if bytes.len() <= WAL_HEADER_BYTES {
                return Err(bad(&spec.label, "image has no body to flip".into()));
            }
            let span = bytes.len() - WAL_HEADER_BYTES;
            let off = WAL_HEADER_BYTES + (draw % span as u64) as usize;
            bytes[off] ^= 1 << ((draw >> 48) % 8);
            fs::write(&work, &bytes).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::TruncateTail { draw } => {
            let bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            if bytes.len() <= WAL_HEADER_BYTES + 1 {
                return Err(bad(&spec.label, "image too short to truncate".into()));
            }
            let span = (bytes.len() - WAL_HEADER_BYTES - 1).min(4096) as u64;
            let cut = 1 + (draw % span) as usize;
            fs::write(&work, &bytes[..bytes.len() - cut]).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::DropTailFrames { frames } => {
            let bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            let locs = parse_frames(&bytes);
            if locs.len() < frames + 1 {
                return Err(bad(
                    &spec.label,
                    format!("only {} complete frames, need > {frames}", locs.len()),
                ));
            }
            let keep = locs[locs.len() - frames].start;
            fs::write(&work, &bytes[..keep]).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::SwapAdjacentFrames { draw } => {
            let bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            let locs = parse_frames(&bytes);
            if locs.len() < 2 {
                return Err(bad(&spec.label, "fewer than two frames to swap".into()));
            }
            let i = (draw % (locs.len() as u64 - 1)) as usize;
            let (a, b) = (locs[i], locs[i + 1]);
            let mut out = Vec::with_capacity(bytes.len());
            out.extend_from_slice(&bytes[..a.start]);
            out.extend_from_slice(&bytes[b.start..b.end()]);
            out.extend_from_slice(&bytes[a.start..a.end()]);
            out.extend_from_slice(&bytes[b.end()..]);
            fs::write(&work, &out).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::DuplicateFrame { draw } => {
            let mut bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            let locs = parse_frames(&bytes);
            if locs.is_empty() {
                return Err(bad(&spec.label, "no frames to duplicate".into()));
            }
            let i = (draw % locs.len() as u64) as usize;
            let frame = bytes[locs[i].start..locs[i].end()].to_vec();
            bytes.extend_from_slice(&frame);
            fs::write(&work, &bytes).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::SpliceReplay { draw } => {
            let mut bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            let locs = parse_frames(&bytes);
            let Some(last) = locs.last().copied() else {
                return Err(bad(&spec.label, "no frames to splice".into()));
            };
            // Prefer a non-empty old frame so the replay carries records.
            let donors: Vec<FrameLoc> = locs
                .iter()
                .copied()
                .filter(|l| l.len > FRAME_HEADER_BYTES)
                .collect();
            if donors.is_empty() {
                return Err(bad(
                    &spec.label,
                    "no payload-bearing frame to replay".into(),
                ));
            }
            let donor = donors[(draw % donors.len() as u64) as usize];
            let payload = bytes[donor.start + FRAME_HEADER_BYTES..donor.end()].to_vec();
            for step in 1..=2u64 {
                let epoch = last.epoch + step;
                bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&frame_crc(epoch, &payload).to_le_bytes());
                bytes.extend_from_slice(&epoch.to_le_bytes());
                bytes.extend_from_slice(&payload);
            }
            fs::write(&work, &bytes).map_err(io_ctx("write image", &work))?;
        }
        MutationOp::CorruptAnchor => {
            let len = fs::metadata(&work_anchor)
                .map(|m| m.len() as usize)
                .unwrap_or(44);
            let garbage: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(0xA7) ^ 0x5C)
                .collect();
            fs::write(&work_anchor, &garbage).map_err(io_ctx("write anchor", &work_anchor))?;
        }
        MutationOp::RollBackAnchor => {
            fs::copy(&ctx.capture.anchor, &work_anchor)
                .map_err(io_ctx("copy captured anchor to", &work_anchor))?;
        }
        MutationOp::LagAnchorByOne => {
            let bytes = fs::read(&work).map_err(io_ctx("read image", &work))?;
            let Some(last) = parse_frames(&bytes).last().copied() else {
                return Err(bad(&spec.label, "no frames; cannot derive epoch".into()));
            };
            if last.epoch == 0 {
                return Err(bad(&spec.label, "image at epoch 0; cannot lag".into()));
            }
            fs::remove_file(&work_anchor).map_err(io_ctx("remove anchor", &work_anchor))?;
            let key = AnubisConfig::small_test().key.0;
            FreshnessAnchor::create(work_anchor, key, last.epoch - 1).map_err(|e| {
                AdversaryError::Mutation {
                    label: spec.label.clone(),
                    detail: format!("reseal lagged anchor: {e}"),
                }
            })?;
        }
    }
    Ok(work)
}

/// Why an evaluation failed the campaign rather than reaching a verdict.
enum EvalFailure {
    /// Wrong data served for an acked address with nothing typed.
    SilentStale { addr: u64 },
}

/// Reopens a mutated image and drives it to a verdict: typed refusal,
/// degraded-with-declared-damage, or full recovery. Panics are caught
/// by the caller; silent staleness is returned as [`EvalFailure`].
fn evaluate(
    family: DrillFamily,
    image: &Path,
    policy: AnchorPolicy,
    expected: &AckExpectations,
    inflight: Option<(u64, u64)>,
) -> Result<Verdict, EvalFailure> {
    let config = AnubisConfig::small_test();
    let backend = match FileBackend::open_with_anchor(image, config.key.0, policy) {
        Ok(b) => b,
        Err(e) => {
            return Ok(Verdict::Refused {
                rollback: false,
                reason: e.to_string(),
            })
        }
    };
    match family {
        DrillFamily::BonsaiAgitPlus => {
            let (ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &config, backend);
            verdict_for(ctrl, hint, expected, inflight)
        }
        DrillFamily::SgxAsit => {
            let (ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &config, backend);
            verdict_for(ctrl, hint, expected, inflight)
        }
    }
}

/// Runs supervised recovery and the acked-write audit on a reopened
/// controller.
fn verdict_for<C: Supervised>(
    mut ctrl: C,
    hint: Option<RecoveryError>,
    expected: &AckExpectations,
    inflight: Option<(u64, u64)>,
) -> Result<Verdict, EvalFailure> {
    let sup = Supervisor::new().with_lanes(1);
    let rec = match hint {
        Some(ref e) => sup.repair_then_recover(&mut ctrl, e),
        None => sup.recover(&mut ctrl),
    };
    let rec = match rec {
        Ok(r) => r,
        Err(e) => {
            return Ok(Verdict::Refused {
                rollback: matches!(e, RecoveryError::RollbackDetected { .. }),
                reason: e.to_string(),
            })
        }
    };
    let mut damage = 0u64;
    for (&addr, &(_, want)) in expected {
        match ctrl.read(DataAddr::new(addr)) {
            Ok(got) if got == want => {}
            Ok(got) => {
                if let Some((j, aj)) = inflight {
                    if aj == addr && got == op_payload(j, aj) {
                        continue;
                    }
                }
                // Wrong data is tolerable only as *declared* loss: the
                // supervisor quarantined the line and says so.
                if rec.quarantined_lines > 0 && ctrl.is_line_quarantined(DataAddr::new(addr)) {
                    damage += 1;
                } else {
                    return Err(EvalFailure::SilentStale { addr });
                }
            }
            // A typed read error is detected damage, never silent.
            Err(_) => damage += 1,
        }
    }
    if damage == 0 && matches!(rec.outcome, RecoveryOutcome::Recovered) {
        Ok(Verdict::FullRecovery)
    } else {
        Ok(Verdict::Degraded {
            damage: damage.max(rec.lost_lines),
            outcome: rec.outcome.to_string(),
        })
    }
}

/// One evaluated mutation point.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// The mutation class.
    pub class: MutationClass,
    /// The specific mutation label.
    pub label: String,
    /// Base-run kill threshold this point was built from.
    pub kill_after_acks: u64,
    /// The required verdict floor.
    pub requirement: Requirement,
    /// The verdict reached.
    pub verdict: Verdict,
}

/// Per-class verdict tallies.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Points evaluated in this class.
    pub points: u64,
    /// Full-recovery verdicts.
    pub full: u64,
    /// Degraded verdicts.
    pub degraded: u64,
    /// Refusal verdicts.
    pub refused: u64,
    /// Refusals that were specifically `RollbackDetected`.
    pub rollback_refusals: u64,
}

/// Aggregate results of one family's adversary campaign.
#[derive(Debug, Clone)]
pub struct FamilyAdvReport {
    /// The drilled family.
    pub family: DrillFamily,
    /// Base kill points executed (each spawns a base + capture child).
    pub base_runs: u64,
    /// Mutated-restart points evaluated (including controls).
    pub points: u64,
    /// Acked writes audited across all points.
    pub audited_reads: u64,
    /// Smallest and largest kill thresholds drawn.
    pub kill_range: (u64, u64),
    /// The cross-swap donor's final epoch.
    pub foreign_epoch: u64,
    /// Per-class verdict tallies, in [`MutationClass::all`] order.
    pub classes: Vec<(MutationClass, ClassStats)>,
    /// Every point, in evaluation order.
    pub outcomes: Vec<MutationOutcome>,
}

/// Runs one family's full adversary campaign: `base_runs` randomized
/// kill points, each mutated [`MUTATIONS_PER_RUN`] ways and driven to a
/// verdict.
///
/// # Errors
///
/// Stops at the first [`AdversaryError`]. A completed campaign means:
/// every point reached a typed verdict meeting its class requirement,
/// zero panics, zero silent-stale serves, and 100 % rollback detection.
pub fn run_campaign(
    exe: &Path,
    family: DrillFamily,
    spec: &AdversarySpec,
    dir: &Path,
    base_runs: u64,
) -> Result<FamilyAdvReport, AdversaryError> {
    let script = drill_script(spec.script_len, spec.lines, spec.seed);
    let max_acks = script.iter().filter(|op| op.0).count() as u64;
    let (foreign_image, foreign_anchor, foreign_epoch) = build_foreign(
        family,
        &dir.join(format!("{}-foreign", family.name())),
        spec,
    )?;
    // Every kill threshold stays above both the capture margin and the
    // foreign donor's epoch, so state-rollback and cross-swap points are
    // *guaranteed* behind the base anchor.
    let lo = MIN_KILL_ACKS.max(foreign_epoch + 2);
    let hi = max_acks.saturating_mul(3) / 4;
    if hi <= lo {
        return Err(AdversaryError::Mutation {
            label: "campaign".into(),
            detail: format!("script too short: kill window [{lo}, {hi}) is empty"),
        });
    }

    let mut rng = (spec.seed ^ fnv1a64(family.name().as_bytes())) | 1;
    let mut stats: BTreeMap<MutationClass, ClassStats> = BTreeMap::new();
    let mut report = FamilyAdvReport {
        family,
        base_runs: 0,
        points: 0,
        audited_reads: 0,
        kill_range: (u64::MAX, 0),
        foreign_epoch,
        classes: Vec::new(),
        outcomes: Vec::new(),
    };

    for run in 0..base_runs {
        let rdir = dir.join(format!("{}-r{run}", family.name()));
        let result = run_base_point(
            exe,
            family,
            spec,
            &rdir,
            &script,
            lo + xorshift(&mut rng) % (hi - lo),
            &foreign_image,
            &foreign_anchor,
            &mut rng,
            &mut stats,
            &mut report,
        );
        match result {
            Ok(()) => {
                let _ = fs::remove_dir_all(&rdir);
            }
            Err(source) => {
                return Err(AdversaryError::Point {
                    family: family.name(),
                    run,
                    dir: rdir,
                    source: Box::new(source),
                })
            }
        }
        report.base_runs += 1;
    }
    let _ = fs::remove_dir_all(dir.join(format!("{}-foreign", family.name())));
    report.classes = MutationClass::all()
        .into_iter()
        .map(|c| (c, stats.get(&c).copied().unwrap_or_default()))
        .collect();
    Ok(report)
}

/// One base kill point: base + capture children, then every planned
/// mutation staged and evaluated.
#[allow(clippy::too_many_arguments)]
fn run_base_point(
    exe: &Path,
    family: DrillFamily,
    spec: &AdversarySpec,
    rdir: &Path,
    script: &[(bool, u64)],
    kill_after: u64,
    foreign_image: &Path,
    foreign_anchor: &Path,
    rng: &mut u64,
    stats: &mut BTreeMap<MutationClass, ClassStats>,
    report: &mut FamilyAdvReport,
) -> Result<(), AdversaryError> {
    let base = run_killed_child(exe, family, spec, &rdir.join("base"), kill_after)?;
    let capture = run_killed_child(
        exe,
        family,
        spec,
        &rdir.join("capture"),
        kill_after - CAPTURE_MARGIN_ACKS,
    )?;
    let (expected, inflight) = ack_expectations(&base.acked, script);
    let ctx = PointCtx {
        base: &base,
        capture: &capture,
        foreign_image,
        foreign_anchor,
    };
    for (mi, m) in plan_mutations(rng).into_iter().enumerate() {
        let mdir = rdir.join(format!("m{mi}-{}", m.label));
        let image = stage_mutation(&m, &ctx, &mdir)?;
        let verdict = match panic::catch_unwind(AssertUnwindSafe(|| {
            evaluate(family, &image, m.policy, &expected, inflight)
        })) {
            Ok(Ok(v)) => v,
            Ok(Err(EvalFailure::SilentStale { addr })) => {
                return Err(AdversaryError::SilentStale {
                    class: m.class.name(),
                    label: m.label,
                    addr,
                })
            }
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                return Err(AdversaryError::Panicked {
                    class: m.class.name(),
                    label: m.label,
                    what,
                });
            }
        };
        if !m.requirement.met(&verdict) {
            return Err(AdversaryError::MissedRequirement {
                class: m.class.name(),
                label: m.label,
                want: m.requirement.name(),
                got: format!("{} ({:?})", verdict.name(), verdict),
            });
        }
        let s = stats.entry(m.class).or_default();
        s.points += 1;
        match &verdict {
            Verdict::FullRecovery => s.full += 1,
            Verdict::Degraded { .. } => s.degraded += 1,
            Verdict::Refused { rollback, .. } => {
                s.refused += 1;
                s.rollback_refusals += u64::from(*rollback);
            }
        }
        report.points += 1;
        report.audited_reads += expected.len() as u64;
        report.kill_range.0 = report.kill_range.0.min(kill_after);
        report.kill_range.1 = report.kill_range.1.max(kill_after);
        report.outcomes.push(MutationOutcome {
            class: m.class,
            label: m.label,
            kill_after_acks: kill_after,
            requirement: m.requirement,
            verdict,
        });
    }
    Ok(())
}

/// The serve loop for the anchored child: recover, then play the script
/// appending fsynced ack records — identical to the drill's child except
/// that the image is opened under the freshness anchor.
fn serve<C: Supervised>(
    mut ctrl: C,
    hint: Option<RecoveryError>,
    ack: &Path,
    script: &[(bool, u64)],
) -> Result<(), DrillError> {
    let sup = Supervisor::new().with_lanes(1);
    let res = match hint {
        Some(ref e) => sup.repair_then_recover(&mut ctrl, e),
        None => sup.recover(&mut ctrl),
    };
    res.map_err(DrillError::Recovery)?;
    let mut log = AckWriter::create(ack).map_err(|source| DrillError::Io {
        op: "create ack log",
        path: ack.to_path_buf(),
        source,
    })?;
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .map_err(|err| DrillError::Serve {
                    op_index: i as u64,
                    err,
                })?;
            log.append(i as u64, addr)
                .map_err(|source| DrillError::Io {
                    op: "append ack record to",
                    path: ack.to_path_buf(),
                    source,
                })?;
        } else {
            ctrl.read(DataAddr::new(addr))
                .map_err(|err| DrillError::Serve {
                    op_index: i as u64,
                    err,
                })?;
        }
    }
    Ok(())
}

/// Child-process entry point; `args` is the tail of the command line
/// after `--child`: `family image ack script_len lines seed`. Unlike
/// the plain drill child, the image is opened under the freshness
/// anchor with the strict policy.
///
/// # Errors
///
/// Any [`DrillError`] from opening, recovering, or serving.
pub fn child_main(args: &[String]) -> Result<(), DrillError> {
    let bad = |what: &'static str| DrillError::BadChildArg { what };
    let family = args
        .first()
        .and_then(|s| DrillFamily::parse(s))
        .ok_or_else(|| bad("family"))?;
    let image = PathBuf::from(args.get(1).ok_or_else(|| bad("image path"))?);
    let ack = PathBuf::from(args.get(2).ok_or_else(|| bad("ack path"))?);
    let script_len: usize = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("script len"))?;
    let lines: u64 = args
        .get(4)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("lines"))?;
    let seed: u64 = args
        .get(5)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("seed"))?;
    let script = drill_script(script_len, lines, seed);
    let config = AnubisConfig::small_test();
    let backend = FileBackend::open_with_anchor(&image, config.key.0, AnchorPolicy::Strict)
        .map_err(DrillError::Nvm)?;
    match family {
        DrillFamily::BonsaiAgitPlus => {
            let (ctrl, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, &config, backend);
            serve(ctrl, hint, &ack, &script)
        }
        DrillFamily::SgxAsit => {
            let (ctrl, hint) = SgxController::reopen(SgxScheme::Asit, &config, backend);
            serve(ctrl, hint, &ack, &script)
        }
    }
}
