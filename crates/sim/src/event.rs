//! The deterministic discrete-event queue driving the banked channel
//! model in [`crate::timing`].
//!
//! Events are keyed by `(time_ns, seq)`: `time_ns` is the simulated
//! integer-nanosecond completion time, and `seq` is a monotonically
//! increasing insertion sequence number that breaks ties. Because the
//! tie-break is the insertion order — never a pointer, hash, or host
//! clock — two replays that push the same events in the same program
//! order pop them in the same total order, and a replay that pushes
//! events in a *different* order but with explicit `(time, seq)` keys
//! still pops them sorted by key. That property is what makes the
//! sharded/laned replays bit-identical (see `tests/latency_engine.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What completed at an event's firing time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Completion {
    /// A read access left its bank.
    Read,
    /// A write access left its bank (and frees its WPQ slot).
    Write,
}

/// One scheduled completion on the channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Simulated completion time (ns). First key of the heap order.
    pub at_ns: u64,
    /// Insertion sequence number. Second key: ties in `at_ns` pop in
    /// insertion order, so simultaneous completions are deterministic.
    pub seq: u64,
    /// Which bank finished the access.
    pub bank: usize,
    /// Read or write completion.
    pub kind: Completion,
}

/// A min-heap of [`Event`]s keyed `(at_ns, seq)`.
///
/// Wraps [`BinaryHeap`] (a max-heap) in [`Reverse`] and owns the `seq`
/// counter, so callers cannot accidentally construct two events with the
/// same key.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a completion at `at_ns`, assigning the next sequence
    /// number, and returns the event as stored.
    pub fn push(&mut self, at_ns: u64, bank: usize, kind: Completion) -> Event {
        let ev = Event {
            at_ns,
            seq: self.next_seq,
            bank,
            kind,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(ev));
        ev
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|Reverse(ev)| ev)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// Removes the earliest event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: u64) -> Option<Event> {
        if self.peek().is_some_and(|ev| ev.at_ns <= t) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of outstanding events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are outstanding.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_nvm::SplitMix64;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(50, 0, Completion::Write); // seq 0
        q.push(10, 1, Completion::Read); // seq 1
        q.push(50, 2, Completion::Read); // seq 2 — same time as seq 0
        q.push(30, 0, Completion::Write); // seq 3
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at_ns, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 1), (30, 3), (50, 0), (50, 2)]);
    }

    #[test]
    fn pop_until_respects_the_bound() {
        let mut q = EventQueue::new();
        q.push(100, 0, Completion::Read);
        q.push(200, 0, Completion::Write);
        assert!(q.pop_until(99).is_none());
        assert_eq!(q.pop_until(100).map(|e| e.at_ns), Some(100));
        assert!(q.pop_until(150).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn shuffled_insertion_orders_pop_identically() {
        // The determinism contract: the pop order is a pure function of
        // the (time, seq) keys, regardless of heap-internal layout. Build
        // the same event set under many insertion orders by reassigning
        // seq to match the *original* insertion index via repeated pushes
        // in permuted positions, and check every permutation pops the
        // same (time, bank, kind) sequence as the sorted reference.
        let times: Vec<u64> = (0..64u64).map(|i| (i * 37) % 16).collect();
        let reference = {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(
                    t,
                    i % 4,
                    if i % 2 == 0 {
                        Completion::Read
                    } else {
                        Completion::Write
                    },
                );
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        // Reference is sorted by (time, seq).
        for w in reference.windows(2) {
            assert!((w[0].at_ns, w[0].seq) < (w[1].at_ns, w[1].seq));
        }
        let mut rng = SplitMix64::new(0xE7E9);
        for _ in 0..8 {
            // Shuffle the *heap insertion* order while preserving each
            // event's key by pushing placeholders and sorting the drain.
            let mut order: Vec<usize> = (0..times.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut heap: std::collections::BinaryHeap<Reverse<Event>> =
                std::collections::BinaryHeap::new();
            for &i in &order {
                heap.push(Reverse(Event {
                    at_ns: times[i],
                    seq: i as u64,
                    bank: i % 4,
                    kind: if i % 2 == 0 {
                        Completion::Read
                    } else {
                        Completion::Write
                    },
                }));
            }
            let drained: Vec<Event> =
                std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e)).collect();
            assert_eq!(drained, reference, "insertion order must not matter");
        }
    }
}
