//! Fault-injection campaigns: sweep deterministic faults over a scripted
//! workload and verify the recovery contract at every injection point.
//!
//! The contract under test is the one the Anubis paper's recovery
//! algorithms promise (and the one `tests/crash_matrix.rs` checks at *op*
//! granularity): after any fault, [`anubis::MemoryController::recover`]
//! either restores every **acknowledged** write, or fails with a *typed*
//! detection error — it never silently serves wrong data. This module
//! pushes the crash point *inside* individual operations: a
//! [`anubis_nvm::FaultPlan`] fires on the k-th counted device-level write
//! since controller construction, and [`power_cut_sweep`] walks `k` across
//! every such write the workload performs.
//!
//! Verdict rules, per fault class:
//!
//! * **Power cut** — recovery *must* succeed and every acknowledged write
//!   must read back exactly. The address of the one in-flight (errored,
//!   unacknowledged) operation may hold its old value, its new value, or
//!   return a typed corruption error; anything else panics the campaign.
//! * **Torn write** — recovery may succeed (same obligations as power
//!   cut) or fail with a typed [`anubis::RecoveryError`]; a successful
//!   recovery may additionally surface typed corruption errors on
//!   individual reads. Silent wrong data panics the campaign.
//! * **Bit flip** — execution continues past the fault, so detection may
//!   happen on a live read (typed corruption error), be repaired
//!   transparently by SEC-DED, or surface after a later crash/recovery.
//!   Again: wrong data panics, typed errors count as detection.

use std::collections::HashMap;

use anubis::{DataAddr, MemoryController};
use anubis_nvm::{Block, FaultKind, FaultPlan};

use crate::engine::payload;

/// One step of a scripted workload: `(is_write, data-line address)`.
///
/// Write payloads are derived from the op's position in the script via
/// [`op_payload`], so re-running the same script is fully deterministic
/// and overwrites are visible (the same address carries different data at
/// different script positions).
pub type ScriptOp = (bool, u64);

/// Deterministic payload for the write at script position `op_index`
/// targeting `addr`. Distinct per (position, address) pair.
pub fn op_payload(op_index: u64, addr: u64) -> Block {
    payload(op_index * 1009 + addr)
}

/// How a single fault injection resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Recovery succeeded and every acknowledged write read back exactly.
    Recovered,
    /// The fault surfaced as a typed detection error — from a live read,
    /// from `recover()` itself, or from a post-recovery read.
    Detected,
    /// The armed fault never triggered (its index lies beyond the writes
    /// the script performs).
    NotTriggered,
}

/// Aggregate outcome of a fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// `scheme_name()` of the controller under test.
    pub scheme: String,
    /// Number of injections that actually fired.
    pub injection_points: u64,
    /// Injections after which recovery restored all acknowledged writes.
    pub recovered: u64,
    /// Injections that resolved as typed detection errors.
    pub detected: u64,
    /// Armed plans whose trigger index was never reached.
    pub not_triggered: u64,
}

impl CampaignReport {
    fn new(scheme: &str) -> Self {
        CampaignReport {
            scheme: scheme.to_string(),
            injection_points: 0,
            recovered: 0,
            detected: 0,
            not_triggered: 0,
        }
    }

    fn absorb(&mut self, verdict: FaultVerdict) {
        match verdict {
            FaultVerdict::Recovered => {
                self.injection_points += 1;
                self.recovered += 1;
            }
            FaultVerdict::Detected => {
                self.injection_points += 1;
                self.detected += 1;
            }
            FaultVerdict::NotTriggered => self.not_triggered += 1,
        }
    }
}

/// Dry-runs `script` on a fresh controller and returns the total number
/// of counted device-level persist writes it performs — the sweep range
/// for [`power_cut_sweep`].
///
/// # Panics
///
/// Panics if the fault-free run itself errors (that would be a plain
/// functional bug, not a fault-injection finding).
pub fn count_persist_writes<C, F>(make: &F, script: &[ScriptOp]) -> u64
where
    C: MemoryController,
    F: Fn() -> C,
{
    let mut ctrl = make();
    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            ctrl.write(DataAddr::new(addr), op_payload(i as u64, addr))
                .unwrap_or_else(|e| panic!("dry run: write op {i} failed: {e}"));
        } else {
            ctrl.read(DataAddr::new(addr))
                .unwrap_or_else(|e| panic!("dry run: read op {i} failed: {e}"));
        }
    }
    ctrl.domain().persist_writes()
}

/// Runs `script` on a fresh controller with `plan` armed and checks the
/// recovery contract for whatever the fault does.
///
/// # Panics
///
/// Panics — with the plan and op index in the message — on any contract
/// violation: wrong data served for an acknowledged write, an untyped /
/// unexpected error, or (for power cuts) a failed recovery.
pub fn run_with_fault<C, F>(make: &F, script: &[ScriptOp], plan: FaultPlan) -> FaultVerdict
where
    C: MemoryController,
    F: Fn() -> C,
{
    // Power cuts are the *recoverable* class: the two-stage commit must
    // come back clean. Torn writes and bit flips only owe us detection.
    let lenient = !matches!(plan.kind(), FaultKind::PowerCut);
    let label = format!("{plan:?}");

    let mut ctrl = make();
    ctrl.domain_mut().arm_fault(plan);

    let mut model: HashMap<u64, Block> = HashMap::new();
    let mut attempted: Option<(u64, Block)> = None;
    let mut power_lost = false;

    for (i, &(is_write, addr)) in script.iter().enumerate() {
        if is_write {
            let data = op_payload(i as u64, addr);
            match ctrl.write(DataAddr::new(addr), data) {
                Ok(()) => {
                    model.insert(addr, data);
                }
                Err(e) if e.is_power_loss() => {
                    attempted = Some((addr, data));
                    power_lost = true;
                    break;
                }
                Err(e) if lenient && e.is_detected_corruption() => {
                    return FaultVerdict::Detected;
                }
                Err(e) => panic!("[{label}] op {i}: unexpected write error: {e}"),
            }
        } else {
            match ctrl.read(DataAddr::new(addr)) {
                Ok(got) => {
                    if let Some(expect) = model.get(&addr) {
                        assert_eq!(
                            got, *expect,
                            "[{label}] op {i}: live read of acknowledged addr {addr} \
                             returned wrong data"
                        );
                    }
                }
                Err(e) if e.is_power_loss() => {
                    power_lost = true;
                    break;
                }
                Err(e) if lenient && e.is_detected_corruption() => {
                    return FaultVerdict::Detected;
                }
                Err(e) => panic!("[{label}] op {i}: unexpected read error: {e}"),
            }
        }
    }

    if !power_lost && ctrl.domain().fault_fired().is_none() {
        return FaultVerdict::NotTriggered;
    }

    // The machine died (power cut / torn write) or carries a latent flip:
    // crash it and run recovery against the damaged device image.
    ctrl.crash();
    match ctrl.recover() {
        Err(err) => {
            assert!(
                lenient,
                "[{label}] recovery after a pure power cut must succeed, got: {err}"
            );
            FaultVerdict::Detected
        }
        Ok(_) => {
            let in_flight = attempted.map(|(a, _)| a);
            let mut any_detected = false;
            for (&addr, expect) in &model {
                match ctrl.read(DataAddr::new(addr)) {
                    Ok(got) => {
                        if in_flight == Some(addr) {
                            let new = attempted.expect("in_flight implies attempted").1;
                            assert!(
                                got == *expect || got == new,
                                "[{label}] post-recovery read of in-flight addr {addr} \
                                 returned neither the old nor the new value"
                            );
                        } else {
                            assert_eq!(
                                got, *expect,
                                "[{label}] post-recovery read of acknowledged addr {addr} \
                                 returned wrong data"
                            );
                        }
                    }
                    // The in-flight op's address may surface a typed error
                    // under any fault class; other addresses only under the
                    // detection-only classes.
                    Err(e)
                        if e.is_detected_corruption() && (lenient || in_flight == Some(addr)) =>
                    {
                        any_detected = true;
                    }
                    Err(e) => panic!(
                        "[{label}] post-recovery read of addr {addr} failed unexpectedly: {e}"
                    ),
                }
            }
            if any_detected {
                FaultVerdict::Detected
            } else {
                FaultVerdict::Recovered
            }
        }
    }
}

/// Exhaustively (or with `stride > 1`, sparsely) cuts power after every
/// counted device-level write the script performs, verifying full
/// recovery of acknowledged writes at each point.
///
/// Returns the aggregated report; since power cuts must always recover,
/// `report.detected` is 0 on success and every exercised point counts in
/// `report.recovered`.
///
/// # Panics
///
/// Panics if `stride == 0`, or on any contract violation (see
/// [`run_with_fault`]).
pub fn power_cut_sweep<C, F>(make: F, script: &[ScriptOp], stride: u64) -> CampaignReport
where
    C: MemoryController,
    F: Fn() -> C,
{
    assert!(stride >= 1, "stride must be at least 1");
    let total = count_persist_writes(&make, script);
    let mut report = CampaignReport::new(make().scheme_name());
    let mut k = 0;
    while k < total {
        report.absorb(run_with_fault(&make, script, FaultPlan::power_cut_after(k)));
        k += stride;
    }
    report
}

/// Sweeps torn writes: for each injection index (stepped by `stride`) and
/// each tear width in `words`, the k-th device write lands torn and power
/// is lost. Every injection must resolve as recovered-clean or
/// typed-detected.
///
/// # Panics
///
/// Panics if `stride == 0`, or on any contract violation.
pub fn torn_write_sweep<C, F>(
    make: F,
    script: &[ScriptOp],
    stride: u64,
    words: &[usize],
) -> CampaignReport
where
    C: MemoryController,
    F: Fn() -> C,
{
    assert!(stride >= 1, "stride must be at least 1");
    let total = count_persist_writes(&make, script);
    let mut report = CampaignReport::new(make().scheme_name());
    let mut k = 0;
    while k < total {
        for &w in words {
            report.absorb(run_with_fault(
                &make,
                script,
                FaultPlan::torn_write_after(k, w),
            ));
        }
        k += stride;
    }
    report
}

/// Sweeps bit flips: the k-th device write (stepped by `stride`) lands
/// with `bits` inverted and execution continues. Single-bit flips on data
/// blocks should be repaired by SEC-DED (verdict `Recovered`); wider
/// damage and metadata hits must surface as typed detection errors.
///
/// # Panics
///
/// Panics if `stride == 0`, or on any contract violation.
pub fn bit_flip_sweep<C, F>(
    make: F,
    script: &[ScriptOp],
    stride: u64,
    bits: &[usize],
) -> CampaignReport
where
    C: MemoryController,
    F: Fn() -> C,
{
    assert!(stride >= 1, "stride must be at least 1");
    let total = count_persist_writes(&make, script);
    let mut report = CampaignReport::new(make().scheme_name());
    let mut k = 0;
    while k < total {
        report.absorb(run_with_fault(
            &make,
            script,
            FaultPlan::bit_flip_after(k, bits.to_vec()),
        ));
        k += stride;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};

    fn script(n: u64) -> Vec<ScriptOp> {
        (0..n).map(|i| (i % 3 != 2, (i * 37) % 300)).collect()
    }

    #[test]
    fn dry_run_counts_are_deterministic() {
        let make =
            || BonsaiController::new(BonsaiScheme::StrictPersist, &AnubisConfig::small_test());
        let s = script(12);
        let a = count_persist_writes(&make, &s);
        let b = count_persist_writes(&make, &s);
        assert_eq!(a, b);
        assert!(a > 12, "strict persistence must write more blocks than ops");
    }

    #[test]
    fn short_power_cut_sweep_recovers_bonsai() {
        let make = || BonsaiController::new(BonsaiScheme::AgitPlus, &AnubisConfig::small_test());
        let report = power_cut_sweep(make, &script(9), 3);
        assert!(report.injection_points > 0);
        assert_eq!(report.recovered, report.injection_points);
        assert_eq!(report.detected, 0);
    }

    #[test]
    fn short_power_cut_sweep_recovers_sgx() {
        let make = || SgxController::new(SgxScheme::Asit, &AnubisConfig::small_test());
        let report = power_cut_sweep(make, &script(9), 3);
        assert!(report.injection_points > 0);
        assert_eq!(report.recovered, report.injection_points);
        assert_eq!(report.detected, 0);
    }

    #[test]
    fn beyond_range_plan_reports_not_triggered() {
        let make = || BonsaiController::new(BonsaiScheme::AgitRead, &AnubisConfig::small_test());
        let s = script(6);
        let total = count_persist_writes(&make, &s);
        let verdict = run_with_fault(&make, &s, FaultPlan::power_cut_after(total + 10));
        assert_eq!(verdict, FaultVerdict::NotTriggered);
    }

    #[test]
    fn torn_write_resolves_recovered_or_detected() {
        let make = || BonsaiController::new(BonsaiScheme::AgitPlus, &AnubisConfig::small_test());
        let report = torn_write_sweep(make, &script(9), 5, &[3]);
        assert!(report.injection_points > 0);
        assert_eq!(report.recovered + report.detected, report.injection_points);
    }
}
