//! The TCP front-end: accept loop, per-connection threads, handshake
//! enforcement, and orderly shutdown.
//!
//! Every connection must open with [`Request::Hello`]; anything else is
//! answered with a typed rejection and the connection is closed. After a
//! successful handshake the connection serves one request per frame,
//! strictly in order. Connection-layer faults (bad magic, bad checksum,
//! truncation, slowloris stalls) are answered with
//! [`ServeError::BadFrame`] where the transport still permits, and the
//! connection is dropped — never a hang, never a panic.

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anubis_nvm::NvmError;
use anubis_telemetry::Telemetry;

use crate::config::{ConfigError, ServeConfig};
use crate::protocol::{
    read_frame, write_frame, FrameEvent, ProtoError, Request, Response, ServeError, PROTO_VERSION,
};
use crate::tenant::{Tenant, ThreadReg};

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeStartError {
    /// Bad configuration.
    Config(ConfigError),
    /// Could not bind the listen address or create the data directory.
    Io(std::io::Error),
    /// A tenant's device image failed to open.
    Tenant {
        /// The tenant whose image failed.
        tenant: String,
        /// The underlying device error.
        source: NvmError,
    },
}

impl std::fmt::Display for ServeStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeStartError::Config(e) => write!(f, "configuration error: {e}"),
            ServeStartError::Io(e) => write!(f, "server startup I/O error: {e}"),
            ServeStartError::Tenant { tenant, source } => {
                write!(f, "tenant {tenant:?} failed to open: {source}")
            }
        }
    }
}

impl std::error::Error for ServeStartError {}

impl From<ConfigError> for ServeStartError {
    fn from(e: ConfigError) -> Self {
        ServeStartError::Config(e)
    }
}

impl From<std::io::Error> for ServeStartError {
    fn from(e: std::io::Error) -> Self {
        ServeStartError::Io(e)
    }
}

/// Polling tick used for reads and the accept loop; budgets (idle,
/// stall) are enforced on top of this granularity.
const TICK: Duration = Duration::from_millis(20);

struct Shared {
    cfg: ServeConfig,
    tenants: BTreeMap<String, Arc<Tenant>>,
    stop: AtomicBool,
    sessions: AtomicU64,
    recovery_threads: ThreadReg,
    tel: Telemetry,
}

/// A running `anubis-serve` instance. Dropping it without calling
/// [`Server::shutdown`] aborts connections without the orderly flush.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Opens every tenant's persistence domain (entering the boot
    /// recovery ladder for each), binds the listen address, and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// [`ServeStartError`] on bad config, bind failure, or an unopenable
    /// tenant image.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeStartError> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let tel = Telemetry::global();
        let recovery_threads: ThreadReg = Arc::new(Mutex::new(Vec::new()));
        let mut tenants = BTreeMap::new();
        for spec in &cfg.tenants {
            let tenant = Tenant::open(spec, &cfg, tel.clone(), &recovery_threads).map_err(|e| {
                ServeStartError::Tenant {
                    tenant: spec.name.clone(),
                    source: e,
                }
            })?;
            tenants.insert(spec.name.clone(), tenant);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            tenants,
            stop: AtomicBool::new(false),
            sessions: AtomicU64::new(1),
            recovery_threads,
            tel,
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &accept_conns);
        });
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound listen address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The tenant registry (for in-process tests and health checks).
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.shared.tenants.get(name).cloned()
    }

    /// Stops accepting, drains connections, joins recovery ladders, and
    /// flushes every tenant that is in full service.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let conns = match self.conn_threads.lock() {
            Ok(mut v) => std::mem::take(&mut *v),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        for h in conns {
            let _ = h.join();
        }
        let ladders = match self.shared.recovery_threads.lock() {
            Ok(mut v) => std::mem::take(&mut *v),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        for h in ladders {
            let _ = h.join();
        }
        for tenant in self.shared.tenants.values() {
            tenant.orderly_flush();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.tel.incr("serve_connections_total", "accepted", 1);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    serve_connection(stream, &conn_shared);
                });
                match conns.lock() {
                    Ok(mut v) => v.push(handle),
                    Err(p) => p.into_inner().push(handle),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(TICK);
            }
            Err(_) => std::thread::sleep(TICK),
        }
    }
}

/// Best-effort response write; a peer that vanished mid-response is not
/// an error worth keeping the connection for.
fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let cfg = &shared.cfg;
    let idle = Duration::from_millis(u64::from(cfg.idle_ms));
    let stall = Duration::from_millis(u64::from(cfg.stall_ms));
    let stop = || shared.stop.load(Ordering::SeqCst);

    // Handshake: the first frame must be a valid, authenticated Hello.
    let tenant = match read_frame(&mut stream, cfg.max_frame_bytes, idle, stall, &stop) {
        Ok(FrameEvent::Closed) => return,
        Ok(FrameEvent::Payload(payload)) => match Request::decode(&payload) {
            Ok(Request::Hello {
                version,
                tenant,
                token,
            }) => {
                if version != PROTO_VERSION {
                    send(
                        &mut stream,
                        &Response::Err(ServeError::BadRequest {
                            detail: format!(
                                "protocol version {version} unsupported (want {PROTO_VERSION})"
                            ),
                        }),
                    );
                    return;
                }
                match shared.tenants.get(&tenant) {
                    Some(t) if t.authenticate(token) => Arc::clone(t),
                    _ => {
                        shared.tel.incr("serve_rejects_total", "auth_failed", 1);
                        send(&mut stream, &Response::Err(ServeError::AuthFailed));
                        return;
                    }
                }
            }
            Ok(_) => {
                send(
                    &mut stream,
                    &Response::Err(ServeError::BadRequest {
                        detail: "first frame must be Hello".to_string(),
                    }),
                );
                return;
            }
            Err(e) => {
                reject_frame(&mut stream, shared, &e);
                return;
            }
        },
        Err(e) => {
            reject_frame(&mut stream, shared, &e);
            return;
        }
    };

    let session = shared.sessions.fetch_add(1, Ordering::Relaxed);
    if !send(
        &mut stream,
        &Response::HelloOk {
            session,
            mode: tenant.mode(),
        },
    ) {
        return;
    }

    // Steady state: one request per frame, answered in order.
    loop {
        match read_frame(&mut stream, cfg.max_frame_bytes, idle, stall, &stop) {
            Ok(FrameEvent::Closed) => return,
            Ok(FrameEvent::Payload(payload)) => {
                let received = Instant::now();
                let resp = match Request::decode(&payload) {
                    Ok(req) => tenant.handle(&req, received, cfg, &shared.recovery_threads),
                    Err(e) => {
                        reject_frame(&mut stream, shared, &e);
                        return;
                    }
                };
                if !send(&mut stream, &resp) {
                    return;
                }
            }
            Err(e) => {
                reject_frame(&mut stream, shared, &e);
                return;
            }
        }
    }
}

/// Answers a connection-layer fault with a typed `BadFrame` (best
/// effort — the transport may already be gone) and counts it.
fn reject_frame(stream: &mut TcpStream, shared: &Arc<Shared>, e: &ProtoError) {
    shared
        .tel
        .incr("serve_frame_faults_total", frame_fault_label(e), 1);
    send(
        stream,
        &Response::Err(ServeError::BadFrame {
            detail: e.to_string(),
        }),
    );
}

fn frame_fault_label(e: &ProtoError) -> &'static str {
    match e {
        ProtoError::BadMagic(_) => "bad_magic",
        ProtoError::Oversize { .. } => "oversize",
        ProtoError::BadChecksum { .. } => "bad_checksum",
        ProtoError::Truncated => "truncated",
        ProtoError::TimedOutMidFrame => "stalled",
        ProtoError::UnknownOpcode(_) => "unknown_opcode",
        ProtoError::Malformed(_) => "malformed",
        ProtoError::Io(_) => "io",
    }
}
