//! Per-tenant serving state: a persistence domain (controller over a
//! [`FileBackend`] image), the serving-mode state machine, admission
//! control, the circuit breaker, and the degraded-mode read path.
//!
//! # Serving-mode state machine
//!
//! ```text
//!            boot (reopen + ladder)        integrity fault
//!   ReadOnly ◄──────────────────── Full ◄──────────────── Full
//!      │ ladder done: Outcome         │                      │
//!      ▼                              ▼                      ▼
//!    Full                      (writes rejected        ReadOnly + ladder
//!                               as Degraded while       in background
//!                               ReadOnly; reads served
//!                               from last verified state)
//! ```
//!
//! `Unavailable` is the terminal rung: the ladder itself failed
//! structurally. An explicit `Recover` request can re-enter the ladder.
//!
//! The recovery ladder runs on a **background thread that owns the
//! controller** (taken out of the tenant), so reads keep flowing from
//! the last verified state while rung 1–4 of the supervisor work the
//! domain. Re-entry into full service happens only on a structured
//! [`anubis::RecoveryOutcome`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemError, MemoryController,
    RecoveryError, SgxController, SgxScheme, Supervisor,
};
use anubis_nvm::{Block, FileBackend, NvmError};
use anubis_telemetry::Telemetry;

use crate::admission::{InflightGate, TokenBucket};
use crate::breaker::Breaker;
use crate::config::{ServeConfig, TenantFamily, TenantSpec};
use crate::protocol::{Inject, Request, Response, ServeError, ServeMode, TenantStats};

/// Registry of in-flight recovery threads, joined at server shutdown.
pub(crate) type ThreadReg = Arc<Mutex<Vec<JoinHandle<()>>>>;

/// Either controller family behind one dispatch surface.
pub(crate) enum Ctrl {
    /// Bonsai-style tree under AGIT+.
    Bonsai(Box<BonsaiController<FileBackend>>),
    /// SGX-style tree under ASIT.
    Sgx(Box<SgxController<FileBackend>>),
}

impl Ctrl {
    fn read(&mut self, addr: DataAddr) -> Result<Block, MemError> {
        match self {
            Ctrl::Bonsai(c) => c.read(addr),
            Ctrl::Sgx(c) => c.read(addr),
        }
    }

    fn write(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError> {
        match self {
            Ctrl::Bonsai(c) => c.write(addr, data),
            Ctrl::Sgx(c) => c.write(addr, data),
        }
    }

    fn write_batch(&mut self, items: &[(DataAddr, Block)]) -> Result<(), MemError> {
        match self {
            Ctrl::Bonsai(c) => c.write_batch(items),
            Ctrl::Sgx(c) => c.write_batch(items),
        }
    }

    fn shutdown_flush(&mut self) -> Result<(), MemError> {
        match self {
            Ctrl::Bonsai(c) => c.shutdown_flush(),
            Ctrl::Sgx(c) => c.shutdown_flush(),
        }
    }

    fn crash(&mut self) {
        match self {
            Ctrl::Bonsai(c) => c.crash(),
            Ctrl::Sgx(c) => c.crash(),
        }
    }

    fn supervised_recover(
        &mut self,
        sup: &Supervisor,
        hint: Option<&RecoveryError>,
    ) -> Result<anubis::SupervisedRecovery, RecoveryError> {
        match (self, hint) {
            (Ctrl::Bonsai(c), Some(e)) => sup.repair_then_recover(c.as_mut(), e),
            (Ctrl::Bonsai(c), None) => sup.recover(c.as_mut()),
            (Ctrl::Sgx(c), Some(e)) => sup.repair_then_recover(c.as_mut(), e),
            (Ctrl::Sgx(c), None) => sup.recover(c.as_mut()),
        }
    }

    fn quarantined_blocks(&self) -> u64 {
        match self {
            Ctrl::Bonsai(c) => c.domain().device().quarantine_table().len() as u64,
            Ctrl::Sgx(c) => c.domain().device().quarantine_table().len() as u64,
        }
    }

    /// Flips a *pair* of bits in the same word of the stored ciphertext:
    /// a single flip is silently repaired by the device ECC model, so a
    /// detectable corruption needs two bits in one word.
    fn tamper_data_line(&mut self, addr: u64, bit: usize) -> Result<(), ServeError> {
        let line = DataAddr::new(addr);
        match self {
            Ctrl::Bonsai(c) => {
                let dev = c.layout().data_addr(line);
                c.domain_mut().device_mut().tamper_flip_bit(dev, bit);
                c.domain_mut().device_mut().tamper_flip_bit(dev, bit ^ 1);
            }
            Ctrl::Sgx(c) => {
                let dev = c.layout().data_addr(line);
                c.domain_mut().device_mut().tamper_flip_bit(dev, bit);
                c.domain_mut().device_mut().tamper_flip_bit(dev, bit ^ 1);
            }
        }
        Ok(())
    }

    fn publish_telemetry(&self) {
        match self {
            Ctrl::Bonsai(c) => MemoryController::publish_telemetry(c.as_ref()),
            Ctrl::Sgx(c) => MemoryController::publish_telemetry(c.as_ref()),
        }
    }
}

/// How a controller-op failure is handled.
enum FailClass {
    /// Worth retrying with backoff (device-level hiccup or an injected
    /// synthetic fault).
    Transient,
    /// Detected corruption: the tenant must enter the recovery ladder.
    Corruption,
    /// The request itself is invalid (e.g. address out of range).
    BadRequest,
}

fn classify(e: &MemError) -> FailClass {
    match e {
        MemError::OutOfRange { .. } => FailClass::BadRequest,
        MemError::Crypto(_) | MemError::Integrity { .. } => FailClass::Corruption,
        // Power-related device errors mean the domain lost state and
        // must run the ladder; other device errors get a retry.
        MemError::Nvm(NvmError::PowerLost) | MemError::Nvm(NvmError::PoweredOff) => {
            FailClass::Corruption
        }
        _ => FailClass::Transient,
    }
}

/// Mutable tenant state, all behind one mutex. The controller leaves
/// (`ctrl: None`) while a recovery ladder owns it.
struct Core {
    ctrl: Option<Ctrl>,
    mode: ServeMode,
    /// Last verified payload per data line — the degraded-mode read
    /// source while the ladder owns the controller.
    verified: BTreeMap<u64, Block>,
    breaker: Breaker,
    bucket: TokenBucket,
    /// Injected synthetic transient failures remaining (chaos hook).
    force_transient: u32,
    /// Injected per-request stall in ms (chaos hook).
    stall_ms: u32,
    /// Injected delay before the next ladder starts (chaos hook).
    recovery_stall_ms: u32,
    unavailable_reason: String,
    stats: Counters,
}

#[derive(Default)]
struct Counters {
    reads_total: u64,
    writes_acked_total: u64,
    rejected_overload: u64,
    rejected_circuit: u64,
    rejected_deadline: u64,
    degraded_writes: u64,
    degraded_reads: u64,
    recoveries: u64,
    retries_total: u64,
    last_outcome: String,
}

/// One tenant: identity, admission gate, and the locked [`Core`].
pub struct Tenant {
    name: String,
    token_hash: u64,
    family: TenantFamily,
    gate: InflightGate,
    core: Mutex<Core>,
    tel: Telemetry,
}

fn lock_core<'a>(m: &'a Mutex<Core>) -> MutexGuard<'a, Core> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn block_from_bytes(b: &[u8; 64]) -> Block {
    let mut blk = Block::filled(0);
    blk.as_bytes_mut().copy_from_slice(b);
    blk
}

fn injected_fault() -> MemError {
    MemError::Nvm(NvmError::Backend {
        reason: "injected transient fault".to_string(),
    })
}

impl Tenant {
    /// Opens (or creates) the tenant's device image under the config's
    /// data dir and immediately enters the boot recovery ladder: the
    /// tenant starts in [`ServeMode::ReadOnly`] and transitions to full
    /// service only on a structured outcome.
    ///
    /// # Errors
    ///
    /// Propagates image-open failures ([`NvmError`]).
    pub(crate) fn open(
        spec: &TenantSpec,
        cfg: &ServeConfig,
        tel: Telemetry,
        threads: &ThreadReg,
    ) -> Result<Arc<Tenant>, NvmError> {
        let image = cfg.image_path(&spec.name);
        // Every tenant image is opened under its freshness anchor: a
        // rolled-back or unverifiable image surfaces a refusal hint that
        // the boot ladder turns into `ServeMode::Unavailable` — stale
        // state is never silently served.
        let policy = if cfg.anchor_override {
            anubis_nvm::AnchorPolicy::Override
        } else {
            anubis_nvm::AnchorPolicy::Strict
        };
        let mem = &cfg.mem_config;
        let backend = FileBackend::open_with_anchor(&image, mem.key.0, policy)?;
        let (ctrl, hint) = open_family(spec.family, mem, backend);
        let tenant = Arc::new(Tenant {
            name: spec.name.clone(),
            token_hash: spec.token_hash,
            family: spec.family,
            gate: InflightGate::new(cfg.max_inflight),
            core: Mutex::new(Core {
                ctrl: Some(ctrl),
                mode: ServeMode::ReadOnly,
                verified: BTreeMap::new(),
                breaker: Breaker::new(
                    cfg.breaker_threshold,
                    Duration::from_millis(u64::from(cfg.breaker_cooldown_ms)),
                ),
                bucket: TokenBucket::new(cfg.ops_per_sec, cfg.burst),
                force_transient: 0,
                stall_ms: 0,
                recovery_stall_ms: 0,
                unavailable_reason: String::new(),
                stats: Counters::default(),
            }),
            tel,
        });
        {
            let mut core = lock_core(&tenant.core);
            // Boot ladder: reopen restored registers; recovery restores
            // verified state (with the corrupt-image hint feeding rung 3).
            tenant.spawn_recovery(&mut core, hint, false, threads);
        }
        Ok(tenant)
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Controller family backing the tenant.
    pub fn family(&self) -> TenantFamily {
        self.family
    }

    /// Validates a handshake token hash.
    pub(crate) fn authenticate(&self, token: u64) -> bool {
        token == self.token_hash
    }

    /// Current serving mode (for handshakes and health checks).
    pub fn mode(&self) -> ServeMode {
        lock_core(&self.core).mode
    }

    fn set_mode(core: &mut Core, tel: &Telemetry, tenant: &str, mode: ServeMode) {
        core.mode = mode;
        tel.gauge_set("serve_mode", tenant, f64::from(mode.code()));
    }

    /// Takes the controller out of the core and runs the supervisor
    /// ladder on a background thread; the tenant serves reads from the
    /// last verified state meanwhile. `crash_first` distinguishes the
    /// in-process fault path (volatile state must be dropped) from the
    /// boot path (the process restart already dropped it).
    fn spawn_recovery(
        self: &Arc<Self>,
        core: &mut Core,
        hint: Option<RecoveryError>,
        crash_first: bool,
        threads: &ThreadReg,
    ) {
        let Some(mut ctrl) = core.ctrl.take() else {
            return; // A ladder is already running.
        };
        Self::set_mode(core, &self.tel, &self.name, ServeMode::ReadOnly);
        let stall = Duration::from_millis(u64::from(core.recovery_stall_ms));
        core.recovery_stall_ms = 0;
        let tenant = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
            if crash_first {
                ctrl.crash();
            }
            let sup = Supervisor::new();
            let result = ctrl.supervised_recover(&sup, hint.as_ref());
            ctrl.publish_telemetry();
            let mut core = lock_core(&tenant.core);
            core.ctrl = Some(ctrl);
            core.stats.recoveries += 1;
            match result {
                Ok(out) => {
                    core.stats.last_outcome = out.outcome.to_string();
                    core.breaker.record_ok();
                    tenant.tel.incr("serve_recoveries_total", &tenant.name, 1);
                    Tenant::set_mode(&mut core, &tenant.tel, &tenant.name, ServeMode::Full);
                }
                Err(e) => {
                    core.stats.last_outcome = format!("failed: {e}");
                    core.unavailable_reason = e.to_string();
                    core.breaker.record_fault(Instant::now());
                    tenant
                        .tel
                        .incr("serve_recovery_failures_total", &tenant.name, 1);
                    Tenant::set_mode(&mut core, &tenant.tel, &tenant.name, ServeMode::Unavailable);
                }
            }
        });
        match threads.lock() {
            Ok(mut v) => v.push(handle),
            Err(poisoned) => poisoned.into_inner().push(handle),
        }
    }

    /// Serves one already-authenticated request.
    pub(crate) fn handle(
        self: &Arc<Self>,
        req: &Request,
        received: Instant,
        cfg: &ServeConfig,
        threads: &ThreadReg,
    ) -> Response {
        self.tel.incr("serve_requests_total", &self.name, 1);
        let resp = self.dispatch(req, received, cfg, threads);
        if let Response::Err(e) = &resp {
            self.tel.incr("serve_rejects_total", e.kind(), 1);
        }
        resp
    }

    fn dispatch(
        self: &Arc<Self>,
        req: &Request,
        received: Instant,
        cfg: &ServeConfig,
        threads: &ThreadReg,
    ) -> Response {
        match req {
            Request::Read { addr, deadline_ms } => {
                self.op_read(*addr, *deadline_ms, received, cfg, threads)
            }
            Request::Write {
                addr,
                deadline_ms,
                data,
            } => {
                let items = [(DataAddr::new(*addr), block_from_bytes(data))];
                match self.op_write(&items, *deadline_ms, received, cfg, threads) {
                    Ok(_) => Response::WriteOk,
                    Err(e) => Response::Err(e),
                }
            }
            Request::WriteBatch { deadline_ms, items } => {
                let converted: Vec<(DataAddr, Block)> = items
                    .iter()
                    .map(|(a, d)| (DataAddr::new(*a), block_from_bytes(d)))
                    .collect();
                match self.op_write(&converted, *deadline_ms, received, cfg, threads) {
                    Ok(n) => Response::BatchOk { written: n },
                    Err(e) => Response::Err(e),
                }
            }
            Request::Flush => self.op_flush(),
            Request::Recover => self.op_recover(threads),
            Request::Stats => Response::StatsOk(self.stats_snapshot()),
            Request::Inject(inj) => self.op_inject(inj, cfg),
            Request::Hello { .. } => Response::Err(ServeError::BadRequest {
                detail: "duplicate handshake".to_string(),
            }),
        }
    }

    /// Common admission steps: in-flight gate (done by caller), ops/s
    /// bucket, circuit breaker, deadline. Returns the locked core.
    fn admit<'a>(
        &'a self,
        deadline: Duration,
        received: Instant,
    ) -> Result<MutexGuard<'a, Core>, ServeError> {
        let mut core = lock_core(&self.core);
        let now = Instant::now();
        if !core.bucket.try_take(now) {
            core.stats.rejected_overload += 1;
            let retry_after_ms = core.bucket.retry_after_ms();
            return Err(ServeError::Overloaded { retry_after_ms });
        }
        if let Err(retry_after_ms) = core.breaker.check(now) {
            core.stats.rejected_circuit += 1;
            return Err(ServeError::CircuitOpen { retry_after_ms });
        }
        // Injected stall: simulates a slow domain while holding the
        // tenant lock, so queued requests see real deadline pressure.
        if core.stall_ms > 0 {
            let ms = core.stall_ms;
            std::thread::sleep(Duration::from_millis(u64::from(ms)));
        }
        if received.elapsed() >= deadline {
            core.stats.rejected_deadline += 1;
            return Err(ServeError::DeadlineExceeded {
                budget_ms: deadline.as_millis().min(u128::from(u32::MAX)) as u32,
            });
        }
        Ok(core)
    }

    fn op_read(
        self: &Arc<Self>,
        addr: u64,
        deadline_ms: u32,
        received: Instant,
        cfg: &ServeConfig,
        threads: &ThreadReg,
    ) -> Response {
        let Some(_permit) = self.gate.acquire() else {
            let mut core = lock_core(&self.core);
            core.stats.rejected_overload += 1;
            return Response::Err(ServeError::Overloaded { retry_after_ms: 1 });
        };
        let deadline = cfg.effective_deadline(deadline_ms);
        let mut core = match self.admit(deadline, received) {
            Ok(c) => c,
            Err(e) => return Response::Err(e),
        };
        match core.mode {
            ServeMode::Unavailable => {
                return Response::Err(ServeError::Unavailable {
                    detail: core.unavailable_reason.clone(),
                })
            }
            ServeMode::ReadOnly => {
                // Degraded path: serve the last verified payload.
                let hit = core.verified.get(&addr).copied();
                return match hit {
                    Some(b) => {
                        core.stats.reads_total += 1;
                        core.stats.degraded_reads += 1;
                        Response::ReadOk {
                            data: *b.as_bytes(),
                            mode: ServeMode::ReadOnly,
                        }
                    }
                    None => Response::Err(ServeError::Degraded {
                        mode: ServeMode::ReadOnly,
                    }),
                };
            }
            ServeMode::Full => {}
        }
        let core = &mut *core;
        let mut attempt = 0u32;
        loop {
            let result = if core.force_transient > 0 {
                core.force_transient -= 1;
                Err(injected_fault())
            } else {
                match core.ctrl.as_mut() {
                    Some(ctrl) => ctrl.read(DataAddr::new(addr)),
                    None => {
                        return Response::Err(ServeError::Degraded {
                            mode: ServeMode::ReadOnly,
                        })
                    }
                }
            };
            match result {
                Ok(block) => {
                    core.verified.insert(addr, block);
                    core.stats.reads_total += 1;
                    core.breaker.record_ok();
                    return Response::ReadOk {
                        data: *block.as_bytes(),
                        mode: ServeMode::Full,
                    };
                }
                Err(e) => match classify(&e) {
                    FailClass::BadRequest => {
                        return Response::Err(ServeError::BadRequest {
                            detail: e.to_string(),
                        })
                    }
                    FailClass::Transient => {
                        match self.backoff_or_fail(core, &mut attempt, deadline, received, cfg, &e)
                        {
                            Ok(()) => continue,
                            Err(err) => return Response::Err(err),
                        }
                    }
                    FailClass::Corruption => {
                        return self.fault_to_recovery(core, threads, &e, addr);
                    }
                },
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn backoff_or_fail(
        &self,
        core: &mut Core,
        attempt: &mut u32,
        deadline: Duration,
        received: Instant,
        cfg: &ServeConfig,
        e: &MemError,
    ) -> Result<(), ServeError> {
        if *attempt >= cfg.retry_budget {
            core.breaker.record_fault(Instant::now());
            return Err(ServeError::Internal {
                detail: format!("retry budget exhausted: {e}"),
            });
        }
        let backoff = Duration::from_millis(u64::from(cfg.retry_backoff_ms) << *attempt);
        *attempt += 1;
        core.stats.retries_total += 1;
        self.tel.incr("serve_retries_total", &self.name, 1);
        if received.elapsed() + backoff >= deadline {
            core.stats.rejected_deadline += 1;
            return Err(ServeError::DeadlineExceeded {
                budget_ms: deadline.as_millis().min(u128::from(u32::MAX)) as u32,
            });
        }
        std::thread::sleep(backoff);
        Ok(())
    }

    /// An op hit detected corruption: count the fault, enter the ladder,
    /// answer with the typed integrity error (the *first* caller learns
    /// what happened; subsequent callers see `Degraded`).
    fn fault_to_recovery(
        self: &Arc<Self>,
        core: &mut Core,
        threads: &ThreadReg,
        e: &MemError,
        _addr: u64,
    ) -> Response {
        core.breaker.record_fault(Instant::now());
        self.tel.incr("serve_integrity_faults_total", &self.name, 1);
        self.spawn_recovery(core, None, true, threads);
        Response::Err(ServeError::Integrity {
            detail: e.to_string(),
        })
    }

    fn op_write(
        self: &Arc<Self>,
        items: &[(DataAddr, Block)],
        deadline_ms: u32,
        received: Instant,
        cfg: &ServeConfig,
        threads: &ThreadReg,
    ) -> Result<u32, ServeError> {
        let Some(_permit) = self.gate.acquire() else {
            let mut core = lock_core(&self.core);
            core.stats.rejected_overload += 1;
            return Err(ServeError::Overloaded { retry_after_ms: 1 });
        };
        let deadline = cfg.effective_deadline(deadline_ms);
        let mut core = self.admit(deadline, received)?;
        match core.mode {
            ServeMode::Unavailable => {
                return Err(ServeError::Unavailable {
                    detail: core.unavailable_reason.clone(),
                })
            }
            ServeMode::ReadOnly => {
                core.stats.degraded_writes += 1;
                self.tel.incr("serve_degraded_writes_total", &self.name, 1);
                return Err(ServeError::Degraded {
                    mode: ServeMode::ReadOnly,
                });
            }
            ServeMode::Full => {}
        }
        let core = &mut *core;
        let mut attempt = 0u32;
        loop {
            let result = if core.force_transient > 0 {
                core.force_transient -= 1;
                Err(injected_fault())
            } else {
                match core.ctrl.as_mut() {
                    Some(ctrl) if items.len() == 1 => ctrl.write(items[0].0, items[0].1),
                    Some(ctrl) => ctrl.write_batch(items),
                    None => {
                        return Err(ServeError::Degraded {
                            mode: ServeMode::ReadOnly,
                        })
                    }
                }
            };
            match result {
                Ok(()) => {
                    for (a, b) in items {
                        core.verified.insert(a.index(), *b);
                    }
                    core.stats.writes_acked_total += items.len() as u64;
                    core.breaker.record_ok();
                    self.tel
                        .incr("serve_writes_acked_total", &self.name, items.len() as u64);
                    return Ok(items.len() as u32);
                }
                Err(e) => match classify(&e) {
                    FailClass::BadRequest => {
                        return Err(ServeError::BadRequest {
                            detail: e.to_string(),
                        })
                    }
                    FailClass::Transient => {
                        self.backoff_or_fail(core, &mut attempt, deadline, received, cfg, &e)?
                    }
                    FailClass::Corruption => {
                        core.breaker.record_fault(Instant::now());
                        self.tel.incr("serve_integrity_faults_total", &self.name, 1);
                        self.spawn_recovery(core, None, true, threads);
                        return Err(ServeError::Integrity {
                            detail: e.to_string(),
                        });
                    }
                },
            }
        }
    }

    fn op_flush(self: &Arc<Self>) -> Response {
        let mut core = lock_core(&self.core);
        match core.mode {
            ServeMode::Full => {}
            mode => return Response::Err(ServeError::Degraded { mode }),
        }
        match core.ctrl.as_mut() {
            Some(ctrl) => match ctrl.shutdown_flush() {
                Ok(()) => Response::FlushOk,
                Err(e) => Response::Err(ServeError::Internal {
                    detail: e.to_string(),
                }),
            },
            None => Response::Err(ServeError::Degraded {
                mode: ServeMode::ReadOnly,
            }),
        }
    }

    fn op_recover(self: &Arc<Self>, threads: &ThreadReg) -> Response {
        let mut core = lock_core(&self.core);
        if core.ctrl.is_none() {
            return Response::RecoverOk {
                outcome: "already recovering".to_string(),
            };
        }
        self.spawn_recovery(&mut core, None, true, threads);
        Response::RecoverOk {
            outcome: "started".to_string(),
        }
    }

    fn op_inject(self: &Arc<Self>, inj: &Inject, cfg: &ServeConfig) -> Response {
        if !cfg.chaos {
            return Response::Err(ServeError::BadRequest {
                detail: "chaos injection disabled (set ANUBIS_SERVE_CHAOS=1)".to_string(),
            });
        }
        let mut core = lock_core(&self.core);
        match inj {
            Inject::CorruptLine { addr, bit } => match core.ctrl.as_mut() {
                Some(ctrl) => match ctrl.tamper_data_line(*addr, *bit as usize) {
                    Ok(()) => Response::InjectOk,
                    Err(e) => Response::Err(e),
                },
                None => Response::Err(ServeError::Degraded {
                    mode: ServeMode::ReadOnly,
                }),
            },
            Inject::TransientFaults { count } => {
                core.force_transient = *count;
                Response::InjectOk
            }
            Inject::Stall { ms } => {
                core.stall_ms = *ms;
                Response::InjectOk
            }
            Inject::RecoveryStall { ms } => {
                core.recovery_stall_ms = *ms;
                Response::InjectOk
            }
        }
    }

    /// Orderly-shutdown hook: drains dirty metadata when the tenant is
    /// in full service (a recovering or failed tenant is left as-is for
    /// the next boot ladder).
    pub(crate) fn orderly_flush(&self) {
        let mut core = lock_core(&self.core);
        if core.mode == ServeMode::Full {
            if let Some(ctrl) = core.ctrl.as_mut() {
                let _ = ctrl.shutdown_flush();
            }
        }
    }

    fn stats_snapshot(&self) -> TenantStats {
        let core = lock_core(&self.core);
        TenantStats {
            mode: core.mode.code(),
            inflight: u64::from(self.gate.in_flight()),
            reads_total: core.stats.reads_total,
            writes_acked_total: core.stats.writes_acked_total,
            rejected_overload: core.stats.rejected_overload,
            rejected_circuit: core.stats.rejected_circuit,
            rejected_deadline: core.stats.rejected_deadline,
            degraded_writes: core.stats.degraded_writes,
            degraded_reads: core.stats.degraded_reads,
            recoveries: core.stats.recoveries,
            retries_total: core.stats.retries_total,
            breaker_trips: core.breaker_trips(),
            quarantined_blocks: core.ctrl.as_ref().map_or(0, |c| c.quarantined_blocks()),
            last_outcome: core.stats.last_outcome.clone(),
        }
    }
}

impl Core {
    fn breaker_trips(&self) -> u64 {
        self.breaker.trips()
    }
}

fn open_family(
    family: TenantFamily,
    mem: &AnubisConfig,
    backend: FileBackend,
) -> (Ctrl, Option<RecoveryError>) {
    match family {
        TenantFamily::BonsaiAgitPlus => {
            let (c, hint) = BonsaiController::reopen(BonsaiScheme::AgitPlus, mem, backend);
            (Ctrl::Bonsai(Box::new(c)), hint)
        }
        TenantFamily::SgxAsit => {
            let (c, hint) = SgxController::reopen(SgxScheme::Asit, mem, backend);
            (Ctrl::Sgx(Box::new(c)), hint)
        }
    }
}
