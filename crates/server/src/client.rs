//! A blocking client for the `anubis-serve` protocol: handshake, typed
//! request/response round-trips, and direct stream access for fault
//! injection by the chaos harness.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, token_hash, write_frame, FrameEvent, Inject, ProtoError, Request, Response,
    ServeError, ServeMode, TenantStats, PROTO_VERSION,
};

/// Client-side failure: either the transport/protocol broke, or the
/// server answered with a typed rejection.
#[derive(Debug)]
pub enum ClientError {
    /// Frame/codec/transport failure.
    Proto(ProtoError),
    /// The server said no (typed).
    Server(ServeError),
    /// The server closed the connection (or went silent past the idle
    /// budget) where a response was expected.
    Disconnected,
    /// The server answered with a response of the wrong type.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server rejection: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::UnexpectedResponse => write!(f, "response type mismatch"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// A connected, authenticated session with one tenant.
pub struct ServeClient {
    stream: TcpStream,
    max_frame: u32,
    idle: Duration,
    stall: Duration,
    session: u64,
    mode_at_hello: ServeMode,
}

const CLIENT_TICK: Duration = Duration::from_millis(20);

impl ServeClient {
    /// Connects and performs the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on connect/protocol failure or a typed server
    /// rejection (wrong token, unknown tenant, version mismatch).
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
    ) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(CLIENT_TICK))?;
        let _ = stream.set_nodelay(true);
        let mut client = ServeClient {
            stream,
            max_frame: 1 << 20,
            idle: Duration::from_secs(60),
            stall: Duration::from_secs(10),
            session: 0,
            mode_at_hello: ServeMode::Full,
        };
        let resp = client.call(&Request::Hello {
            version: PROTO_VERSION,
            tenant: tenant.to_string(),
            token: token_hash(token),
        })?;
        match resp {
            Response::HelloOk { session, mode } => {
                client.session = session;
                client.mode_at_hello = mode;
                Ok(client)
            }
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The tenant's serving mode reported at handshake time.
    pub fn mode_at_hello(&self) -> ServeMode {
        self.mode_at_hello
    }

    /// Overrides the response-wait budget (how long a request may take
    /// before the client gives up).
    pub fn set_response_budget(&mut self, idle: Duration) {
        self.idle = idle;
    }

    /// Direct access to the underlying stream — the chaos harness uses
    /// this to inject malformed bytes mid-session.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// One raw request/response round-trip.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure; typed server
    /// rejections are returned *inside* [`Response::Err`], not as `Err`.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(
            &mut self.stream,
            self.max_frame,
            self.idle,
            self.stall,
            &|| false,
        )? {
            FrameEvent::Closed => Err(ClientError::Disconnected),
            FrameEvent::Payload(payload) => Ok(Response::decode(&payload)?),
        }
    }

    /// Reads one data line.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn read(
        &mut self,
        addr: u64,
        deadline_ms: u32,
    ) -> Result<([u8; 64], ServeMode), ClientError> {
        match self.call(&Request::Read { addr, deadline_ms })? {
            Response::ReadOk { data, mode } => Ok((data, mode)),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Writes one data line; `Ok` means the write is durably committed.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn write(
        &mut self,
        addr: u64,
        data: [u8; 64],
        deadline_ms: u32,
    ) -> Result<(), ClientError> {
        match self.call(&Request::Write {
            addr,
            deadline_ms,
            data,
        })? {
            Response::WriteOk => Ok(()),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Writes a batch through the controller's grouped commit path.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn write_batch(
        &mut self,
        items: Vec<(u64, [u8; 64])>,
        deadline_ms: u32,
    ) -> Result<u32, ClientError> {
        match self.call(&Request::WriteBatch { deadline_ms, items })? {
            Response::BatchOk { written } => Ok(written),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Orderly flush of the tenant's dirty metadata.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Flush)? {
            Response::FlushOk => Ok(()),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Forces a supervised recovery ladder.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn recover(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Recover)? {
            Response::RecoverOk { outcome } => Ok(outcome),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the tenant's serving statistics.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn stats(&mut self) -> Result<TenantStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Sends a chaos-injection request (server must run with
    /// `ANUBIS_SERVE_CHAOS=1`).
    ///
    /// # Errors
    ///
    /// Typed [`ClientError::Server`] rejections or transport failures.
    pub fn inject(&mut self, inj: Inject) -> Result<(), ClientError> {
        match self.call(&Request::Inject(inj))? {
            Response::InjectOk => Ok(()),
            Response::Err(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
