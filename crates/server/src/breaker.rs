//! Per-tenant circuit breaker: repeated faults trip the circuit open so
//! a failing domain sheds load instead of grinding every caller through
//! the same failure, then a half-open probe re-closes it once the domain
//! proves healthy again.

use std::time::{Duration, Instant};

/// Breaker state machine: `Closed → Open → HalfOpen → {Closed, Open}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; faults are counted.
    Closed,
    /// Tripped: every request is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is admitted; its
    /// outcome decides between `Closed` and another `Open` round.
    HalfOpen,
}

/// The circuit breaker proper.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
    trips: u64,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive faults, cooling
    /// down for `cooldown` before the half-open probe.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive: 0,
            state: BreakerState::Closed,
            opened_at: None,
            trips: 0,
        }
    }

    /// Admission check. `Ok(())` admits the request (and claims the
    /// half-open probe slot when cooling down); `Err(retry_after_ms)`
    /// means the circuit is open.
    pub fn check(&mut self, now: Instant) -> Result<(), u32> {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                let opened = self.opened_at.unwrap_or(now);
                let elapsed = now.duration_since(opened);
                if elapsed >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    let left = self.cooldown - elapsed;
                    Err(left.as_millis().min(60_000) as u32)
                }
            }
        }
    }

    /// Records a successful operation: closes a half-open circuit and
    /// clears the consecutive-fault count.
    pub fn record_ok(&mut self) {
        self.consecutive = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
    }

    /// Records a fault. A half-open probe failing — or the consecutive
    /// count reaching the threshold — trips the circuit open.
    pub fn record_fault(&mut self, now: Instant) {
        self.consecutive = self.consecutive.saturating_add(1);
        let probe_failed = self.state == BreakerState::HalfOpen;
        if probe_failed || self.consecutive >= self.threshold {
            if self.state != BreakerState::Open {
                self.trips += 1;
            }
            self.state = BreakerState::Open;
            self.opened_at = Some(now);
            self.consecutive = 0;
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_recovers_via_probe() {
        let mut b = Breaker::new(3, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.check(t0).is_ok());
        b.record_fault(t0);
        b.record_fault(t0);
        assert!(b.check(t0).is_ok(), "below threshold stays closed");
        b.record_fault(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.check(t0).is_err(), "open circuit rejects");
        assert_eq!(b.trips(), 1);

        // Cooldown elapses: one probe is admitted.
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.check(t1).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_ok();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = Breaker::new(1, Duration::from_millis(50));
        let t0 = Instant::now();
        b.record_fault(t0);
        assert_eq!(b.state(), BreakerState::Open);
        let t1 = t0 + Duration::from_millis(60);
        assert!(b.check(t1).is_ok());
        b.record_fault(t1);
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn successes_reset_consecutive_count() {
        let mut b = Breaker::new(2, Duration::from_millis(50));
        let t0 = Instant::now();
        b.record_fault(t0);
        b.record_ok();
        b.record_fault(t0);
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive faults");
    }
}
