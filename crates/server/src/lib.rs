//! # anubis-server — fault-tolerant multi-tenant serving front-end
//!
//! A dependency-free `std::net` TCP server exposing the Anubis
//! [`anubis::MemoryController`] contract (read / write / write-batch /
//! flush / recover / stats) over a length-prefixed, checksummed frame
//! protocol. Each tenant gets its own persistence domain backed by a
//! durable [`anubis_nvm::FileBackend`] image and authenticated by a
//! session token in the handshake.
//!
//! The point of the crate is the *robustness machinery* around the
//! controllers, not the transport:
//!
//! * **Per-request deadlines** — every read/write carries a budget;
//!   blowing it is a typed [`ServeError::DeadlineExceeded`], and the
//!   operation is *not* executed past its deadline.
//! * **Bounded retries** — transient device errors are retried with
//!   exponential backoff inside the deadline; integrity failures are
//!   never retried.
//! * **Admission control** — a per-tenant in-flight cap and ops/s token
//!   bucket; overload is a typed [`ServeError::Overloaded`] with a
//!   `retry_after_ms` hint, never a silently growing queue.
//! * **Circuit breaking** — repeated faults trip a per-tenant breaker
//!   ([`ServeError::CircuitOpen`]) so a failing domain sheds load.
//! * **Graceful degradation** — while the recovery supervisor runs its
//!   escalation ladder the tenant serves reads from the last verified
//!   state in read-only mode and rejects writes with a typed
//!   [`ServeError::Degraded`]; full service resumes only on a
//!   structured [`anubis::RecoveryOutcome`].
//!
//! See `DESIGN.md` §12 for the architecture and the serving-mode state
//! machine, and the `ANUBIS_SERVE_*` environment table in the README
//! for every knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod client;
pub mod config;
pub mod protocol;
pub mod server;
mod tenant;

pub use admission::{InflightGate, TokenBucket};
pub use breaker::{Breaker, BreakerState};
pub use client::{ClientError, ServeClient};
pub use config::{parse_tenants, ConfigError, ServeConfig, TenantFamily, TenantSpec};
pub use protocol::{
    token_hash, Inject, ProtoError, Request, Response, ServeError, ServeMode, TenantStats,
    PROTO_VERSION,
};
pub use server::{ServeStartError, Server};
pub use tenant::Tenant;
