//! Per-tenant admission control: an in-flight gate and an ops/s token
//! bucket. Overload is always a typed rejection, never a silent queue —
//! a request that cannot be admitted *right now* is bounced with a
//! suggested backoff instead of waiting on a lock behind an unbounded
//! line of other waiters.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bounded concurrent-request gate. Cheap (one atomic) and checked
/// *before* the tenant lock, so waiters can never pile up unbounded.
#[derive(Debug)]
pub struct InflightGate {
    max: u32,
    cur: Arc<AtomicU32>,
}

/// RAII admission permit; releases its slot on drop.
pub struct InflightPermit {
    cur: Arc<AtomicU32>,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.cur.fetch_sub(1, Ordering::AcqRel);
    }
}

impl InflightGate {
    /// A gate admitting at most `max` concurrent requests.
    pub fn new(max: u32) -> Self {
        InflightGate {
            max: max.max(1),
            cur: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Tries to admit one request; `None` means the tenant is at its
    /// in-flight cap and the caller must reject with `Overloaded`.
    pub fn acquire(&self) -> Option<InflightPermit> {
        let prev = self.cur.fetch_add(1, Ordering::AcqRel);
        if prev >= self.max {
            self.cur.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(InflightPermit {
            cur: Arc::clone(&self.cur),
        })
    }

    /// Requests currently admitted.
    pub fn in_flight(&self) -> u32 {
        self.cur.load(Ordering::Acquire)
    }
}

/// Classic token bucket: `rate` tokens/s refill, `burst` capacity.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    capacity: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` ops/s with `burst` capacity.
    pub fn new(rate: f64, burst: u32) -> Self {
        let capacity = f64::from(burst.max(1));
        TokenBucket {
            rate: rate.max(0.001),
            capacity,
            tokens: capacity,
            last: Instant::now(),
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
        self.last = now;
    }

    /// Takes one token if available; `false` means the ops/s quota is
    /// exhausted and the caller must reject with `Overloaded`.
    pub fn try_take(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Milliseconds until one token will be available — the
    /// `retry_after_ms` hint for rejected requests.
    pub fn retry_after_ms(&self) -> u32 {
        if self.tokens >= 1.0 {
            return 0;
        }
        let need = 1.0 - self.tokens;
        ((need / self.rate) * 1_000.0).ceil().min(60_000.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gate_admits_up_to_max() {
        let g = InflightGate::new(2);
        let a = g.acquire().expect("first");
        let b = g.acquire().expect("second");
        assert!(g.acquire().is_none(), "third must bounce");
        assert_eq!(g.in_flight(), 2);
        drop(a);
        let c = g.acquire().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn bucket_enforces_burst_then_rate() {
        let mut b = TokenBucket::new(10.0, 3);
        let t0 = Instant::now();
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        assert!(b.retry_after_ms() > 0);
        // 200 ms at 10 ops/s refills two tokens.
        let later = t0 + Duration::from_millis(200);
        assert!(b.try_take(later));
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }
}
