//! Server configuration and the `ANUBIS_SERVE_*` environment knobs.

use std::path::PathBuf;
use std::time::Duration;

use anubis::AnubisConfig;

use crate::protocol::token_hash;

/// The two controller families a tenant's persistence domain can run —
/// the paper's recoverable schemes, one per tree style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantFamily {
    /// Bonsai-style general Merkle tree under AGIT+.
    BonsaiAgitPlus,
    /// SGX-style counter tree under ASIT.
    SgxAsit,
}

impl TenantFamily {
    /// Stable identifier used in tenant specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            TenantFamily::BonsaiAgitPlus => "bonsai",
            TenantFamily::SgxAsit => "sgx",
        }
    }

    /// Parses a spec identifier (`"bonsai"` / `"sgx"`).
    pub fn parse(s: &str) -> Option<TenantFamily> {
        match s {
            "bonsai" | "bonsai-agit-plus" | "agit-plus" => Some(TenantFamily::BonsaiAgitPlus),
            "sgx" | "sgx-asit" | "asit" => Some(TenantFamily::SgxAsit),
            _ => None,
        }
    }
}

/// One tenant's identity: name, session-token hash, controller family.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant name (also the image file stem under the data dir).
    pub name: String,
    /// FNV-1a hash of the tenant's session token.
    pub token_hash: u64,
    /// Which controller family backs the tenant's domain.
    pub family: TenantFamily,
}

impl TenantSpec {
    /// Builds a spec from a plaintext token.
    pub fn new(name: &str, token: &str, family: TenantFamily) -> Self {
        TenantSpec {
            name: name.to_string(),
            token_hash: token_hash(token),
            family,
        }
    }
}

/// A configuration-parsing failure (bad env value or tenant spec).
#[derive(Debug)]
pub struct ConfigError {
    /// Which knob failed to parse.
    pub knob: &'static str,
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad {}: {}", self.knob, self.detail)
    }
}

impl std::error::Error for ConfigError {}

/// Everything the server needs to run. Defaults are production-shaped;
/// [`ServeConfig::from_env`] overrides from `ANUBIS_SERVE_*` knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`ANUBIS_SERVE_ADDR`, default `127.0.0.1:0` — an
    /// ephemeral port, printed at startup).
    pub addr: String,
    /// Directory holding per-tenant device images
    /// (`ANUBIS_SERVE_DATA`, default `$TMPDIR/anubis-serve`).
    pub data_dir: PathBuf,
    /// Tenant roster (`ANUBIS_SERVE_TENANTS`,
    /// `name:token:family[,name:token:family...]`).
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant concurrent-request cap (`ANUBIS_SERVE_MAX_INFLIGHT`,
    /// default 32). Exceeding it is a typed `Overloaded`, never a queue.
    pub max_inflight: u32,
    /// Per-tenant ops/s quota (`ANUBIS_SERVE_OPS_PER_SEC`, default
    /// 50 000).
    pub ops_per_sec: f64,
    /// Token-bucket burst capacity (`ANUBIS_SERVE_BURST`, default 256).
    pub burst: u32,
    /// Default per-request deadline when the client passes 0
    /// (`ANUBIS_SERVE_DEADLINE_MS`, default 1 000).
    pub default_deadline_ms: u32,
    /// Hard cap on client-requested deadlines
    /// (`ANUBIS_SERVE_MAX_DEADLINE_MS`, default 10 000).
    pub max_deadline_ms: u32,
    /// Retry budget for transient controller errors
    /// (`ANUBIS_SERVE_RETRIES`, default 3).
    pub retry_budget: u32,
    /// Base backoff between retries, doubling per attempt
    /// (`ANUBIS_SERVE_BACKOFF_MS`, default 1).
    pub retry_backoff_ms: u32,
    /// Consecutive faults before the tenant's circuit breaker opens
    /// (`ANUBIS_SERVE_BREAKER_THRESHOLD`, default 5).
    pub breaker_threshold: u32,
    /// Breaker cooldown before a half-open probe
    /// (`ANUBIS_SERVE_BREAKER_COOLDOWN_MS`, default 250).
    pub breaker_cooldown_ms: u32,
    /// Idle budget before the first byte of a frame; a silent connection
    /// is closed after this (`ANUBIS_SERVE_IDLE_MS`, default 30 000).
    pub idle_ms: u32,
    /// Mid-frame stall budget — the slowloris guard
    /// (`ANUBIS_SERVE_STALL_MS`, default 2 000).
    pub stall_ms: u32,
    /// Maximum frame payload bytes (`ANUBIS_SERVE_MAX_FRAME`, default
    /// 1 MiB).
    pub max_frame_bytes: u32,
    /// Whether chaos-injection requests are honored
    /// (`ANUBIS_SERVE_CHAOS=1`; default off).
    pub chaos: bool,
    /// Explicit operator override for a missing or corrupt freshness
    /// anchor (`ANUBIS_ANCHOR_OVERRIDE=1`; default off). Never applies
    /// to a valid anchor proving rollback — that is always refused.
    pub anchor_override: bool,
    /// Controller geometry for every tenant domain.
    pub mem_config: AnubisConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: std::env::temp_dir().join("anubis-serve"),
            tenants: Vec::new(),
            max_inflight: 32,
            ops_per_sec: 50_000.0,
            burst: 256,
            default_deadline_ms: 1_000,
            max_deadline_ms: 10_000,
            retry_budget: 3,
            retry_backoff_ms: 1,
            breaker_threshold: 5,
            breaker_cooldown_ms: 250,
            idle_ms: 30_000,
            stall_ms: 2_000,
            max_frame_bytes: 1 << 20,
            chaos: false,
            anchor_override: false,
            mem_config: AnubisConfig::small_test(),
        }
    }
}

fn env_parse<T: std::str::FromStr>(knob: &'static str, into: &mut T) -> Result<(), ConfigError> {
    if let Ok(v) = std::env::var(knob) {
        *into = v.trim().parse().map_err(|_| ConfigError {
            knob,
            detail: format!("cannot parse {v:?}"),
        })?;
    }
    Ok(())
}

/// Parses a tenant roster string (`name:token:family,...`).
///
/// # Errors
///
/// [`ConfigError`] naming the offending entry.
pub fn parse_tenants(spec: &str) -> Result<Vec<TenantSpec>, ConfigError> {
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let parts: Vec<&str> = entry.trim().split(':').collect();
        let bad = |detail: String| ConfigError {
            knob: "ANUBIS_SERVE_TENANTS",
            detail,
        };
        if parts.len() != 3 {
            return Err(bad(format!("entry {entry:?} is not name:token:family")));
        }
        let family = TenantFamily::parse(parts[2])
            .ok_or_else(|| bad(format!("unknown family {:?} in {entry:?}", parts[2])))?;
        if parts[0].is_empty() || parts[0].contains(['/', '\\']) {
            return Err(bad(format!("invalid tenant name {:?}", parts[0])));
        }
        out.push(TenantSpec::new(parts[0], parts[1], family));
    }
    if out.is_empty() {
        return Err(ConfigError {
            knob: "ANUBIS_SERVE_TENANTS",
            detail: "no tenants configured".to_string(),
        });
    }
    Ok(out)
}

impl ServeConfig {
    /// Builds a config from the defaults overridden by every
    /// `ANUBIS_SERVE_*` environment knob.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for an unparseable knob or tenant roster.
    pub fn from_env() -> Result<ServeConfig, ConfigError> {
        let mut c = ServeConfig::default();
        if let Ok(v) = std::env::var("ANUBIS_SERVE_ADDR") {
            c.addr = v;
        }
        if let Some(v) = std::env::var_os("ANUBIS_SERVE_DATA") {
            c.data_dir = PathBuf::from(v);
        }
        if let Ok(v) = std::env::var("ANUBIS_SERVE_TENANTS") {
            c.tenants = parse_tenants(&v)?;
        }
        env_parse("ANUBIS_SERVE_MAX_INFLIGHT", &mut c.max_inflight)?;
        env_parse("ANUBIS_SERVE_OPS_PER_SEC", &mut c.ops_per_sec)?;
        env_parse("ANUBIS_SERVE_BURST", &mut c.burst)?;
        env_parse("ANUBIS_SERVE_DEADLINE_MS", &mut c.default_deadline_ms)?;
        env_parse("ANUBIS_SERVE_MAX_DEADLINE_MS", &mut c.max_deadline_ms)?;
        env_parse("ANUBIS_SERVE_RETRIES", &mut c.retry_budget)?;
        env_parse("ANUBIS_SERVE_BACKOFF_MS", &mut c.retry_backoff_ms)?;
        env_parse("ANUBIS_SERVE_BREAKER_THRESHOLD", &mut c.breaker_threshold)?;
        env_parse(
            "ANUBIS_SERVE_BREAKER_COOLDOWN_MS",
            &mut c.breaker_cooldown_ms,
        )?;
        env_parse("ANUBIS_SERVE_IDLE_MS", &mut c.idle_ms)?;
        env_parse("ANUBIS_SERVE_STALL_MS", &mut c.stall_ms)?;
        env_parse("ANUBIS_SERVE_MAX_FRAME", &mut c.max_frame_bytes)?;
        c.chaos = std::env::var("ANUBIS_SERVE_CHAOS").map(|v| v == "1") == Ok(true);
        c.anchor_override = std::env::var("ANUBIS_ANCHOR_OVERRIDE").map(|v| v == "1") == Ok(true);
        Ok(c)
    }

    /// Clamps a client-requested deadline into the configured bounds.
    pub fn effective_deadline(&self, requested_ms: u32) -> Duration {
        let ms = if requested_ms == 0 {
            self.default_deadline_ms
        } else {
            requested_ms.min(self.max_deadline_ms)
        };
        Duration::from_millis(u64::from(ms.max(1)))
    }

    /// The device-image path for a tenant.
    pub fn image_path(&self, tenant: &str) -> PathBuf {
        self.data_dir.join(format!("{tenant}.wal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_specs_parse() {
        let t = parse_tenants("a:s3cret:bonsai, b:tok:sgx").expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "a");
        assert_eq!(t[0].family, TenantFamily::BonsaiAgitPlus);
        assert_eq!(t[0].token_hash, token_hash("s3cret"));
        assert_eq!(t[1].family, TenantFamily::SgxAsit);
    }

    #[test]
    fn bad_tenant_specs_are_typed() {
        assert!(parse_tenants("").is_err());
        assert!(parse_tenants("a:b").is_err());
        assert!(parse_tenants("a:b:martian").is_err());
        assert!(parse_tenants("../evil:b:bonsai").is_err());
    }

    #[test]
    fn deadlines_clamp() {
        let c = ServeConfig {
            default_deadline_ms: 100,
            max_deadline_ms: 500,
            ..ServeConfig::default()
        };
        assert_eq!(c.effective_deadline(0), Duration::from_millis(100));
        assert_eq!(c.effective_deadline(50), Duration::from_millis(50));
        assert_eq!(c.effective_deadline(9_999), Duration::from_millis(500));
    }
}
