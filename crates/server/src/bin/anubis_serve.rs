//! `anubis-serve` — the multi-tenant serving daemon.
//!
//! Configuration comes entirely from `ANUBIS_SERVE_*` environment knobs
//! (see the README table). On successful startup the daemon prints
//!
//! ```text
//! ANUBIS_SERVE_LISTENING <addr>
//! ```
//!
//! on stdout — the chaos harness parses this line to find the ephemeral
//! port — then serves until killed. The harness kills it with SIGKILL
//! on purpose: durability of acknowledged writes must not depend on an
//! orderly shutdown.

use std::io::Write;
use std::process::ExitCode;

use anubis_server::{ServeConfig, Server};

fn main() -> ExitCode {
    let cfg = match ServeConfig::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("anubis-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cfg.tenants.is_empty() {
        eprintln!("anubis-serve: no tenants configured (set ANUBIS_SERVE_TENANTS)");
        return ExitCode::FAILURE;
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("anubis-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ANUBIS_SERVE_LISTENING {}", server.local_addr());
    let _ = std::io::stdout().flush();
    // Serve until killed. The harness SIGKILLs the process; acknowledged
    // writes survive because the controllers commit before acking.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
