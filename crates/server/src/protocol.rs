//! The `anubis-serve` wire protocol: length-prefixed, checksummed frames
//! over TCP, carrying typed requests and responses.
//!
//! # Frame format
//!
//! ```text
//! [magic u32 LE][payload_len u32 LE][payload bytes][fnv1a64(payload) u64 LE]
//! ```
//!
//! The payload's first byte is an opcode; the rest is the
//! operation-specific body. Every decode failure is a typed
//! [`ProtoError`] — a malformed, truncated, oversized or corrupted frame
//! can never panic the peer, and a writer that stalls mid-frame
//! (slowloris) surfaces as [`ProtoError::TimedOutMidFrame`] rather than
//! a hung connection.
//!
//! The protocol is deliberately dependency-free: hand-rolled little-
//! endian encoding over `std::net::TcpStream`, matching the rest of the
//! workspace.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Frame magic: `"ANSV"` little-endian-ish constant; a frame not opening
/// with it is rejected before any payload is read.
pub const MAGIC: u32 = 0xA17B_5E1F;

/// Protocol version carried in [`Request::Hello`]; the server rejects
/// mismatches with [`ServeError::BadRequest`].
pub const PROTO_VERSION: u32 = 1;

/// Frame header bytes on the wire (magic + payload length).
pub const HEADER_BYTES: usize = 8;

/// Checksum trailer bytes on the wire.
pub const TRAILER_BYTES: usize = 8;

/// FNV-1a over arbitrary bytes — the frame checksum (same constants as
/// the NVM crate's WAL checksums; the protocol is an external observer,
/// not part of the device image).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a session token for the handshake: tokens travel and are
/// stored only as FNV-1a digests.
pub fn token_hash(token: &str) -> u64 {
    fnv1a64(token.as_bytes())
}

/// A typed frame/codec failure. Every connection-layer fault a peer can
/// inject maps onto exactly one of these variants.
#[derive(Debug)]
pub enum ProtoError {
    /// The frame did not open with [`MAGIC`].
    BadMagic(u32),
    /// Declared payload length exceeds the negotiated maximum.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// Maximum the reader accepts.
        max: u32,
    },
    /// Frame checksum mismatch (corrupted in flight).
    BadChecksum {
        /// Checksum carried by the frame.
        got: u64,
        /// Checksum computed over the received payload.
        want: u64,
    },
    /// The stream ended mid-frame (peer disconnected).
    Truncated,
    /// The peer went silent mid-frame for longer than the stall budget
    /// (slowloris guard).
    TimedOutMidFrame,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Structurally invalid payload body.
    Malformed(&'static str),
    /// Transport-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds maximum {max}")
            }
            ProtoError::BadChecksum { got, want } => {
                write!(f, "frame checksum {got:#018x} != computed {want:#018x}")
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::TimedOutMidFrame => write!(f, "peer stalled mid-frame"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// A tenant's serving mode — the three persistence-tier-shaped states
/// the front-end moves through (full service, read-only during an
/// in-flight recovery ladder, unavailable after a structural failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// Reads and writes served normally.
    Full,
    /// The recovery supervisor owns the controller: reads come from the
    /// last verified state, writes are rejected as [`ServeError::Degraded`].
    ReadOnly,
    /// The tenant's domain failed structurally; every request is
    /// rejected until an operator intervenes.
    Unavailable,
}

impl ServeMode {
    /// Wire encoding of the mode.
    pub fn code(self) -> u8 {
        match self {
            ServeMode::Full => 0,
            ServeMode::ReadOnly => 1,
            ServeMode::Unavailable => 2,
        }
    }

    /// Parses the wire encoding.
    pub fn from_code(c: u8) -> Result<ServeMode, ProtoError> {
        match c {
            0 => Ok(ServeMode::Full),
            1 => Ok(ServeMode::ReadOnly),
            2 => Ok(ServeMode::Unavailable),
            _ => Err(ProtoError::Malformed("serving mode")),
        }
    }
}

impl std::fmt::Display for ServeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeMode::Full => write!(f, "full"),
            ServeMode::ReadOnly => write!(f, "read-only"),
            ServeMode::Unavailable => write!(f, "unavailable"),
        }
    }
}

/// Chaos-injection operations, accepted only when the server runs with
/// `ANUBIS_SERVE_CHAOS=1` (the harness and the example use them; a
/// production server rejects them as [`ServeError::BadRequest`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inject {
    /// Flip a bit pair in the tenant's stored ciphertext for data line
    /// `addr` (two flips in one word defeat the ECC model) — the next
    /// touch of that line fails verification and drives the tenant into
    /// the recovery ladder.
    CorruptLine {
        /// Data-line address to corrupt.
        addr: u64,
        /// Bit index within the 64-byte block (its partner `bit ^ 1` is
        /// flipped too).
        bit: u32,
    },
    /// Make the next `count` controller ops fail with a synthetic
    /// transient error (exercises retry-with-backoff deterministically).
    TransientFaults {
        /// Number of ops to fail.
        count: u32,
    },
    /// Stall every subsequent request by `ms` while holding the tenant
    /// lock (exercises deadlines and admission control).
    Stall {
        /// Injected per-request delay in milliseconds.
        ms: u32,
    },
    /// Delay the *next* recovery ladder by `ms` before it starts, holding
    /// the tenant in read-only mode long enough to observe degraded
    /// serving.
    RecoveryStall {
        /// Injected pre-ladder delay in milliseconds.
        ms: u32,
    },
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Session handshake; must be the first frame on a connection.
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        version: u32,
        /// Tenant name.
        tenant: String,
        /// FNV-1a hash of the tenant's session token.
        token: u64,
    },
    /// Read one data line.
    Read {
        /// Data-line address.
        addr: u64,
        /// Per-request deadline in milliseconds (0 = server default).
        deadline_ms: u32,
    },
    /// Write one data line.
    Write {
        /// Data-line address.
        addr: u64,
        /// Per-request deadline in milliseconds (0 = server default).
        deadline_ms: u32,
        /// The 64-byte payload.
        data: [u8; 64],
    },
    /// Write a batch of data lines through the controller's grouped
    /// commit path.
    WriteBatch {
        /// Per-request deadline in milliseconds (0 = server default).
        deadline_ms: u32,
        /// `(addr, payload)` items.
        items: Vec<(u64, [u8; 64])>,
    },
    /// Drain all dirty metadata to NVM (orderly flush).
    Flush,
    /// Force a supervised recovery ladder on the tenant's domain.
    Recover,
    /// Fetch the tenant's serving statistics.
    Stats,
    /// Chaos injection (gated behind `ANUBIS_SERVE_CHAOS`).
    Inject(Inject),
}

/// Per-tenant serving statistics returned by [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Current serving mode code ([`ServeMode::code`]).
    pub mode: u8,
    /// Requests currently admitted and executing.
    pub inflight: u64,
    /// Successful reads served (controller or verified-state).
    pub reads_total: u64,
    /// Acknowledged writes.
    pub writes_acked_total: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected_overload: u64,
    /// Requests rejected with [`ServeError::CircuitOpen`].
    pub rejected_circuit: u64,
    /// Requests rejected with [`ServeError::DeadlineExceeded`].
    pub rejected_deadline: u64,
    /// Writes rejected with [`ServeError::Degraded`].
    pub degraded_writes: u64,
    /// Reads served from the last verified state while recovering.
    pub degraded_reads: u64,
    /// Recovery ladders completed on this tenant.
    pub recoveries: u64,
    /// Transient-error retries performed.
    pub retries_total: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Blocks currently quarantined in the tenant's remap table.
    pub quarantined_blocks: u64,
    /// Rendered outcome of the most recent recovery ladder (empty until
    /// the first ladder completes).
    pub last_outcome: String,
}

/// A server response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server-assigned session id.
        session: u64,
        /// The tenant's serving mode at handshake time.
        mode: ServeMode,
    },
    /// Read served.
    ReadOk {
        /// The 64-byte payload.
        data: [u8; 64],
        /// Serving mode the read was served under ([`ServeMode::ReadOnly`]
        /// means it came from the last verified state).
        mode: ServeMode,
    },
    /// Write acknowledged (durably committed by the controller).
    WriteOk,
    /// Batch acknowledged.
    BatchOk {
        /// Lines written.
        written: u32,
    },
    /// Flush completed.
    FlushOk,
    /// Recovery ladder scheduled or completed.
    RecoverOk {
        /// Rendered [`anubis::RecoveryOutcome`], or `"started"` when the
        /// ladder runs in the background.
        outcome: String,
    },
    /// Statistics snapshot.
    StatsOk(TenantStats),
    /// Chaos injection applied.
    InjectOk,
    /// A typed rejection or failure.
    Err(ServeError),
}

/// Every way the server says "no" — typed, never a silent queue, a hang,
/// or a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request frame failed protocol decoding; the connection closes
    /// after this response.
    BadFrame {
        /// Rendered [`ProtoError`].
        detail: String,
    },
    /// Unknown tenant or wrong session token.
    AuthFailed,
    /// Structurally valid frame, semantically invalid request (bad
    /// version, missing handshake, chaos op while chaos is disabled…).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The per-request deadline elapsed before the operation ran; the
    /// operation was **not** executed.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        budget_ms: u32,
    },
    /// Admission control rejected the request (in-flight cap or ops/s
    /// quota); back off and retry.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The tenant's circuit breaker is open after repeated faults.
    CircuitOpen {
        /// Remaining cooldown in milliseconds.
        retry_after_ms: u32,
    },
    /// The tenant is recovering: writes are rejected, reads may still be
    /// served from the last verified state.
    Degraded {
        /// The tenant's current mode.
        mode: ServeMode,
    },
    /// The operation failed integrity verification and the tenant has
    /// entered recovery.
    Integrity {
        /// Rendered controller error.
        detail: String,
    },
    /// The tenant is structurally unavailable.
    Unavailable {
        /// Why.
        detail: String,
    },
    /// Retry budget exhausted on transient errors, or an unexpected
    /// internal failure.
    Internal {
        /// Rendered underlying error.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadFrame { detail } => write!(f, "bad frame: {detail}"),
            ServeError::AuthFailed => write!(f, "authentication failed"),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms} ms exceeded")
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ServeError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit open; retry after {retry_after_ms} ms")
            }
            ServeError::Degraded { mode } => write!(f, "degraded: tenant is {mode}"),
            ServeError::Integrity { detail } => write!(f, "integrity failure: {detail}"),
            ServeError::Unavailable { detail } => write!(f, "unavailable: {detail}"),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Stable short name of the rejection class, used as a telemetry
    /// label and in reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadFrame { .. } => "bad_frame",
            ServeError::AuthFailed => "auth_failed",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::CircuitOpen { .. } => "circuit_open",
            ServeError::Degraded { .. } => "degraded",
            ServeError::Integrity { .. } => "integrity",
            ServeError::Unavailable { .. } => "unavailable",
            ServeError::Internal { .. } => "internal",
        }
    }
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(opcode: u8) -> Self {
        Enc { buf: vec![opcode] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        let b = s.as_bytes();
        self.u32(b.len() as u32);
        self.bytes(b);
    }
}

struct Dec<'a> {
    b: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b }
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&v, rest) = self
            .b
            .split_first()
            .ok_or(ProtoError::Malformed("short payload (u8)"))?;
        self.b = rest;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        if self.b.len() < 4 {
            return Err(ProtoError::Malformed("short payload (u32)"));
        }
        let (head, rest) = self.b.split_at(4);
        self.b = rest;
        let mut a = [0u8; 4];
        a.copy_from_slice(head);
        Ok(u32::from_le_bytes(a))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        if self.b.len() < 8 {
            return Err(ProtoError::Malformed("short payload (u64)"));
        }
        let (head, rest) = self.b.split_at(8);
        self.b = rest;
        let mut a = [0u8; 8];
        a.copy_from_slice(head);
        Ok(u64::from_le_bytes(a))
    }
    fn block(&mut self) -> Result<[u8; 64], ProtoError> {
        if self.b.len() < 64 {
            return Err(ProtoError::Malformed("short payload (block)"));
        }
        let (head, rest) = self.b.split_at(64);
        self.b = rest;
        let mut a = [0u8; 64];
        a.copy_from_slice(head);
        Ok(a)
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if self.b.len() < len {
            return Err(ProtoError::Malformed("short payload (string)"));
        }
        let (head, rest) = self.b.split_at(len);
        self.b = rest;
        String::from_utf8(head.to_vec()).map_err(|_| ProtoError::Malformed("non-UTF-8 string"))
    }
    fn done(self) -> Result<(), ProtoError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes"))
        }
    }
}

const OP_HELLO: u8 = 0x01;
const OP_READ: u8 = 0x02;
const OP_WRITE: u8 = 0x03;
const OP_WRITE_BATCH: u8 = 0x04;
const OP_FLUSH: u8 = 0x05;
const OP_RECOVER: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_INJECT: u8 = 0x08;

const RE_HELLO_OK: u8 = 0x81;
const RE_READ_OK: u8 = 0x82;
const RE_WRITE_OK: u8 = 0x83;
const RE_BATCH_OK: u8 = 0x84;
const RE_FLUSH_OK: u8 = 0x85;
const RE_RECOVER_OK: u8 = 0x86;
const RE_STATS_OK: u8 = 0x87;
const RE_INJECT_OK: u8 = 0x88;
const RE_ERR: u8 = 0xE0;

const INJ_CORRUPT: u8 = 1;
const INJ_TRANSIENT: u8 = 2;
const INJ_STALL: u8 = 3;
const INJ_RECOVERY_STALL: u8 = 4;

const ERR_BAD_FRAME: u8 = 1;
const ERR_AUTH: u8 = 2;
const ERR_BAD_REQUEST: u8 = 3;
const ERR_DEADLINE: u8 = 4;
const ERR_OVERLOADED: u8 = 5;
const ERR_CIRCUIT: u8 = 6;
const ERR_DEGRADED: u8 = 7;
const ERR_INTEGRITY: u8 = 8;
const ERR_UNAVAILABLE: u8 = 9;
const ERR_INTERNAL: u8 = 10;

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello {
                version,
                tenant,
                token,
            } => {
                let mut e = Enc::new(OP_HELLO);
                e.u32(*version);
                e.str(tenant);
                e.u64(*token);
                e.buf
            }
            Request::Read { addr, deadline_ms } => {
                let mut e = Enc::new(OP_READ);
                e.u64(*addr);
                e.u32(*deadline_ms);
                e.buf
            }
            Request::Write {
                addr,
                deadline_ms,
                data,
            } => {
                let mut e = Enc::new(OP_WRITE);
                e.u64(*addr);
                e.u32(*deadline_ms);
                e.bytes(data);
                e.buf
            }
            Request::WriteBatch { deadline_ms, items } => {
                let mut e = Enc::new(OP_WRITE_BATCH);
                e.u32(*deadline_ms);
                e.u32(items.len() as u32);
                for (addr, data) in items {
                    e.u64(*addr);
                    e.bytes(data);
                }
                e.buf
            }
            Request::Flush => Enc::new(OP_FLUSH).buf,
            Request::Recover => Enc::new(OP_RECOVER).buf,
            Request::Stats => Enc::new(OP_STATS).buf,
            Request::Inject(inj) => {
                let mut e = Enc::new(OP_INJECT);
                match inj {
                    Inject::CorruptLine { addr, bit } => {
                        e.u8(INJ_CORRUPT);
                        e.u64(*addr);
                        e.u32(*bit);
                    }
                    Inject::TransientFaults { count } => {
                        e.u8(INJ_TRANSIENT);
                        e.u32(*count);
                    }
                    Inject::Stall { ms } => {
                        e.u8(INJ_STALL);
                        e.u32(*ms);
                    }
                    Inject::RecoveryStall { ms } => {
                        e.u8(INJ_RECOVERY_STALL);
                        e.u32(*ms);
                    }
                }
                e.buf
            }
        }
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] for every structural defect.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(payload);
        let op = d.u8()?;
        let req = match op {
            OP_HELLO => Request::Hello {
                version: d.u32()?,
                tenant: d.str()?,
                token: d.u64()?,
            },
            OP_READ => Request::Read {
                addr: d.u64()?,
                deadline_ms: d.u32()?,
            },
            OP_WRITE => Request::Write {
                addr: d.u64()?,
                deadline_ms: d.u32()?,
                data: d.block()?,
            },
            OP_WRITE_BATCH => {
                let deadline_ms = d.u32()?;
                let count = d.u32()? as usize;
                // Cap items by what the payload can actually hold so a
                // forged count cannot trigger a huge allocation.
                if count > payload.len() / 72 + 1 {
                    return Err(ProtoError::Malformed("batch count exceeds payload"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let addr = d.u64()?;
                    let data = d.block()?;
                    items.push((addr, data));
                }
                Request::WriteBatch { deadline_ms, items }
            }
            OP_FLUSH => Request::Flush,
            OP_RECOVER => Request::Recover,
            OP_STATS => Request::Stats,
            OP_INJECT => {
                let kind = d.u8()?;
                let inj = match kind {
                    INJ_CORRUPT => Inject::CorruptLine {
                        addr: d.u64()?,
                        bit: d.u32()?,
                    },
                    INJ_TRANSIENT => Inject::TransientFaults { count: d.u32()? },
                    INJ_STALL => Inject::Stall { ms: d.u32()? },
                    INJ_RECOVERY_STALL => Inject::RecoveryStall { ms: d.u32()? },
                    _ => return Err(ProtoError::Malformed("unknown inject kind")),
                };
                Request::Inject(inj)
            }
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        d.done()?;
        Ok(req)
    }
}

fn encode_stats(e: &mut Enc, s: &TenantStats) {
    e.u8(s.mode);
    e.u64(s.inflight);
    e.u64(s.reads_total);
    e.u64(s.writes_acked_total);
    e.u64(s.rejected_overload);
    e.u64(s.rejected_circuit);
    e.u64(s.rejected_deadline);
    e.u64(s.degraded_writes);
    e.u64(s.degraded_reads);
    e.u64(s.recoveries);
    e.u64(s.retries_total);
    e.u64(s.breaker_trips);
    e.u64(s.quarantined_blocks);
    e.str(&s.last_outcome);
}

fn decode_stats(d: &mut Dec<'_>) -> Result<TenantStats, ProtoError> {
    Ok(TenantStats {
        mode: d.u8()?,
        inflight: d.u64()?,
        reads_total: d.u64()?,
        writes_acked_total: d.u64()?,
        rejected_overload: d.u64()?,
        rejected_circuit: d.u64()?,
        rejected_deadline: d.u64()?,
        degraded_writes: d.u64()?,
        degraded_reads: d.u64()?,
        recoveries: d.u64()?,
        retries_total: d.u64()?,
        breaker_trips: d.u64()?,
        quarantined_blocks: d.u64()?,
        last_outcome: d.str()?,
    })
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::HelloOk { session, mode } => {
                let mut e = Enc::new(RE_HELLO_OK);
                e.u64(*session);
                e.u8(mode.code());
                e.buf
            }
            Response::ReadOk { data, mode } => {
                let mut e = Enc::new(RE_READ_OK);
                e.bytes(data);
                e.u8(mode.code());
                e.buf
            }
            Response::WriteOk => Enc::new(RE_WRITE_OK).buf,
            Response::BatchOk { written } => {
                let mut e = Enc::new(RE_BATCH_OK);
                e.u32(*written);
                e.buf
            }
            Response::FlushOk => Enc::new(RE_FLUSH_OK).buf,
            Response::RecoverOk { outcome } => {
                let mut e = Enc::new(RE_RECOVER_OK);
                e.str(outcome);
                e.buf
            }
            Response::StatsOk(s) => {
                let mut e = Enc::new(RE_STATS_OK);
                encode_stats(&mut e, s);
                e.buf
            }
            Response::InjectOk => Enc::new(RE_INJECT_OK).buf,
            Response::Err(err) => {
                let mut e = Enc::new(RE_ERR);
                match err {
                    ServeError::BadFrame { detail } => {
                        e.u8(ERR_BAD_FRAME);
                        e.str(detail);
                    }
                    ServeError::AuthFailed => e.u8(ERR_AUTH),
                    ServeError::BadRequest { detail } => {
                        e.u8(ERR_BAD_REQUEST);
                        e.str(detail);
                    }
                    ServeError::DeadlineExceeded { budget_ms } => {
                        e.u8(ERR_DEADLINE);
                        e.u32(*budget_ms);
                    }
                    ServeError::Overloaded { retry_after_ms } => {
                        e.u8(ERR_OVERLOADED);
                        e.u32(*retry_after_ms);
                    }
                    ServeError::CircuitOpen { retry_after_ms } => {
                        e.u8(ERR_CIRCUIT);
                        e.u32(*retry_after_ms);
                    }
                    ServeError::Degraded { mode } => {
                        e.u8(ERR_DEGRADED);
                        e.u8(mode.code());
                    }
                    ServeError::Integrity { detail } => {
                        e.u8(ERR_INTEGRITY);
                        e.str(detail);
                    }
                    ServeError::Unavailable { detail } => {
                        e.u8(ERR_UNAVAILABLE);
                        e.str(detail);
                    }
                    ServeError::Internal { detail } => {
                        e.u8(ERR_INTERNAL);
                        e.str(detail);
                    }
                }
                e.buf
            }
        }
    }

    /// Parses a frame payload into a response.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] for every structural defect.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let op = d.u8()?;
        let resp = match op {
            RE_HELLO_OK => Response::HelloOk {
                session: d.u64()?,
                mode: ServeMode::from_code(d.u8()?)?,
            },
            RE_READ_OK => Response::ReadOk {
                data: d.block()?,
                mode: ServeMode::from_code(d.u8()?)?,
            },
            RE_WRITE_OK => Response::WriteOk,
            RE_BATCH_OK => Response::BatchOk { written: d.u32()? },
            RE_FLUSH_OK => Response::FlushOk,
            RE_RECOVER_OK => Response::RecoverOk { outcome: d.str()? },
            RE_STATS_OK => Response::StatsOk(decode_stats(&mut d)?),
            RE_INJECT_OK => Response::InjectOk,
            RE_ERR => {
                let code = d.u8()?;
                let err = match code {
                    ERR_BAD_FRAME => ServeError::BadFrame { detail: d.str()? },
                    ERR_AUTH => ServeError::AuthFailed,
                    ERR_BAD_REQUEST => ServeError::BadRequest { detail: d.str()? },
                    ERR_DEADLINE => ServeError::DeadlineExceeded {
                        budget_ms: d.u32()?,
                    },
                    ERR_OVERLOADED => ServeError::Overloaded {
                        retry_after_ms: d.u32()?,
                    },
                    ERR_CIRCUIT => ServeError::CircuitOpen {
                        retry_after_ms: d.u32()?,
                    },
                    ERR_DEGRADED => ServeError::Degraded {
                        mode: ServeMode::from_code(d.u8()?)?,
                    },
                    ERR_INTEGRITY => ServeError::Integrity { detail: d.str()? },
                    ERR_UNAVAILABLE => ServeError::Unavailable { detail: d.str()? },
                    ERR_INTERNAL => ServeError::Internal { detail: d.str()? },
                    _ => return Err(ProtoError::Malformed("unknown error code")),
                };
                Response::Err(err)
            }
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        d.done()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------

/// Writes one frame (header + payload + checksum) to `w`.
///
/// # Errors
///
/// Propagates transport I/O failures.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; HEADER_BYTES];
    head[..4].copy_from_slice(&MAGIC.to_le_bytes());
    head[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&fnv1a64(payload).to_le_bytes())?;
    w.flush()
}

/// What [`read_frame`] observed on the stream.
pub enum FrameEvent {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The peer closed (or stayed silent past the idle budget) without
    /// starting a frame — a clean end of conversation.
    Closed,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes, tolerating read-timeout ticks up to
/// `stall_budget` of *cumulative silence*, so a stalled peer surfaces as
/// [`ProtoError::TimedOutMidFrame`] instead of a hang. `had_bytes` says
/// whether the frame already started (affects Truncated vs Closed).
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stall_budget: Duration,
    stop: &dyn Fn() -> bool,
) -> Result<usize, ProtoError> {
    let mut filled = 0usize;
    let mut silent_since = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => {
                filled += n;
                silent_since = Instant::now();
            }
            Err(e) if is_timeout(&e) => {
                if stop() {
                    return Ok(filled);
                }
                if silent_since.elapsed() > stall_budget {
                    return Err(ProtoError::TimedOutMidFrame);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame from `stream`, which must have a read timeout set
/// (the timeout is the polling tick; budgets are enforced here).
///
/// * `max_len` — maximum accepted payload length.
/// * `idle_budget` — how long the peer may be silent *before the first
///   byte* of a frame; exceeding it returns [`FrameEvent::Closed`].
/// * `stall_budget` — how long the peer may be silent *mid-frame*;
///   exceeding it is the slowloris guard, [`ProtoError::TimedOutMidFrame`].
/// * `stop` — cooperative shutdown check polled on every tick.
///
/// # Errors
///
/// Every connection-layer fault maps to a typed [`ProtoError`].
pub fn read_frame(
    stream: &mut TcpStream,
    max_len: u32,
    idle_budget: Duration,
    stall_budget: Duration,
    stop: &dyn Fn() -> bool,
) -> Result<FrameEvent, ProtoError> {
    // Phase 1: wait for the first header byte within the idle budget.
    let mut head = [0u8; HEADER_BYTES];
    let idle_since = Instant::now();
    let mut got = 0usize;
    while got == 0 {
        match stream.read(&mut head) {
            Ok(0) => return Ok(FrameEvent::Closed),
            Ok(n) => got = n,
            Err(e) if is_timeout(&e) => {
                if stop() || idle_since.elapsed() > idle_budget {
                    return Ok(FrameEvent::Closed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    // Phase 2: the frame has started; everything else is on the clock.
    let n = read_full(stream, &mut head[got..], stall_budget, stop)?;
    if got + n < HEADER_BYTES {
        return Err(ProtoError::Truncated);
    }
    let magic = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > max_len {
        return Err(ProtoError::Oversize { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize + TRAILER_BYTES];
    let n = read_full(stream, &mut body, stall_budget, stop)?;
    if n < body.len() {
        return Err(ProtoError::Truncated);
    }
    let payload = body[..len as usize].to_vec();
    let got_crc = u64::from_le_bytes(
        body[len as usize..]
            .try_into()
            .map_err(|_| ProtoError::Truncated)?,
    );
    let want_crc = fnv1a64(&payload);
    if got_crc != want_crc {
        return Err(ProtoError::BadChecksum {
            got: got_crc,
            want: want_crc,
        });
    }
    Ok(FrameEvent::Payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = req.encode();
        let dec = Request::decode(&enc).expect("decode");
        assert_eq!(req, dec);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = resp.encode();
        let dec = Response::decode(&enc).expect("decode");
        assert_eq!(resp, dec);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTO_VERSION,
            tenant: "tenant-0".into(),
            token: token_hash("hunter2"),
        });
        roundtrip_req(Request::Read {
            addr: 7,
            deadline_ms: 25,
        });
        roundtrip_req(Request::Write {
            addr: 9,
            deadline_ms: 0,
            data: [0xAB; 64],
        });
        roundtrip_req(Request::WriteBatch {
            deadline_ms: 5,
            items: vec![(1, [1; 64]), (2, [2; 64]), (3, [3; 64])],
        });
        roundtrip_req(Request::Flush);
        roundtrip_req(Request::Recover);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Inject(Inject::CorruptLine { addr: 3, bit: 77 }));
        roundtrip_req(Request::Inject(Inject::TransientFaults { count: 2 }));
        roundtrip_req(Request::Inject(Inject::Stall { ms: 50 }));
        roundtrip_req(Request::Inject(Inject::RecoveryStall { ms: 120 }));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloOk {
            session: 42,
            mode: ServeMode::Full,
        });
        roundtrip_resp(Response::ReadOk {
            data: [9; 64],
            mode: ServeMode::ReadOnly,
        });
        roundtrip_resp(Response::WriteOk);
        roundtrip_resp(Response::BatchOk { written: 17 });
        roundtrip_resp(Response::FlushOk);
        roundtrip_resp(Response::RecoverOk {
            outcome: "recovered".into(),
        });
        roundtrip_resp(Response::StatsOk(TenantStats {
            mode: 1,
            inflight: 2,
            reads_total: 3,
            writes_acked_total: 4,
            rejected_overload: 5,
            rejected_circuit: 6,
            rejected_deadline: 7,
            degraded_writes: 8,
            degraded_reads: 9,
            recoveries: 10,
            retries_total: 11,
            breaker_trips: 12,
            quarantined_blocks: 13,
            last_outcome: "degraded (repaired 1, rebuilt 2)".into(),
        }));
        roundtrip_resp(Response::InjectOk);
        for err in [
            ServeError::BadFrame { detail: "x".into() },
            ServeError::AuthFailed,
            ServeError::BadRequest { detail: "y".into() },
            ServeError::DeadlineExceeded { budget_ms: 5 },
            ServeError::Overloaded { retry_after_ms: 9 },
            ServeError::CircuitOpen { retry_after_ms: 11 },
            ServeError::Degraded {
                mode: ServeMode::ReadOnly,
            },
            ServeError::Integrity {
                detail: "node".into(),
            },
            ServeError::Unavailable {
                detail: "gone".into(),
            },
            ServeError::Internal {
                detail: "bug".into(),
            },
        ] {
            roundtrip_resp(Response::Err(err));
        }
    }

    #[test]
    fn truncated_payloads_are_typed() {
        let enc = Request::Write {
            addr: 1,
            deadline_ms: 2,
            data: [7; 64],
        }
        .encode();
        for cut in 1..enc.len() {
            let err = Request::decode(&enc[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail decode");
        }
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(ProtoError::UnknownOpcode(0x7F))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Request::Flush.encode();
        enc.push(0);
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn forged_batch_count_rejected_without_allocation() {
        let mut e = vec![OP_WRITE_BATCH];
        e.extend_from_slice(&0u32.to_le_bytes());
        e.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Request::decode(&e), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(ServeError::AuthFailed.kind(), "auth_failed");
        assert_eq!(
            ServeError::Overloaded { retry_after_ms: 1 }.kind(),
            "overloaded"
        );
        assert_eq!(
            ServeError::Degraded {
                mode: ServeMode::ReadOnly
            }
            .kind(),
            "degraded"
        );
    }
}
