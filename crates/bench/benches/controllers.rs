//! Micro-benchmarks for the memory-controller data paths: the
//! simulator-side cost of one read/write per scheme (not the modeled NVM
//! time — the host cost of simulating it). Run with
//! `cargo bench -p anubis-bench`.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_bench::time_case;
use anubis_nvm::Block;
use std::hint::black_box;

fn main() {
    let config = AnubisConfig::small_test();

    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, &config);
        let mut i = 0u64;
        time_case(&format!("bonsai_write/{}", scheme.name()), 20_000, || {
            i = (i + 97) % 4000;
            ctrl.write(DataAddr::new(black_box(i)), Block::filled(i as u8))
                .unwrap();
        });
    }

    for scheme in [BonsaiScheme::WriteBack, BonsaiScheme::AgitPlus] {
        let mut ctrl = BonsaiController::new(scheme, &config);
        for i in 0..1000u64 {
            ctrl.write(DataAddr::new(i), Block::filled(i as u8))
                .unwrap();
        }
        let mut i = 0u64;
        time_case(&format!("bonsai_read/{}", scheme.name()), 20_000, || {
            i = (i + 131) % 1000;
            ctrl.read(DataAddr::new(black_box(i))).unwrap();
        });
    }

    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, &config);
        let mut i = 0u64;
        time_case(&format!("sgx_write/{}", scheme.name()), 20_000, || {
            i = (i + 97) % 4000;
            ctrl.write(DataAddr::new(black_box(i)), Block::filled(i as u8))
                .unwrap();
        });
    }
}
