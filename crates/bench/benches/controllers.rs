//! Criterion micro-benchmarks for the memory-controller data paths: the
//! simulator-side cost of one read/write per scheme (not the modeled NVM
//! time — the host cost of simulating it).

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::Block;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_bonsai_write(c: &mut Criterion) {
    let config = AnubisConfig::small_test();
    let mut group = c.benchmark_group("bonsai_write");
    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, &config);
        let mut i = 0u64;
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                i = (i + 97) % 4000;
                ctrl.write(DataAddr::new(black_box(i)), Block::filled(i as u8)).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_bonsai_read(c: &mut Criterion) {
    let config = AnubisConfig::small_test();
    let mut group = c.benchmark_group("bonsai_read");
    for scheme in [BonsaiScheme::WriteBack, BonsaiScheme::AgitPlus] {
        let mut ctrl = BonsaiController::new(scheme, &config);
        for i in 0..1000u64 {
            ctrl.write(DataAddr::new(i), Block::filled(i as u8)).unwrap();
        }
        let mut i = 0u64;
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                i = (i + 131) % 1000;
                ctrl.read(DataAddr::new(black_box(i))).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_sgx_write(c: &mut Criterion) {
    let config = AnubisConfig::small_test();
    let mut group = c.benchmark_group("sgx_write");
    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, &config);
        let mut i = 0u64;
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                i = (i + 97) % 4000;
                ctrl.write(DataAddr::new(black_box(i)), Block::filled(i as u8)).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bonsai_write, bench_bonsai_read, bench_sgx_write);
criterion_main!(benches);
