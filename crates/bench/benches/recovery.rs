//! Benchmarks for the recovery paths themselves: simulate a crash after a
//! fixed workload and measure host-side recovery cost per scheme (the
//! modeled 100 ns/op figures come from the harness binaries; this tracks
//! the simulator's own efficiency and the relative op counts). Run with
//! `cargo bench -p anubis-bench`.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_bench::time_case_batched;
use anubis_nvm::Block;

fn dirty_bonsai(scheme: BonsaiScheme) -> BonsaiController {
    let config = AnubisConfig::small_test();
    let mut c = BonsaiController::new(scheme, &config);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 13 % 2000), Block::filled(i as u8))
            .unwrap();
    }
    c.crash();
    c
}

fn dirty_sgx() -> SgxController {
    let config = AnubisConfig::small_test();
    let mut c = SgxController::new(SgxScheme::Asit, &config);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 13 % 2000), Block::filled(i as u8))
            .unwrap();
    }
    c.crash();
    c
}

fn main() {
    for scheme in [
        BonsaiScheme::Osiris,
        BonsaiScheme::AgitRead,
        BonsaiScheme::AgitPlus,
    ] {
        time_case_batched(
            &format!("recovery/{}", scheme.name()),
            20,
            || dirty_bonsai(scheme),
            |mut ctrl| {
                ctrl.recover().expect("recovers");
            },
        );
    }
    time_case_batched("recovery/asit", 20, dirty_sgx, |mut ctrl| {
        ctrl.recover().expect("recovers");
    });
}
