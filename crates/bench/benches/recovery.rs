//! Criterion benchmarks for the recovery paths themselves: simulate a
//! crash after a fixed workload and measure host-side recovery cost per
//! scheme (the modeled 100 ns/op figures come from the harness binaries;
//! this tracks the simulator's own efficiency and the relative op
//! counts).

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_nvm::Block;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn dirty_bonsai(scheme: BonsaiScheme) -> BonsaiController {
    let config = AnubisConfig::small_test();
    let mut c = BonsaiController::new(scheme, &config);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 13 % 2000), Block::filled(i as u8)).unwrap();
    }
    c.crash();
    c
}

fn dirty_sgx() -> SgxController {
    let config = AnubisConfig::small_test();
    let mut c = SgxController::new(SgxScheme::Asit, &config);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 13 % 2000), Block::filled(i as u8)).unwrap();
    }
    c.crash();
    c
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    for scheme in [BonsaiScheme::Osiris, BonsaiScheme::AgitRead, BonsaiScheme::AgitPlus] {
        group.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || dirty_bonsai(scheme),
                |mut ctrl| ctrl.recover().expect("recovers"),
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("asit", |b| {
        b.iter_batched(
            dirty_sgx,
            |mut ctrl| ctrl.recover().expect("recovers"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
