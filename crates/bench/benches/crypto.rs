//! Criterion micro-benchmarks for the cryptographic substrate: the
//! per-operation primitives whose latencies the timing model abstracts
//! as `read_ns`/`hash_ns` constants.

use anubis_crypto::{ecc, hash::Hasher64, otp, DataCodec, Key, SplitCounterBlock};
use anubis_nvm::{Block, BlockAddr};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_speck_pad(c: &mut Criterion) {
    let key = Key([1, 2]).derive("encryption");
    c.bench_function("otp_pad_64B", |b| {
        b.iter(|| otp::pad(black_box(key), BlockAddr::new(1234), otp::IvCounter::split(7, 9)))
    });
}

fn bench_hash(c: &mut Criterion) {
    let h = Hasher64::new(Key([3, 4]));
    let block = Block::filled(0x5A);
    c.bench_function("hash64_64B", |b| b.iter(|| h.hash(black_box(block.as_bytes()))));
}

fn bench_ecc(c: &mut Criterion) {
    let block = Block::filled(0xA5);
    c.bench_function("ecc_block_64B", |b| b.iter(|| ecc::ecc_block(black_box(&block))));
}

fn bench_seal_open(c: &mut Criterion) {
    let codec = DataCodec::new(Key([5, 6]));
    let addr = BlockAddr::new(42);
    let ctr = otp::IvCounter::split(1, 3);
    let pt = Block::filled(0x33);
    let sealed = codec.seal(addr, ctr, &pt);
    c.bench_function("codec_seal", |b| b.iter(|| codec.seal(addr, ctr, black_box(&pt))));
    c.bench_function("codec_open", |b| b.iter(|| codec.open(addr, ctr, black_box(&sealed))));
    c.bench_function("osiris_probe_miss", |b| {
        b.iter(|| codec.probe(addr, otp::IvCounter::split(1, 4), black_box(&sealed)))
    });
}

fn bench_counter_pack(c: &mut Criterion) {
    let mut ctr = SplitCounterBlock::new();
    for i in 0..64 {
        ctr.increment(i);
    }
    c.bench_function("split_counter_pack_unpack", |b| {
        b.iter(|| SplitCounterBlock::from_block(black_box(&ctr.to_block())))
    });
}

criterion_group!(
    benches,
    bench_speck_pad,
    bench_hash,
    bench_ecc,
    bench_seal_open,
    bench_counter_pack
);
criterion_main!(benches);
