//! Micro-benchmarks for the cryptographic substrate: the per-operation
//! primitives whose latencies the timing model abstracts as
//! `read_ns`/`hash_ns` constants. Run with `cargo bench -p anubis-bench`.

use anubis_bench::time_case;
use anubis_crypto::{ecc, hash::Hasher64, otp, DataCodec, Key, SplitCounterBlock};
use anubis_nvm::{Block, BlockAddr};
use std::hint::black_box;

fn main() {
    let key = Key([1, 2]).derive("encryption");
    time_case("otp_pad_64B", 100_000, || {
        black_box(otp::pad(
            black_box(key),
            BlockAddr::new(1234),
            otp::IvCounter::split(7, 9),
        ));
    });

    let h = Hasher64::new(Key([3, 4]));
    let block = Block::filled(0x5A);
    time_case("hash64_64B", 100_000, || {
        black_box(h.hash(black_box(block.as_bytes())));
    });

    let ecc_in = Block::filled(0xA5);
    time_case("ecc_block_64B", 100_000, || {
        black_box(ecc::ecc_block(black_box(&ecc_in)));
    });

    let codec = DataCodec::new(Key([5, 6]));
    let addr = BlockAddr::new(42);
    let ctr = otp::IvCounter::split(1, 3);
    let pt = Block::filled(0x33);
    let sealed = codec.seal(addr, ctr, &pt);
    time_case("codec_seal", 100_000, || {
        black_box(codec.seal(addr, ctr, black_box(&pt)));
    });
    time_case("codec_open", 100_000, || {
        black_box(codec.open(addr, ctr, black_box(&sealed)).unwrap());
    });
    time_case("osiris_probe_miss", 100_000, || {
        black_box(codec.probe(addr, otp::IvCounter::split(1, 4), black_box(&sealed)));
    });

    let mut ctr_block = SplitCounterBlock::new();
    for i in 0..64 {
        ctr_block.increment(i);
    }
    time_case("split_counter_pack_unpack", 100_000, || {
        black_box(SplitCounterBlock::from_block(black_box(
            &ctr_block.to_block(),
        )));
    });
}
