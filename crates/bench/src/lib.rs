//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary accepts `--smoke` (or `ANUBIS_SMOKE=1`) to run at reduced
//! trace length for quick checks; the default is the full figure scale.
//! Run with `--release` — the full figures replay 200 k operations per
//! (workload, scheme) pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anubis_sim::experiments::Scale;

/// Resolves the run scale from CLI args and the environment.
///
/// `--smoke` or `ANUBIS_SMOKE=1` selects the reduced scale; `--ops N`
/// overrides the operation count explicitly.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = if args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
    {
        Scale::smoke()
    } else {
        Scale::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--ops") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.ops = n;
        }
    }
    scale
}

/// Standard banner printed by every figure binary.
pub fn banner(figure: &str, what: &str, scale: Scale) {
    println!("== Anubis reproduction :: {figure} ==");
    println!("{what}");
    println!(
        "(trace length: {} ops per run, seed {})\n",
        scale.ops, scale.seed
    );
}

/// A minimal wall-clock micro-benchmark: warm up, time `iters` calls of
/// `f`, and print ns/op. Used by the `benches/` targets so the workspace
/// needs no external benchmark framework (the repo must build offline).
pub fn time_case(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

/// Like [`time_case`] but rebuilds fresh state before every timed call via
/// `setup` (for one-shot operations such as crash recovery); setup time is
/// excluded from the reported figure.
pub fn time_case_batched<S>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S),
) {
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let state = setup();
        let start = std::time::Instant::now();
        f(state);
        total += start.elapsed();
    }
    let ns = total.as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

/// Minimal JSON document builder for the machine-readable baseline files
/// (`BENCH_recovery.json`, `BENCH_throughput.json`). The workspace builds
/// offline, so no serde — this covers exactly the shapes the harnesses
/// emit.
pub mod json {
    /// A JSON value.
    ///
    /// Besides rendering, the module also parses the documents it emits
    /// (see [`parse`]) so harnesses can diff a fresh run against a
    /// committed baseline — the `bench_hotpath --check` regression gate.
    #[derive(Clone, Debug)]
    pub enum Json {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// An integer (emitted without a decimal point).
        Int(u64),
        /// A float (emitted with enough digits to round-trip).
        Num(f64),
        /// A string (escaped on render).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience: an object from `(key, value)` pairs.
        pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }

        /// Renders the value as pretty-printed JSON with a trailing newline.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(n) => out.push_str(&n.to_string()),
                Json::Num(x) => {
                    if x.is_finite() {
                        // `{:?}` prints the shortest representation that
                        // round-trips, and always includes a decimal point.
                        out.push_str(&format!("{x:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.write(out, depth + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push(']');
                }
                Json::Obj(pairs) => {
                    if pairs.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        out.push_str(&pad);
                        Json::Str(k.clone()).write(out, depth + 1);
                        out.push_str(": ");
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push('}');
                }
            }
        }

        /// Object field lookup (`None` for non-objects / missing keys).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value (`Int` or `Num`), if any.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Int(n) => Some(*n as f64),
                Json::Num(x) => Some(*x),
                _ => None,
            }
        }
    }

    /// Parses a JSON document (the subset [`Json`] renders: no scientific
    /// notation is produced by the writer, but the parser accepts it).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, b':')?;
                    let value = parse_value(b, pos)?;
                    pairs.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Json::Null)
            }
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut s = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = &b[*pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Telemetry plumbing shared by the harness binaries: every bin enables
/// the process-global registry, runs its experiment (controllers publish
/// into the registry by default), and drops a `TELEMETRY_<name>.jsonl`
/// artifact next to its JSON/console output.
pub mod telemetry {
    use anubis::telemetry::{Registry, Telemetry, TELEMETRY_ENV};
    use std::path::{Path, PathBuf};

    /// Enables the process-global registry for this harness run and
    /// returns the handle controllers default to. `ANUBIS_TELEMETRY=0`
    /// opts out explicitly (e.g. to time an uninstrumented run); any
    /// other value — including unset — records, because emitting the
    /// telemetry artifact is part of every bin's contract.
    pub fn start() -> Telemetry {
        let opted_out = std::env::var(TELEMETRY_ENV)
            .map(|v| v == "0")
            .unwrap_or(false);
        if opted_out {
            return Telemetry::off();
        }
        Registry::global().set_enabled(true);
        Telemetry::global()
    }

    /// `TELEMETRY_<name>.jsonl` in the same directory as `out` (the bin's
    /// `BENCH_*.json` path), so artifacts travel together.
    pub fn sibling_path(out: &Path, name: &str) -> PathBuf {
        let dir = out.parent().unwrap_or_else(|| Path::new("."));
        dir.join(format!("TELEMETRY_{name}.jsonl"))
    }

    /// Takes a final snapshot and writes it plus every completed span as
    /// JSON lines at `path`. Returns `true` when the artifact was written,
    /// `false` when telemetry is off/disabled (nothing to write — the
    /// zero-cost path leaves no file rather than an empty one).
    pub fn write_jsonl(t: &Telemetry, path: &Path) -> std::io::Result<bool> {
        let Some(reg) = t.registry() else {
            return Ok(false);
        };
        let mut out = reg.snapshot().to_jsonl();
        out.push_str(&reg.spans_jsonl());
        std::fs::write(path, out)?;
        Ok(true)
    }

    /// [`write_jsonl`] with the standard naming + console note; harness
    /// bins call this once, right before exiting.
    pub fn finish(t: &Telemetry, out: &Path, name: &str) {
        let path = sibling_path(out, name);
        match write_jsonl(t, &path) {
            Ok(true) => println!("telemetry: wrote {}", path.display()),
            Ok(false) => {}
            Err(e) => eprintln!("telemetry: could not write {}: {e}", path.display()),
        }
    }
}

/// The host's available parallelism, recorded in the baseline JSON so a
/// speedup of ~1x on a single-core runner is interpretable.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The toolchain version that built/ran the benchmark (`rustc --version`
/// of the toolchain on `PATH`; `"unknown"` if it cannot be queried).
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The CPU model name from `/proc/cpuinfo` (`"unknown"` off Linux or when
/// the field is absent).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The standard `"host"` header object every `BENCH_*.json` carries:
/// toolchain, CPU model and available core count, so a committed baseline
/// states the machine its numbers came from.
pub fn host_info_json() -> json::Json {
    json::Json::obj(vec![
        ("rustc", json::Json::Str(rustc_version())),
        ("cpu_model", json::Json::Str(cpu_model())),
        ("cores", json::Json::Int(host_parallelism() as u64)),
    ])
}

/// Prints a loud warning when the host has a single available core —
/// `speedup_vs_serial` figures are meaningless without real parallelism.
/// Returns `true` when the warning fired (for tests).
pub fn warn_if_single_core() -> bool {
    if host_parallelism() > 1 {
        return false;
    }
    eprintln!("+----------------------------------------------------------------+");
    eprintln!("| WARNING: only 1 core available on this host.                   |");
    eprintln!("| Threaded lanes serialize onto one CPU, so any                  |");
    eprintln!("| speedup_vs_serial recorded in this run is meaningless.         |");
    eprintln!("| Re-run on a multi-core host before comparing speedups.         |");
    eprintln!("+----------------------------------------------------------------+");
    true
}

/// Parses `--out PATH` from the CLI, defaulting to `default` in the
/// current directory.
pub fn out_path_from_args(default: &str) -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|pos| args.get(pos + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(default))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Cargo test harness args contain no --smoke.
        std::env::remove_var("ANUBIS_SMOKE");
        let s = scale_from_args();
        assert!(s.ops >= Scale::smoke().ops);
    }

    #[test]
    fn json_parse_roundtrips_rendered_documents() {
        use json::Json;
        let doc = Json::obj(vec![
            ("name", Json::Str("hotpath \"x\"\n".into())),
            ("count", Json::Int(42)),
            ("ns", Json::Num(17.25)),
            ("neg", Json::Num(-0.5)),
            ("on", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("nothing", Json::Null),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj(vec![("a", Json::Int(1))]),
                    Json::obj(vec![("a", Json::Num(2.5))]),
                ]),
            ),
        ]);
        let parsed = json::parse(&doc.render()).expect("parse own output");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("hotpath \"x\"\n")
        );
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(parsed.get("ns").and_then(Json::as_f64), Some(17.25));
        assert_eq!(parsed.get("neg").and_then(Json::as_f64), Some(-0.5));
        let rows = parsed.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("a").and_then(Json::as_f64), Some(2.5));
        // Render → parse → render is a fixed point.
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }

    #[test]
    fn host_info_has_all_fields() {
        let info = host_info_json();
        assert!(info.get("rustc").and_then(json::Json::as_str).is_some());
        assert!(info.get("cpu_model").and_then(json::Json::as_str).is_some());
        assert!(info.get("cores").and_then(json::Json::as_f64).unwrap() >= 1.0);
    }

    #[test]
    fn json_renders_stable_shapes() {
        use json::Json;
        let doc = Json::obj(vec![
            ("name", Json::Str("osiris \"sweep\"".into())),
            ("lanes", Json::Int(4)),
            ("speedup", Json::Num(1.5)),
            ("identical", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
            ("list", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"osiris \\\"sweep\\\"\""));
        assert!(text.contains("\"speedup\": 1.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
