//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary accepts `--smoke` (or `ANUBIS_SMOKE=1`) to run at reduced
//! trace length for quick checks; the default is the full figure scale.
//! Run with `--release` — the full figures replay 200 k operations per
//! (workload, scheme) pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anubis_sim::experiments::Scale;

/// Resolves the run scale from CLI args and the environment.
///
/// `--smoke` or `ANUBIS_SMOKE=1` selects the reduced scale; `--ops N`
/// overrides the operation count explicitly.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = if args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
    {
        Scale::smoke()
    } else {
        Scale::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--ops") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.ops = n;
        }
    }
    scale
}

/// Standard banner printed by every figure binary.
pub fn banner(figure: &str, what: &str, scale: Scale) {
    println!("== Anubis reproduction :: {figure} ==");
    println!("{what}");
    println!(
        "(trace length: {} ops per run, seed {})\n",
        scale.ops, scale.seed
    );
}

/// A minimal wall-clock micro-benchmark: warm up, time `iters` calls of
/// `f`, and print ns/op. Used by the `benches/` targets so the workspace
/// needs no external benchmark framework (the repo must build offline).
pub fn time_case(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

/// Like [`time_case`] but rebuilds fresh state before every timed call via
/// `setup` (for one-shot operations such as crash recovery); setup time is
/// excluded from the reported figure.
pub fn time_case_batched<S>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S),
) {
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let state = setup();
        let start = std::time::Instant::now();
        f(state);
        total += start.elapsed();
    }
    let ns = total.as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

/// Minimal JSON document builder for the machine-readable baseline files
/// (`BENCH_recovery.json`, `BENCH_throughput.json`). The workspace builds
/// offline, so no serde — this covers exactly the shapes the harnesses
/// emit.
pub mod json {
    /// A JSON value.
    #[derive(Clone, Debug)]
    pub enum Json {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// An integer (emitted without a decimal point).
        Int(u64),
        /// A float (emitted with enough digits to round-trip).
        Num(f64),
        /// A string (escaped on render).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience: an object from `(key, value)` pairs.
        pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }

        /// Renders the value as pretty-printed JSON with a trailing newline.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out.push('\n');
            out
        }

        fn write(&self, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(n) => out.push_str(&n.to_string()),
                Json::Num(x) => {
                    if x.is_finite() {
                        // `{:?}` prints the shortest representation that
                        // round-trips, and always includes a decimal point.
                        out.push_str(&format!("{x:?}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.write(out, depth + 1);
                        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push(']');
                }
                Json::Obj(pairs) => {
                    if pairs.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push_str("{\n");
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        out.push_str(&pad);
                        Json::Str(k.clone()).write(out, depth + 1);
                        out.push_str(": ");
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push('}');
                }
            }
        }
    }
}

/// Telemetry plumbing shared by the harness binaries: every bin enables
/// the process-global registry, runs its experiment (controllers publish
/// into the registry by default), and drops a `TELEMETRY_<name>.jsonl`
/// artifact next to its JSON/console output.
pub mod telemetry {
    use anubis::telemetry::{Registry, Telemetry, TELEMETRY_ENV};
    use std::path::{Path, PathBuf};

    /// Enables the process-global registry for this harness run and
    /// returns the handle controllers default to. `ANUBIS_TELEMETRY=0`
    /// opts out explicitly (e.g. to time an uninstrumented run); any
    /// other value — including unset — records, because emitting the
    /// telemetry artifact is part of every bin's contract.
    pub fn start() -> Telemetry {
        let opted_out = std::env::var(TELEMETRY_ENV)
            .map(|v| v == "0")
            .unwrap_or(false);
        if opted_out {
            return Telemetry::off();
        }
        Registry::global().set_enabled(true);
        Telemetry::global()
    }

    /// `TELEMETRY_<name>.jsonl` in the same directory as `out` (the bin's
    /// `BENCH_*.json` path), so artifacts travel together.
    pub fn sibling_path(out: &Path, name: &str) -> PathBuf {
        let dir = out.parent().unwrap_or_else(|| Path::new("."));
        dir.join(format!("TELEMETRY_{name}.jsonl"))
    }

    /// Takes a final snapshot and writes it plus every completed span as
    /// JSON lines at `path`. Returns `true` when the artifact was written,
    /// `false` when telemetry is off/disabled (nothing to write — the
    /// zero-cost path leaves no file rather than an empty one).
    pub fn write_jsonl(t: &Telemetry, path: &Path) -> std::io::Result<bool> {
        let Some(reg) = t.registry() else {
            return Ok(false);
        };
        let mut out = reg.snapshot().to_jsonl();
        out.push_str(&reg.spans_jsonl());
        std::fs::write(path, out)?;
        Ok(true)
    }

    /// [`write_jsonl`] with the standard naming + console note; harness
    /// bins call this once, right before exiting.
    pub fn finish(t: &Telemetry, out: &Path, name: &str) {
        let path = sibling_path(out, name);
        match write_jsonl(t, &path) {
            Ok(true) => println!("telemetry: wrote {}", path.display()),
            Ok(false) => {}
            Err(e) => eprintln!("telemetry: could not write {}: {e}", path.display()),
        }
    }
}

/// The host's available parallelism, recorded in the baseline JSON so a
/// speedup of ~1x on a single-core runner is interpretable.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses `--out PATH` from the CLI, defaulting to `default` in the
/// current directory.
pub fn out_path_from_args(default: &str) -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|pos| args.get(pos + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(default))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Cargo test harness args contain no --smoke.
        std::env::remove_var("ANUBIS_SMOKE");
        let s = scale_from_args();
        assert!(s.ops >= Scale::smoke().ops);
    }

    #[test]
    fn json_renders_stable_shapes() {
        use json::Json;
        let doc = Json::obj(vec![
            ("name", Json::Str("osiris \"sweep\"".into())),
            ("lanes", Json::Int(4)),
            ("speedup", Json::Num(1.5)),
            ("identical", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
            ("list", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"osiris \\\"sweep\\\"\""));
        assert!(text.contains("\"speedup\": 1.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
