//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary accepts `--smoke` (or `ANUBIS_SMOKE=1`) to run at reduced
//! trace length for quick checks; the default is the full figure scale.
//! Run with `--release` — the full figures replay 200 k operations per
//! (workload, scheme) pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anubis_sim::experiments::Scale;

/// Resolves the run scale from CLI args and the environment.
///
/// `--smoke` or `ANUBIS_SMOKE=1` selects the reduced scale; `--ops N`
/// overrides the operation count explicitly.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = if args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE").map(|v| v == "1").unwrap_or(false)
    {
        Scale::smoke()
    } else {
        Scale::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--ops") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.ops = n;
        }
    }
    scale
}

/// Standard banner printed by every figure binary.
pub fn banner(figure: &str, what: &str, scale: Scale) {
    println!("== Anubis reproduction :: {figure} ==");
    println!("{what}");
    println!("(trace length: {} ops per run, seed {})\n", scale.ops, scale.seed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Cargo test harness args contain no --smoke.
        std::env::remove_var("ANUBIS_SMOKE");
        let s = scale_from_args();
        assert!(s.ops >= Scale::smoke().ops);
    }
}
