//! Shared plumbing for the per-figure harness binaries.
//!
//! Every binary accepts `--smoke` (or `ANUBIS_SMOKE=1`) to run at reduced
//! trace length for quick checks; the default is the full figure scale.
//! Run with `--release` — the full figures replay 200 k operations per
//! (workload, scheme) pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anubis_sim::experiments::Scale;

/// Resolves the run scale from CLI args and the environment.
///
/// `--smoke` or `ANUBIS_SMOKE=1` selects the reduced scale; `--ops N`
/// overrides the operation count explicitly.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = if args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
    {
        Scale::smoke()
    } else {
        Scale::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--ops") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            scale.ops = n;
        }
    }
    scale
}

/// Standard banner printed by every figure binary.
pub fn banner(figure: &str, what: &str, scale: Scale) {
    println!("== Anubis reproduction :: {figure} ==");
    println!("{what}");
    println!(
        "(trace length: {} ops per run, seed {})\n",
        scale.ops, scale.seed
    );
}

/// A minimal wall-clock micro-benchmark: warm up, time `iters` calls of
/// `f`, and print ns/op. Used by the `benches/` targets so the workspace
/// needs no external benchmark framework (the repo must build offline).
pub fn time_case(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

/// Like [`time_case`] but rebuilds fresh state before every timed call via
/// `setup` (for one-shot operations such as crash recovery); setup time is
/// excluded from the reported figure.
pub fn time_case_batched<S>(
    name: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S),
) {
    let mut total = std::time::Duration::ZERO;
    for _ in 0..iters {
        let state = setup();
        let start = std::time::Instant::now();
        f(state);
        total += start.elapsed();
    }
    let ns = total.as_nanos() as f64 / f64::from(iters.max(1));
    println!("{name:<32} {ns:>12.1} ns/op");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Cargo test harness args contain no --smoke.
        std::env::remove_var("ANUBIS_SMOKE");
        let s = scale_from_args();
        assert!(s.ops >= Scale::smoke().ops);
    }
}
