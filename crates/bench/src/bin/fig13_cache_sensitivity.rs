//! Figure 13: performance sensitivity to metadata cache size for the
//! recoverable schemes (AGIT-Read, AGIT-Plus, ASIT), normalized to the
//! write-back baseline *at the same cache size*.

use anubis::AnubisConfig;
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::cache_sensitivity;
use anubis_sim::{Table, TimingModel};
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Figure 13",
        "Normalized performance vs cache size (write-back at same size = 1.00)",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|kb| kb << 10)
        .collect();

    // The paper sweeps a representative subset; we use three workloads
    // spanning the intensity range.
    for spec in [spec2006::mcf(), spec2006::libquantum(), spec2006::milc()] {
        println!("workload: {}", spec.name);
        let points = cache_sensitivity(&spec, &config, &sizes, &model, scale).expect("sweep");
        let mut table = Table::new(vec![
            "cache".into(),
            "agit-read".into(),
            "agit-plus".into(),
            "asit".into(),
            "write-back ms".into(),
        ]);
        for p in &points {
            let mut cells = vec![format!("{} KB", p.cache_bytes >> 10)];
            for (_, n) in &p.normalized {
                cells.push(format!("{n:.3}"));
            }
            cells.push(format!("{:.2}", p.write_back_ns / 1e6));
            table.row(cells);
        }
        println!("{table}");
    }
    println!(
        "paper reference: overheads shrink with cache size and flatten beyond ~1 MB;\n\
         ASIT is the least sensitive (its extra writes track data writes, not locality)."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "fig13_cache_sensitivity",
    );
}
