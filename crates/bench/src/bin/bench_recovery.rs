//! Machine-readable recovery benchmark: wall-clock recovery time per
//! scheme at 1/2/4/8 lanes, with a bit-identity check against the serial
//! path.
//!
//! Emits `BENCH_recovery.json` (override with `--out PATH`). Exit code 1
//! if any lane count produces a `RecoveryReport` that differs from the
//! serial one — the determinism contract of `anubis::parallel`.
//!
//! The committed baseline records `host_parallelism`; on a single-core
//! runner the speedups are necessarily ~1x and the file still documents
//! the (bit-identical) engine behaviour.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, MemoryController, RecoveryReport, SgxController,
    SgxScheme,
};
use anubis_bench::json::Json;
use anubis_bench::{host_parallelism, out_path_from_args};
use anubis_sim::{run_trace, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};
use std::time::Instant;

const LANE_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Measured {
    lanes: usize,
    best_ns: f64,
    report: RecoveryReport,
    identical_to_serial: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
    let (capacity, dirty_ops, reps) = if smoke {
        (4u64 << 20, 3_000usize, 2u32)
    } else {
        (32u64 << 20, 40_000usize, 5u32)
    };
    let config = AnubisConfig::small_test()
        .with_capacity(capacity)
        .with_cache_bytes(32 << 10);
    let trace =
        TraceGenerator::new(spec2006::milc(), config.capacity_bytes).generate(dirty_ops, 1907);

    println!("== Anubis reproduction :: recovery benchmark ==");
    println!(
        "capacity {} MiB, {} dirtying ops, best of {reps}, host parallelism {}",
        capacity >> 20,
        trace.len(),
        host_parallelism()
    );

    // Controllers default to the global registry, so enabling it here
    // lights up phase/lane spans for every timed recovery below. The
    // recovery wall-clocks are not regression-gated against a committed
    // baseline (throughput is), so recording during the timed loops is
    // fine — and gives the artifact real data.
    let telemetry = anubis_bench::telemetry::start();
    let mut diverged = false;
    let mut cases = Vec::new();

    // Osiris: whole-memory sweep (Figure 12's worst case) — every counter
    // block counter-trialled, whole tree rebuilt bottom-up.
    {
        let mut ctrl = BonsaiController::new(BonsaiScheme::Osiris, &config);
        run_trace(&mut ctrl, &trace, &TimingModel::paper()).expect("dirtying replay");
        ctrl.crash();
        let rows = measure(reps, &LANE_COUNTS, |lanes| {
            let mut c = ctrl.clone();
            let t0 = Instant::now();
            let report = c.recover_with_lanes(lanes).expect("osiris recovery");
            (t0.elapsed().as_nanos() as f64, report)
        });
        diverged |= rows.iter().any(|r| !r.identical_to_serial);
        cases.push(case_json("osiris", "whole-memory sweep (fig12)", &rows));
    }

    // AGIT+: tracked-leaf repair, O(cache).
    {
        let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
        run_trace(&mut ctrl, &trace, &TimingModel::paper()).expect("dirtying replay");
        ctrl.crash();
        let rows = measure(reps, &LANE_COUNTS, |lanes| {
            let mut c = ctrl.clone();
            let t0 = Instant::now();
            let report = c.recover_with_lanes(lanes).expect("agit recovery");
            (t0.elapsed().as_nanos() as f64, report)
        });
        diverged |= rows.iter().any(|r| !r.identical_to_serial);
        cases.push(case_json("agit-plus", "shadow-tracked leaf repair", &rows));
    }

    // ASIT: shadow-table verification + splice, O(cache).
    {
        let mut ctrl = SgxController::new(SgxScheme::Asit, &config);
        run_trace(&mut ctrl, &trace, &TimingModel::paper()).expect("dirtying replay");
        ctrl.crash();
        let rows = measure(reps, &LANE_COUNTS, |lanes| {
            let mut c = ctrl.clone();
            let t0 = Instant::now();
            let report = c.recover_with_lanes(lanes).expect("asit recovery");
            (t0.elapsed().as_nanos() as f64, report)
        });
        diverged |= rows.iter().any(|r| !r.identical_to_serial);
        cases.push(case_json("asit", "shadow-table verify + splice", &rows));
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("recovery".into())),
        ("host", anubis_bench::host_info_json()),
        ("host_parallelism", Json::Int(host_parallelism() as u64)),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::obj(vec![
                ("capacity_bytes", Json::Int(capacity)),
                ("cache_bytes", Json::Int(32 << 10)),
                ("dirty_ops", Json::Int(trace.len() as u64)),
                ("reps", Json::Int(u64::from(reps))),
            ]),
        ),
        ("cases", Json::Arr(cases)),
    ]);
    let out = out_path_from_args("BENCH_recovery.json");
    std::fs::write(&out, doc.render()).expect("write baseline json");
    println!("wrote {}", out.display());
    anubis_bench::telemetry::finish(&telemetry, &out, "bench_recovery");

    if diverged {
        eprintln!("FAIL: parallel recovery diverged from serial");
        std::process::exit(1);
    }
    println!("all lane counts bit-identical to serial");
}

/// Times `run(lanes)` `reps` times per lane count (keeping the best) and
/// checks every report against the serial (lanes = 1) one.
fn measure(
    reps: u32,
    lane_counts: &[usize],
    run: impl Fn(usize) -> (f64, RecoveryReport),
) -> Vec<Measured> {
    let mut rows: Vec<Measured> = Vec::new();
    for &lanes in lane_counts {
        let mut best_ns = f64::INFINITY;
        let mut report = RecoveryReport::default();
        for _ in 0..reps {
            let (ns, r) = run(lanes);
            if ns < best_ns {
                best_ns = ns;
            }
            report = r;
        }
        let identical_to_serial = rows.first().map(|s| s.report == report).unwrap_or(true);
        rows.push(Measured {
            lanes,
            best_ns,
            report,
            identical_to_serial,
        });
    }
    rows
}

fn case_json(scheme: &str, mode: &str, rows: &[Measured]) -> Json {
    let serial_ns = rows[0].best_ns;
    let lanes = rows
        .iter()
        .map(|r| {
            let secs = r.best_ns / 1e9;
            let blocks = r.report.nvm_reads + r.report.nvm_writes;
            println!(
                "{scheme:>10} lanes={}: {:>12.0} ns, {:>9} report ops, speedup {:.2}x{}",
                r.lanes,
                r.best_ns,
                r.report.total_ops(),
                serial_ns / r.best_ns,
                if r.identical_to_serial {
                    ""
                } else {
                    "  ** DIVERGED **"
                }
            );
            Json::obj(vec![
                ("lanes", Json::Int(r.lanes as u64)),
                ("wall_ns", Json::Num(r.best_ns)),
                ("report_ops", Json::Int(r.report.total_ops())),
                (
                    "ns_per_op",
                    Json::Num(r.best_ns / r.report.total_ops().max(1) as f64),
                ),
                ("blocks_touched", Json::Int(blocks)),
                (
                    "blocks_per_s",
                    Json::Num(if secs > 0.0 {
                        blocks as f64 / secs
                    } else {
                        0.0
                    }),
                ),
                ("speedup_vs_serial", Json::Num(serial_ns / r.best_ns)),
                (
                    "report_identical_to_serial",
                    Json::Bool(r.identical_to_serial),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("scheme", Json::Str(scheme.into())),
        ("mode", Json::Str(mode.into())),
        ("lanes", Json::Arr(lanes)),
    ])
}
