//! Ablation: the Osiris stop-loss limit trades run-time counter-persist
//! traffic against recovery-time probe work. The paper fixes it at 4
//! (§6.1 scheme ③); this sweep shows why that is a reasonable spot.

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, MemoryController};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::{run_trace, Table, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Ablation: stop-loss limit",
        "Run-time overhead vs recovery probe work as the stop-loss limit varies",
        scale,
    );
    let model = TimingModel::paper();
    let trace_spec = spec2006::libquantum(); // most write-intensive: worst case

    let mut table = Table::new(vec![
        "stop-loss".into(),
        "norm. time".into(),
        "ctr writes/data-write".into(),
        "recovery ops".into(),
        "counters fixed".into(),
    ]);
    // Baseline for normalization: write-back at the same scale.
    let base_cfg = AnubisConfig::paper();
    let trace =
        TraceGenerator::new(trace_spec, base_cfg.capacity_bytes).generate(scale.ops, scale.seed);
    let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &base_cfg);
    let base = run_trace(&mut wb, &trace, &model).expect("baseline");

    for stop_loss in [1u8, 2, 4, 8, 16] {
        let cfg = AnubisConfig::paper().with_stop_loss(stop_loss);
        let mut ctrl = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let r = run_trace(&mut ctrl, &trace, &model).expect("replay");
        let ctr_writes = ctrl.domain().device().stats().writes_in("counters");
        let writes = ctrl.total_cost().writes.max(1);
        ctrl.crash();
        let report = ctrl.recover().expect("recovers");
        table.row(vec![
            stop_loss.to_string(),
            format!("{:.3}", r.normalized_to(&base)),
            format!("{:.3}", ctr_writes as f64 / writes as f64),
            report.total_ops().to_string(),
            report.counters_fixed.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: stop-loss 1 = strict counter persistence (max run-time\n\
         writes, zero probe work); larger limits cut counter writes but recovery\n\
         probes more candidates per counter. 4 sits near the knee — the paper's pick."
    );
    anubis_bench::telemetry::finish(&telemetry, std::path::Path::new("."), "ablation_stop_loss");
}
