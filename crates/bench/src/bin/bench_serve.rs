//! Multi-tenant serving chaos drill: concurrent tenant clients against a
//! child `anubis-serve` process, connection-layer fault injection,
//! SIGKILL at randomized ack thresholds, restart, and zero
//! acknowledged-write-loss verification with bounded time-to-healthy.
//!
//! Emits `BENCH_serve.json` (override with `--out PATH`). Exit code 1 on
//! any contract violation: an acknowledged write lost, an injected
//! connection fault that did not surface as a typed protocol error, or
//! a tenant that never returned to full serving mode.
//!
//! Knobs (all environment variables):
//!
//! | knob | default | meaning |
//! |---|---|---|
//! | `ANUBIS_SERVE_POINTS` | 100 | randomized kill points |
//! | `ANUBIS_SERVE_SEED` | `0xC4A05EED` | script + kill-threshold seed |
//! | `ANUBIS_SERVE_DIR` | `$TMPDIR/anubis-serve-chaos` | scratch for images |
//! | `ANUBIS_SERVE_SWEEP` | unset | `1` = exhaustive: one kill point per ack threshold |
//! | `ANUBIS_SERVE_FLEET` | 4 | concurrent tenants per point |
//!
//! The drill re-executes this binary with `--serve` as the victim server
//! process (configured through `ANUBIS_SERVE_*` knobs set by the
//! harness); the server is SIGKILLed mid-flight on purpose.

use std::path::PathBuf;
use std::process::ExitCode;

use anubis_bench::json::Json;
use anubis_bench::out_path_from_args;
use anubis_sim::chaos::{run_chaos_campaign, ChaosReport, ChaosSpec};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `--serve` victim mode: a plain `anubis-serve` daemon configured
/// from the environment, printing its listen address for the parent.
fn serve_child() -> ExitCode {
    use std::io::Write;
    let cfg = match anubis_server::ServeConfig::from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_serve --serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match anubis_server::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve --serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ANUBIS_SERVE_LISTENING {}", server.local_addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn report_json(r: &ChaosReport, seed: u64, sweep: bool) -> Json {
    let outcomes: Vec<Json> = r
        .outcomes
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("kill_after_acks", Json::Int(o.kill_after_acks)),
                ("acked", Json::Int(o.acked)),
                ("completed", Json::Bool(o.completed)),
                ("fault", Json::Str(o.fault.into())),
                ("time_to_healthy_ms", Json::Int(o.time_to_healthy_ms)),
                ("verified_addrs", Json::Int(o.verified_addrs)),
                ("inflight_tolerated", Json::Int(o.inflight_tolerated)),
            ])
        })
        .collect();
    let faults: Vec<Json> = r
        .fault_counts
        .iter()
        .map(|(k, v)| {
            Json::obj(vec![
                ("fault", Json::Str((*k).into())),
                ("injected", Json::Int(*v)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("benchmark", Json::Str("serve".into())),
        ("host", anubis_bench::host_info_json()),
        ("seed", Json::Int(seed)),
        ("sweep", Json::Bool(sweep)),
        ("points", Json::Int(r.points)),
        ("tenants", Json::Int(r.tenants)),
        ("acked_total", Json::Int(r.acked_total)),
        ("verified_total", Json::Int(r.verified_total)),
        ("acked_write_losses", Json::Int(0)),
        ("completed_runs", Json::Int(r.completed_runs)),
        ("inflight_tolerated", Json::Int(r.inflight_tolerated)),
        ("time_to_healthy_p50_ms", Json::Int(r.tth_p50_ms)),
        ("time_to_healthy_p95_ms", Json::Int(r.tth_p95_ms)),
        (
            "kill_range",
            Json::Arr(vec![Json::Int(r.kill_range.0), Json::Int(r.kill_range.1)]),
        ),
        ("connection_faults", Json::Arr(faults)),
        ("points_detail", Json::Arr(outcomes)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--serve") {
        return serve_child();
    }

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("serve drill: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let points = env_u64("ANUBIS_SERVE_POINTS", 100);
    let seed = env_u64("ANUBIS_SERVE_SEED", 0xC4A0_5EED);
    let sweep = std::env::var("ANUBIS_SERVE_SWEEP")
        .map(|v| v == "1")
        .unwrap_or(false);
    let dir = std::env::var_os("ANUBIS_SERVE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("anubis-serve-chaos"));
    let spec = ChaosSpec {
        seed,
        tenants: env_u64("ANUBIS_SERVE_FLEET", 4).max(1) as usize,
        ..ChaosSpec::default()
    };

    println!("== Anubis reproduction :: multi-tenant serving chaos drill ==");
    println!(
        "{points} kill points{}, {} tenants, seed {seed:#x}, scratch {}",
        if sweep { " (exhaustive sweep)" } else { "" },
        spec.tenants,
        dir.display()
    );

    let report = match run_chaos_campaign(&exe, &["--serve"], &spec, &dir, points, sweep) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve drill FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  {} points, {} acked writes verified ({} in-flight tolerated), \
         time-to-healthy p50 {} ms / p95 {} ms",
        report.points,
        report.verified_total,
        report.inflight_tolerated,
        report.tth_p50_ms,
        report.tth_p95_ms
    );
    for (fault, n) in &report.fault_counts {
        println!("  fault {fault:<22} injected {n}x, all typed");
    }

    let doc = report_json(&report, seed, sweep);
    let out = out_path_from_args("BENCH_serve.json");
    if let Err(e) = std::fs::write(&out, doc.render()) {
        eprintln!("serve drill: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{} kill points, {} acked writes verified, zero losses -> {}",
        report.points,
        report.verified_total,
        out.display()
    );
    ExitCode::SUCCESS
}
