//! Ablation: AGIT-Read (shadow on every metadata-cache fill) vs
//! AGIT-Plus (shadow on first modification) across the read/write
//! spectrum — locating the crossover the paper's MCF/LBM discussion
//! implies (§6.1).

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::{run_trace, Table, TimingModel};
use anubis_workloads::{TraceGenerator, WorkloadSpec};

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Ablation: shadow-update policy",
        "AGIT-Read vs AGIT-Plus overhead as the read fraction sweeps 10%..95%",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();

    let mut table = Table::new(vec![
        "read %".into(),
        "agit-read".into(),
        "agit-plus".into(),
        "read shadow wr".into(),
        "plus shadow wr".into(),
    ]);
    for read_pct in [10u32, 25, 50, 75, 90, 95] {
        let spec = WorkloadSpec::new("sweep")
            .read_fraction(read_pct as f64 / 100.0)
            .footprint_bytes(256 << 20)
            .zipf(0.7)
            .sequential(0.3)
            .gap_ns(80.0);
        let trace =
            TraceGenerator::new(spec, config.capacity_bytes).generate(scale.ops, scale.seed);
        let mut wb = BonsaiController::new(BonsaiScheme::WriteBack, &config);
        let base = run_trace(&mut wb, &trace, &model).expect("baseline");

        let mut row = vec![read_pct.to_string()];
        let mut shadow_writes = Vec::new();
        for scheme in [BonsaiScheme::AgitRead, BonsaiScheme::AgitPlus] {
            let mut ctrl = BonsaiController::new(scheme, &config);
            let r = run_trace(&mut ctrl, &trace, &model).expect("replay");
            row.push(format!("{:.3}", r.normalized_to(&base)));
            let stats = ctrl.domain().device().stats();
            shadow_writes.push(stats.writes_in("sct") + stats.writes_in("smt"));
        }
        row.push(shadow_writes[0].to_string());
        row.push(shadow_writes[1].to_string());
        table.row(row);
    }
    println!("{table}");
    println!(
        "expected shape: AGIT-Read's fill-triggered shadowing grows with read\n\
         intensity while AGIT-Plus stays flat — the paper's MCF observation,\n\
         generalized into a crossover curve."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "ablation_shadow_policy",
    );
}
