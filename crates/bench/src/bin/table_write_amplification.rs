//! Beyond-paper table: NVM write amplification (§6.2 discussion).
//!
//! The paper argues strict persistence "causes at least an additional ten
//! writes per memory write operation, which can significantly reduce the
//! lifetime of NVMs", while ASIT "only incurs one extra write operation
//! per memory write". This table measures writes-per-data-write for every
//! scheme, plus the worst single-block wear the device saw.

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::{run_trace, Table, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Write amplification (paper §6.2 claims)",
        "NVM writes per data write and worst-block wear, libquantum trace",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();
    let trace = TraceGenerator::new(spec2006::libquantum(), config.capacity_bytes)
        .generate(scale.ops, scale.seed);

    let mut table = Table::new(vec![
        "scheme".into(),
        "writes/data-write".into(),
        "max wear (1 block)".into(),
        "shadow writes".into(),
    ]);
    for scheme in BonsaiScheme::all_with_extras() {
        let mut c = BonsaiController::new(scheme, &config);
        let r = run_trace(&mut c, &trace, &model).expect("replay");
        let stats = c.domain().device().stats();
        let shadow = stats.writes_in("sct") + stats.writes_in("smt");
        table.row(vec![
            r.scheme.to_string(),
            format!("{:.2}", r.writes_per_data_write),
            stats.max_writes_to_one_block().to_string(),
            shadow.to_string(),
        ]);
    }
    for scheme in SgxScheme::all_with_extras() {
        let mut c = SgxController::new(scheme, &config);
        let r = run_trace(&mut c, &trace, &model).expect("replay");
        let stats = c.domain().device().stats();
        let shadow = stats.writes_in("st");
        table.row(vec![
            r.scheme.to_string(),
            format!("{:.2}", r.writes_per_data_write),
            stats.max_writes_to_one_block().to_string(),
            shadow.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: strict-persist ≈ tree-depth writes per write (paper: 10+);\n\
         ASIT ≈ baseline + 1 (the Shadow Table write); AGIT variants between\n\
         Osiris and AGIT-Read depending on shadow-update policy."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "table_write_amplification",
    );
}
