//! Machine-readable crash-storm benchmark: supervised recovery under
//! randomized fault plans (power cuts, torn writes, bit flips — plus
//! write cuts injected *during* recovery), per scheme at 1/2/8 lanes.
//!
//! Every run must terminate in a structured `RecoveryOutcome`; the
//! campaign fingerprint digests every run's outcome and repair counts and
//! must be bit-identical across lane counts. Emits
//! `BENCH_recovery_degraded.json` (override with `--out PATH`). Exit code
//! 1 if any lane count's fingerprint diverges from the serial one.
//!
//! `--smoke` / `ANUBIS_SMOKE=1` runs a reduced campaign; the full scale
//! drives 170 randomized plans per scheme (6 schemes, >1000 plans total).

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme, Supervised};
use anubis_bench::json::Json;
use anubis_bench::{host_parallelism, out_path_from_args};
use anubis_sim::{crash_storm, StormConfig, StormReport};
use std::time::Instant;

const LANE_COUNTS: [usize; 3] = [1, 2, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
    let runs_per_scheme: u64 = if smoke { 6 } else { 170 };
    let config = AnubisConfig::small_test().with_spare_blocks(256);

    println!("== Anubis reproduction :: degraded-mode recovery storm ==");
    println!(
        "{runs_per_scheme} randomized fault plans per scheme at lanes {LANE_COUNTS:?}, \
         host parallelism {}",
        host_parallelism()
    );

    let telemetry = anubis_bench::telemetry::start();
    let mut diverged = false;
    let mut plans_total = 0u64;
    let mut cases = Vec::new();

    let schemes: &[(&str, u64)] = &[
        ("osiris", 0x05),
        ("agit-read", 0xA6),
        ("agit-plus", 0xA7),
        ("bonsai-strict", 0xB5),
        ("asit", 0x51),
        ("sgx-strict", 0x55),
    ];
    for &(name, seed) in schemes {
        let storm = StormConfig {
            runs: runs_per_scheme,
            ops: 24,
            addr_space: 256,
            seed,
            lanes: 1,
            max_retries: 3,
            recovery_faults: true,
        };
        let (case, ok) = match name {
            "osiris" => storm_case(name, &storm, || {
                BonsaiController::new(BonsaiScheme::Osiris, &config)
            }),
            "agit-read" => storm_case(name, &storm, || {
                BonsaiController::new(BonsaiScheme::AgitRead, &config)
            }),
            "agit-plus" => storm_case(name, &storm, || {
                BonsaiController::new(BonsaiScheme::AgitPlus, &config)
            }),
            "bonsai-strict" => storm_case(name, &storm, || {
                BonsaiController::new(BonsaiScheme::StrictPersist, &config)
            }),
            "asit" => storm_case(name, &storm, || {
                SgxController::new(SgxScheme::Asit, &config)
            }),
            _ => storm_case(name, &storm, || {
                SgxController::new(SgxScheme::StrictPersist, &config)
            }),
        };
        diverged |= !ok;
        plans_total += runs_per_scheme;
        cases.push(case);
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("recovery_degraded".into())),
        ("host", anubis_bench::host_info_json()),
        ("host_parallelism", Json::Int(host_parallelism() as u64)),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::obj(vec![
                ("runs_per_scheme", Json::Int(runs_per_scheme)),
                ("plans_total", Json::Int(plans_total)),
                ("ops_per_run", Json::Int(24)),
                ("spare_blocks", Json::Int(256)),
                ("recovery_faults", Json::Bool(true)),
            ]),
        ),
        ("cases", Json::Arr(cases)),
    ]);
    let out = out_path_from_args("BENCH_recovery_degraded.json");
    std::fs::write(&out, doc.render()).expect("write baseline json");
    println!("wrote {}", out.display());
    anubis_bench::telemetry::finish(&telemetry, &out, "bench_recovery_degraded");

    if diverged {
        eprintln!("FAIL: storm fingerprints diverged across lane counts");
        std::process::exit(1);
    }
    println!("all lane counts produced bit-identical storm fingerprints");
}

/// Runs the same campaign at every lane count and checks the fingerprint
/// against the serial (lanes = 1) one. Returns the case JSON and whether
/// all lane counts agreed.
fn storm_case<C, F>(name: &str, storm: &StormConfig, make: F) -> (Json, bool)
where
    C: Supervised,
    F: Fn() -> C,
{
    let mut rows = Vec::new();
    let mut serial_fingerprint = None;
    let mut all_match = true;
    for &lanes in &LANE_COUNTS {
        let cfg = storm.clone().with_lanes(lanes);
        let t0 = Instant::now();
        let report = crash_storm(&make, &cfg);
        let wall_ns = t0.elapsed().as_nanos() as f64;
        let matches = *serial_fingerprint.get_or_insert(report.fingerprint) == report.fingerprint;
        all_match &= matches;
        println!(
            "{name:>14} lanes={lanes}: {:>4} recovered / {:>3} degraded / {:>3} quarantined, \
             {} lost lines, {} recovery faults, fp {:016x}{}",
            report.recovered,
            report.degraded,
            report.quarantined,
            report.lost_lines,
            report.recovery_faults_injected,
            report.fingerprint,
            if matches { "" } else { "  ** DIVERGED **" }
        );
        rows.push(lane_json(lanes, wall_ns, &report, matches));
    }
    let case = Json::obj(vec![
        ("scheme", Json::Str(name.into())),
        ("lanes", Json::Arr(rows)),
    ]);
    (case, all_match)
}

fn lane_json(lanes: usize, wall_ns: f64, r: &StormReport, matches: bool) -> Json {
    Json::obj(vec![
        ("lanes", Json::Int(lanes as u64)),
        ("wall_ns", Json::Num(wall_ns)),
        ("runs", Json::Int(r.runs)),
        ("recovered", Json::Int(r.recovered)),
        ("degraded", Json::Int(r.degraded)),
        ("quarantined", Json::Int(r.quarantined)),
        ("repaired_lines", Json::Int(r.repaired_lines)),
        ("rebuilt_nodes", Json::Int(r.rebuilt_nodes)),
        ("quarantined_lines", Json::Int(r.quarantined_lines)),
        ("lost_lines", Json::Int(r.lost_lines)),
        ("retries_total", Json::Int(r.retries_total)),
        ("escalations_total", Json::Int(r.escalations_total)),
        (
            "recovery_faults_injected",
            Json::Int(r.recovery_faults_injected),
        ),
        ("fingerprint", Json::Str(format!("{:016x}", r.fingerprint))),
        ("fingerprint_matches_serial", Json::Bool(matches)),
    ])
}
