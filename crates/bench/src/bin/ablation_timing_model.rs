//! Robustness check: the reproduction's main approximation is the
//! single-channel timing model standing in for gem5. This ablation sweeps
//! the model's free parameters (bank parallelism, hash latency, write
//! queue depth) and shows that the paper's *conclusions* — the scheme
//! ordering and the rough size of Anubis's advantage — hold across the
//! sweep, i.e. they are properties of the controllers, not of a tuned
//! model.

use anubis::AnubisConfig;
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::{bonsai_row, geomean, sgx_row};
use anubis_sim::{Table, TimingModel};
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Ablation: timing-model robustness",
        "Scheme ordering under different channel/bank/hash assumptions",
        scale,
    );
    let config = AnubisConfig::paper();
    let variants: Vec<(&str, TimingModel)> = vec![
        ("paper (4 banks)", TimingModel::paper()),
        (
            "serial channel",
            TimingModel {
                banks: 1,
                ..TimingModel::paper()
            },
        ),
        (
            "8 banks",
            TimingModel {
                banks: 8,
                ..TimingModel::paper()
            },
        ),
        (
            "slow hash 20ns",
            TimingModel {
                hash_ns: 20.0,
                ..TimingModel::paper()
            },
        ),
        (
            "tiny WPQ (8)",
            TimingModel {
                write_queue_depth: 8,
                ..TimingModel::paper()
            },
        ),
        (
            "fast writes 90ns",
            TimingModel {
                write_ns: 90.0,
                ..TimingModel::paper()
            },
        ),
    ];
    // A representative workload triplet spanning the intensity range.
    let specs = [spec2006::mcf(), spec2006::libquantum(), spec2006::milc()];

    let mut table = Table::new(vec![
        "model".into(),
        "strict".into(),
        "osiris".into(),
        "agit-read".into(),
        "agit-plus".into(),
        "asit".into(),
        "order ok".into(),
    ]);
    for (name, model) in &variants {
        let mut norms: Vec<Vec<f64>> = vec![Vec::new(); 5];
        for spec in &specs {
            let row = bonsai_row(spec, &config, model, scale).expect("replay");
            let n = row.normalized();
            for (i, v) in n.iter().skip(1).enumerate() {
                norms[i].push(*v);
            }
            let srow = sgx_row(spec, &config, model, scale).expect("replay");
            norms[4].push(srow.normalized()[3]);
        }
        let g: Vec<f64> = norms.iter().map(|v| geomean(v)).collect();
        // The paper's qualitative conclusions:
        //   strict is worst; osiris ~free; agit-plus <= agit-read;
        //   asit well below strict.
        let order_ok =
            g[0] > g[2] && g[0] > g[3] && g[1] < 1.1 && g[3] <= g[2] + 0.02 && g[4] < g[0];
        table.row(vec![
            name.to_string(),
            format!("{:.3}", g[0]),
            format!("{:.3}", g[1]),
            format!("{:.3}", g[2]),
            format!("{:.3}", g[3]),
            format!("{:.3}", g[4]),
            if order_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{table}");
    println!(
        "every row should read 'yes': the scheme ordering is invariant to the\n\
         timing model's free parameters; only magnitudes move."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "ablation_timing_model",
    );
}
