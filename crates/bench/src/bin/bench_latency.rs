//! Per-scheme tail-latency baseline from the discrete-event channel.
//!
//! Replays one write-heavy workload (milc) through every Bonsai and SGX
//! scheme and reports the end-to-end per-operation latency distribution
//! the event engine records — mean, p50, p95, p99, and max in simulated
//! nanoseconds — plus the run totals. Emits `BENCH_latency.json`
//! (override with `--out PATH`).
//!
//! Unlike the wall-clock harnesses, every number here is *simulated*
//! time: a pure function of the trace, the timing model, and the engine.
//! The committed baseline is therefore host-independent, and the
//! `--check [BASELINE]` gate (default `BENCH_latency.json`) demands
//! exact equality — any drift means the event engine's arithmetic
//! changed, which must be a deliberate, baseline-regenerating decision.
//! Gate runs replay at the scale recorded in the baseline, so `--smoke`
//! does not change what `--check` compares.
//!
//! Knobs: `ANUBIS_LATENCY_OPS` (measured ops, default 40 000; warm-up is
//! a tenth of that) and `ANUBIS_LATENCY_SEED` (trace seed, default 1907).
//! `--smoke` (or `ANUBIS_SMOKE=1`) drops to 4 000 measured ops.

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
use anubis_bench::json::{self, Json};
use anubis_bench::{host_info_json, out_path_from_args};
use anubis_sim::experiments::{run_measured, Scale};
use anubis_sim::{RunResult, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};

/// Device capacity for the replayed traces (matches `bench_throughput`).
const CAPACITY_BYTES: u64 = 8 << 20;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scale_from_env(smoke: bool) -> Scale {
    let default_ops = if smoke { 4_000 } else { 40_000 };
    let ops = env_u64("ANUBIS_LATENCY_OPS", default_ops) as usize;
    Scale {
        ops,
        warmup_ops: ops / 10,
        seed: env_u64("ANUBIS_LATENCY_SEED", 1907),
    }
}

/// Replays milc through all Bonsai then all SGX schemes at `scale`.
fn run_all_schemes(scale: Scale) -> Vec<RunResult> {
    let config = AnubisConfig::small_test().with_capacity(CAPACITY_BYTES);
    let model = TimingModel::paper();
    let trace = TraceGenerator::new(spec2006::milc(), config.capacity_bytes)
        .generate(scale.ops + scale.warmup_ops, scale.seed);
    let mut results = Vec::new();
    for scheme in BonsaiScheme::all() {
        let mut ctrl = BonsaiController::new(scheme, &config);
        results.push(run_measured(&mut ctrl, &trace, &model, scale).expect("bonsai replay"));
    }
    for scheme in SgxScheme::all() {
        let mut ctrl = SgxController::new(scheme, &config);
        results.push(run_measured(&mut ctrl, &trace, &model, scale).expect("sgx replay"));
    }
    results
}

fn print_table(results: &[RunResult]) {
    println!(
        "\n{:<20} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "scheme", "ops", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"
    );
    for r in results {
        let l = r.latency;
        println!(
            "{:<20} {:>8} {:>10.1} {:>9} {:>9} {:>9} {:>9}",
            r.scheme, l.count, l.mean_ns, l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns
        );
    }
}

fn scheme_row(r: &RunResult) -> Json {
    let l = r.latency;
    Json::obj(vec![
        ("scheme", Json::Str(r.scheme.into())),
        ("workload", Json::Str(r.workload.clone())),
        ("ops", Json::Int(l.count)),
        ("mean_ns", Json::Num(l.mean_ns)),
        ("p50_ns", Json::Int(l.p50_ns)),
        ("p95_ns", Json::Int(l.p95_ns)),
        ("p99_ns", Json::Int(l.p99_ns)),
        ("max_ns", Json::Int(l.max_ns)),
        ("total_ns", Json::Int(r.total_ns)),
        ("read_stall_ns", Json::Int(r.read_stall_ns)),
        ("write_stall_ns", Json::Int(r.write_stall_ns)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
    let check: Option<String> = args.iter().position(|a| a == "--check").map(|pos| {
        args.get(pos + 1)
            .filter(|n| !n.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_latency.json".into())
    });

    println!("== Anubis reproduction :: per-op latency distribution ==");
    println!("discrete-event channel, workload milc, simulated (host-independent) ns");

    if let Some(baseline_path) = check {
        match run_gate(&baseline_path) {
            Ok(()) => println!("\nlatency gate: OK (bit-exact vs {baseline_path})"),
            Err(failures) => {
                eprintln!("\nlatency gate FAILED:");
                for f in failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let scale = scale_from_env(smoke);
    println!(
        "{} measured ops (+{} warm-up), seed {}",
        scale.ops, scale.warmup_ops, scale.seed
    );

    // The replay is simulated, not wall-clock timed, so the per-scheme
    // `op_latency_ns` histograms can record straight into the artifact.
    let telemetry = anubis_bench::telemetry::start();
    let results = run_all_schemes(scale);
    print_table(&results);

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("latency".into())),
        ("smoke", Json::Bool(smoke)),
        ("host", host_info_json()),
        (
            "config",
            Json::obj(vec![
                ("workload", Json::Str("milc".into())),
                ("capacity_bytes", Json::Int(CAPACITY_BYTES)),
                ("ops", Json::Int(scale.ops as u64)),
                ("warmup_ops", Json::Int(scale.warmup_ops as u64)),
                ("seed", Json::Int(scale.seed)),
            ]),
        ),
        (
            "schemes",
            Json::Arr(results.iter().map(scheme_row).collect()),
        ),
    ]);
    let out = out_path_from_args("BENCH_latency.json");
    std::fs::write(&out, doc.render()).expect("write baseline json");
    println!("\nwrote {}", out.display());
    anubis_bench::telemetry::finish(&telemetry, &out, "bench_latency");
}

/// Re-runs every scheme at the baseline's recorded scale and demands
/// bit-exact tail latencies and totals. Returns mismatches, empty on pass.
fn run_gate(baseline_path: &str) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return Err(vec![format!("cannot read baseline {baseline_path}: {e}")]),
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("cannot parse baseline {baseline_path}: {e}")]),
    };
    // Replay at the baseline's own scale so the comparison is meaningful
    // whatever --smoke / env knobs this invocation carries.
    let cfg = doc.get("config");
    let field = |key: &str| cfg.and_then(|c| c.get(key)).and_then(Json::as_f64);
    let (Some(ops), Some(warmup_ops), Some(seed)) =
        (field("ops"), field("warmup_ops"), field("seed"))
    else {
        return Err(vec![format!(
            "baseline {baseline_path} lacks config.ops/warmup_ops/seed"
        )]);
    };
    let scale = Scale {
        ops: ops as usize,
        warmup_ops: warmup_ops as usize,
        seed: seed as u64,
    };
    println!(
        "replaying at baseline scale: {} measured ops (+{} warm-up), seed {}",
        scale.ops, scale.warmup_ops, scale.seed
    );
    let Some(rows) = doc.get("schemes").and_then(Json::as_arr) else {
        return Err(vec![format!(
            "baseline {baseline_path} has no schemes array"
        )]);
    };
    let results = run_all_schemes(scale);
    print_table(&results);

    let baseline_row = |name: &str| -> Option<&Json> {
        rows.iter()
            .find(|r| r.get("scheme").and_then(Json::as_str) == Some(name))
    };
    let mut failures = Vec::new();
    println!("\n--- latency gate vs {baseline_path} ---");
    for r in &results {
        let Some(row) = baseline_row(r.scheme) else {
            println!("{:<20} (no baseline entry, skipped)", r.scheme);
            continue;
        };
        let l = r.latency;
        let fresh: [(&str, u64); 5] = [
            ("p50_ns", l.p50_ns),
            ("p95_ns", l.p95_ns),
            ("p99_ns", l.p99_ns),
            ("max_ns", l.max_ns),
            ("total_ns", r.total_ns),
        ];
        let mut bad = Vec::new();
        for (key, got) in fresh {
            let want = row.get(key).and_then(Json::as_f64);
            if want != Some(got as f64) {
                bad.push(format!(
                    "{key} {got} vs baseline {}",
                    want.map_or_else(|| "missing".into(), |w| format!("{w}"))
                ));
            }
        }
        if bad.is_empty() {
            println!("{:<20} ok", r.scheme);
        } else {
            println!("{:<20} MISMATCH", r.scheme);
            failures.push(format!("{}: {}", r.scheme, bad.join(", ")));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}
