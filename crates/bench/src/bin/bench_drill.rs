//! Kill −9 restart drill: SIGKILL a child process serving a
//! deterministic trace against the file-backed NVM device, restart in a
//! fresh address space, recover, and verify every acknowledged write.
//!
//! Emits `BENCH_drill.json` (override with `--out PATH`). Exit code 1 on
//! any contract violation: an acknowledged write lost, a post-recovery
//! fingerprint that differs across lane counts, or a recovery failure.
//!
//! Knobs (all environment variables):
//!
//! | knob | default | meaning |
//! |---|---|---|
//! | `ANUBIS_DRILL_POINTS` | 100 | randomized kill points **per family** |
//! | `ANUBIS_DRILL_SEED` | `0xA17B05E7` | script + kill-point seed |
//! | `ANUBIS_DRILL_DIR` | `$TMPDIR/anubis-drill` | scratch for images/logs |
//! | `ANUBIS_DRILL_SWEEP` | unset | `1` = exhaustive: one kill point per possible ack count |
//!
//! The drill re-executes this binary with `--child ...` as the victim
//! process; the child serves the script and is killed mid-flight.

use std::path::PathBuf;
use std::process::ExitCode;

use anubis_bench::json::Json;
use anubis_bench::out_path_from_args;
use anubis_sim::drill::{run_campaign, DrillFamily, DrillSpec, FamilyReport};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn family_json(r: &FamilyReport, lanes: &[usize]) -> Json {
    let outcomes: Vec<Json> = r
        .outcomes
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("kill_after_acks", Json::Int(o.kill_after_acks)),
                ("acked", Json::Int(o.acked)),
                ("completed", Json::Bool(o.completed)),
                ("verified_addrs", Json::Int(o.verified_addrs)),
                ("inflight_observed", Json::Bool(o.inflight_observed)),
                ("outcome", Json::Str(o.outcome.clone())),
                ("fingerprint", Json::Str(format!("{:#018x}", o.fingerprint))),
            ])
        })
        .collect();
    Json::obj(vec![
        ("family", Json::Str(r.family.name().into())),
        ("points", Json::Int(r.points)),
        ("completed_runs", Json::Int(r.completed_runs)),
        ("acked_total", Json::Int(r.acked_total)),
        ("inflight_observed", Json::Int(r.inflight_observed)),
        (
            "kill_range",
            Json::Arr(vec![Json::Int(r.kill_range.0), Json::Int(r.kill_range.1)]),
        ),
        (
            "lanes_verified",
            Json::Arr(lanes.iter().map(|&l| Json::Int(l as u64)).collect()),
        ),
        ("acked_write_losses", Json::Int(0)),
        ("fingerprint_mismatches", Json::Int(0)),
        ("points_detail", Json::Arr(outcomes)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        return match anubis_sim::drill::child_main(&args[2..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("drill child: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("drill: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let points = env_u64("ANUBIS_DRILL_POINTS", 100);
    let seed = env_u64("ANUBIS_DRILL_SEED", 0xA17B_05E7);
    let sweep = std::env::var("ANUBIS_DRILL_SWEEP")
        .map(|v| v == "1")
        .unwrap_or(false);
    let dir = std::env::var_os("ANUBIS_DRILL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("anubis-drill"));
    let spec = DrillSpec {
        seed,
        ..DrillSpec::default()
    };

    println!("== Anubis reproduction :: kill -9 restart drill ==");
    println!(
        "{} kill points/family{}, seed {seed:#x}, lanes {:?}, scratch {}",
        points,
        if sweep { " (exhaustive sweep)" } else { "" },
        spec.lanes,
        dir.display()
    );

    let mut families = Vec::new();
    let mut total_points = 0u64;
    let mut total_acked = 0u64;
    for family in DrillFamily::all() {
        match run_campaign(&exe, family, &spec, &dir, points, sweep) {
            Ok(report) => {
                println!(
                    "  {:<18} {:>4} points, {:>6} acked writes verified, \
                     {} clean-exit runs, in-flight observed {}x",
                    family.name(),
                    report.points,
                    report.acked_total,
                    report.completed_runs,
                    report.inflight_observed
                );
                total_points += report.points;
                total_acked += report.acked_total;
                families.push(family_json(&report, &spec.lanes));
            }
            Err(e) => {
                eprintln!("drill FAILED for {}: {e}", family.name());
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("drill".into())),
        ("host", anubis_bench::host_info_json()),
        ("seed", Json::Int(seed)),
        ("sweep", Json::Bool(sweep)),
        ("script_len", Json::Int(spec.script_len as u64)),
        ("lines", Json::Int(spec.lines)),
        (
            "lanes",
            Json::Arr(spec.lanes.iter().map(|&l| Json::Int(l as u64)).collect()),
        ),
        ("total_kill_points", Json::Int(total_points)),
        ("total_acked_verified", Json::Int(total_acked)),
        ("acked_write_losses", Json::Int(0)),
        ("families", Json::Arr(families)),
    ]);
    let out = out_path_from_args("BENCH_drill.json");
    if let Err(e) = std::fs::write(&out, doc.render()) {
        eprintln!("drill: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{total_points} kill points, {total_acked} acked writes verified, zero losses -> {}",
        out.display()
    );
    ExitCode::SUCCESS
}
