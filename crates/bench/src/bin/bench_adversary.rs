//! Restart-time adversary drill: SIGKILL a child serving against the
//! anchored file-backed NVM device, mutate the durable artifacts while
//! it is dead (bit flips, truncations, WAL splices/reorders/duplicates,
//! rollback to a captured earlier state, cross-key image swaps, anchor
//! attacks), restart, and demand a typed verdict for every point.
//!
//! Emits `BENCH_adversary.json` (override with `--out PATH`). Exit code
//! 1 on any campaign failure: a panic in the recovery path, a silent
//! stale serve, or a point that missed its class's required verdict
//! (e.g. a WAL rollback that was not refused as rollback).
//!
//! Knobs (all environment variables):
//!
//! | knob | default | meaning |
//! |---|---|---|
//! | `ANUBIS_ADVERSARY_POINTS` | 120 | mutated-restart points **per family** (rounded up to whole base runs) |
//! | `ANUBIS_ADVERSARY_SEED` | `0xAD7E5A21` | script + kill-point + mutation seed |
//! | `ANUBIS_ADVERSARY_DIR` | `$TMPDIR/anubis-adversary` | scratch for images/anchors/logs |
//! | `ANUBIS_ADVERSARY_SWEEP` | unset | `1` = nightly depth: at least 440 points per family |
//!
//! The drill re-executes this binary with `--child ...` as the victim;
//! the child opens the image under the freshness anchor (strict policy)
//! and is killed mid-flight.

use std::path::PathBuf;
use std::process::ExitCode;

use anubis_bench::json::Json;
use anubis_bench::out_path_from_args;
use anubis_sim::adversary::{run_campaign, AdversarySpec, FamilyAdvReport, MUTATIONS_PER_RUN};
use anubis_sim::drill::DrillFamily;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn family_json(r: &FamilyAdvReport) -> Json {
    let classes: Vec<Json> = r
        .classes
        .iter()
        .map(|(c, s)| {
            Json::obj(vec![
                ("class", Json::Str(c.name().into())),
                ("points", Json::Int(s.points)),
                ("full_recovery", Json::Int(s.full)),
                ("degraded", Json::Int(s.degraded)),
                ("refused", Json::Int(s.refused)),
                ("rollback_refusals", Json::Int(s.rollback_refusals)),
            ])
        })
        .collect();
    let outcomes: Vec<Json> = r
        .outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("class", Json::Str(o.class.name().into())),
                ("label", Json::Str(o.label.clone())),
                ("kill_after_acks", Json::Int(o.kill_after_acks)),
                ("required", Json::Str(o.requirement.name().into())),
                ("verdict", Json::Str(o.verdict.name().into())),
            ];
            match &o.verdict {
                anubis_sim::adversary::Verdict::FullRecovery => {}
                anubis_sim::adversary::Verdict::Degraded { damage, outcome } => {
                    fields.push(("damage", Json::Int(*damage)));
                    fields.push(("outcome", Json::Str(outcome.clone())));
                }
                anubis_sim::adversary::Verdict::Refused { rollback, reason } => {
                    fields.push(("rollback", Json::Bool(*rollback)));
                    fields.push(("reason", Json::Str(reason.clone())));
                }
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("family", Json::Str(r.family.name().into())),
        ("base_runs", Json::Int(r.base_runs)),
        ("points", Json::Int(r.points)),
        ("audited_reads", Json::Int(r.audited_reads)),
        (
            "kill_range",
            Json::Arr(vec![Json::Int(r.kill_range.0), Json::Int(r.kill_range.1)]),
        ),
        ("foreign_epoch", Json::Int(r.foreign_epoch)),
        ("classes", Json::Arr(classes)),
        ("points_detail", Json::Arr(outcomes)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        return match anubis_sim::adversary::child_main(&args[2..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("adversary child: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("adversary: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = std::env::var("ANUBIS_ADVERSARY_SWEEP")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut points = env_u64("ANUBIS_ADVERSARY_POINTS", 120);
    if sweep {
        points = points.max(440);
    }
    let base_runs = points.div_ceil(MUTATIONS_PER_RUN).max(1);
    let seed = env_u64("ANUBIS_ADVERSARY_SEED", 0xAD7E_5A21);
    let dir = std::env::var_os("ANUBIS_ADVERSARY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("anubis-adversary"));
    let spec = AdversarySpec {
        seed,
        ..AdversarySpec::default()
    };

    println!("== Anubis reproduction :: restart-time adversary drill ==");
    println!(
        "{} mutated-restart points/family ({base_runs} base runs x {MUTATIONS_PER_RUN} mutations){}, \
         seed {seed:#x}, scratch {}",
        base_runs * MUTATIONS_PER_RUN,
        if sweep { " (nightly sweep)" } else { "" },
        dir.display()
    );

    let mut families = Vec::new();
    let mut total_points = 0u64;
    let mut total_audited = 0u64;
    let mut total_rollback_refusals = 0u64;
    for family in DrillFamily::all() {
        match run_campaign(&exe, family, &spec, &dir, base_runs) {
            Ok(report) => {
                let rb: u64 = report
                    .classes
                    .iter()
                    .map(|(_, s)| s.rollback_refusals)
                    .sum();
                println!(
                    "  {:<18} {:>4} points, {:>7} acked reads audited, {} rollback refusals",
                    family.name(),
                    report.points,
                    report.audited_reads,
                    rb,
                );
                total_points += report.points;
                total_audited += report.audited_reads;
                total_rollback_refusals += rb;
                families.push(family_json(&report));
            }
            Err(e) => {
                eprintln!("adversary campaign FAILED for {}: {e}", family.name());
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("adversary".into())),
        ("host", anubis_bench::host_info_json()),
        ("seed", Json::Int(seed)),
        ("sweep", Json::Bool(sweep)),
        ("script_len", Json::Int(spec.script_len as u64)),
        ("lines", Json::Int(spec.lines)),
        ("mutations_per_run", Json::Int(MUTATIONS_PER_RUN)),
        ("total_points", Json::Int(total_points)),
        ("total_audited_reads", Json::Int(total_audited)),
        (
            "total_rollback_refusals",
            Json::Int(total_rollback_refusals),
        ),
        ("silent_stale_serves", Json::Int(0)),
        ("panics", Json::Int(0)),
        ("requirement_misses", Json::Int(0)),
        ("families", Json::Arr(families)),
    ]);
    let out = out_path_from_args("BENCH_adversary.json");
    if let Err(e) = std::fs::write(&out, doc.render()) {
        eprintln!("adversary: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{total_points} mutated restarts, {total_audited} acked reads audited, \
         zero silent-stale, zero panics -> {}",
        out.display()
    );
    ExitCode::SUCCESS
}
