//! Hot-path component benchmark + regression gate.
//!
//! Times every component of the secure-memory data path on the host —
//! crypto seal/open, the data MAC, OTP pad generation, SEC-DED ECC,
//! counter-cache hits, tree-node digests, device commits, and full
//! controller read/write for both tree families — and emits the
//! per-component ns breakdown to `BENCH_hotpath.json` (override with
//! `--out PATH`).
//!
//! Alongside the current implementation it times in-bin reconstructions
//! of the pre-overhaul ("legacy") seal/open/MAC — the Davies–Meyer MAC
//! over a heap-built word buffer and the per-lane pad calls — so the
//! `speedup_vs_legacy` section records the optimization win on the same
//! machine, in the same file.
//!
//! `--check [BASELINE]` (default `BENCH_hotpath.json`) re-times the
//! components and fails (exit 1) if any regresses more than 10% against
//! the committed baseline. Comparisons use speck-normalized units
//! (`per_speck` = component ns / calibration Speck-encrypt ns), so the
//! gate tracks algorithmic regressions rather than host speed.
//!
//! `--smoke` (or `ANUBIS_SMOKE=1`) shortens the timed loops.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController, SgxController,
    SgxScheme,
};
use anubis_bench::json::{self, Json};
use anubis_bench::{host_info_json, out_path_from_args};
use anubis_crypto::ecc::ecc_block;
use anubis_crypto::hash::Hasher64;
use anubis_crypto::otp::{self, IvCounter};
use anubis_crypto::{DataCodec, Key, MacCache, Speck128};
use anubis_nvm::{Block, BlockAddr, PersistenceDomain, WriteOp};
use std::hint::black_box;
use std::time::Instant;

/// Allowed relative growth of a component's speck-normalized cost before
/// the gate fails.
const REGRESSION_TOLERANCE: f64 = 0.10;
/// Absolute slack in speck units, so scheduler jitter on cheap components
/// (a fraction of one Speck call) cannot trip the relative gate.
const ABSOLUTE_SLACK: f64 = 0.5;

struct Timed {
    name: &'static str,
    ns_per_op: f64,
}

/// Best-of-5 wall-clock of `iters` calls, after a warmup pass. Best-of
/// (not mean) discards scheduler preemptions and frequency dips, which
/// dominate run-to-run variance on shared/single-core hosts — exactly the
/// noise the regression gate must see through.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 5 + 1 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(iters.max(1));
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Pre-overhaul data MAC, reconstructed for same-machine comparison: the
/// address/counter/plaintext words gathered into a heap buffer and run
/// through the Davies–Meyer `Hasher64` (six fresh key schedules for the
/// 88-byte message — the cost the Carter–Wegman MAC replaced).
fn legacy_data_mac(h: &Hasher64, addr: BlockAddr, ctr: IvCounter, pt: &Block) -> u64 {
    let mut words: Vec<u64> = Vec::with_capacity(11);
    words.push(addr.index());
    words.push(ctr.major);
    words.push(ctr.minor);
    words.extend(pt.words());
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    h.hash(&bytes)
}

/// Pre-overhaul seal: per-lane pad calls (data pad + separate side-word
/// pad) and the Davies–Meyer MAC.
fn legacy_seal(
    enc: &Speck128,
    mac: &Hasher64,
    addr: BlockAddr,
    ctr: IvCounter,
    pt: &Block,
) -> (Block, u64, u64) {
    let pad = otp::pad_with(enc, addr, ctr);
    let side = otp::pad_word_with(enc, addr, ctr);
    let ciphertext = pt.xored(&pad);
    let ecc = ecc_block(pt) ^ side;
    let tag = legacy_data_mac(mac, addr, ctr, pt);
    (ciphertext, ecc, tag)
}

/// Pre-overhaul open: decrypt, ECC check, Davies–Meyer MAC verify.
fn legacy_open(
    enc: &Speck128,
    mac: &Hasher64,
    addr: BlockAddr,
    ctr: IvCounter,
    sealed: &(Block, u64, u64),
) -> Option<Block> {
    let pad = otp::pad_with(enc, addr, ctr);
    let side = otp::pad_word_with(enc, addr, ctr);
    let pt = sealed.0.xored(&pad);
    if ecc_block(&pt) ^ side != sealed.1 {
        return None;
    }
    if legacy_data_mac(mac, addr, ctr, &pt) != sealed.2 {
        return None;
    }
    Some(pt)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
    let check = args.iter().position(|a| a == "--check").map(|pos| {
        args.get(pos + 1)
            .filter(|next| !next.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_hotpath.json".to_string())
    });

    // Iteration counts: micro ops are nanoseconds each, controller ops
    // are microseconds each.
    let (micro, ctrl_iters, batch_rounds) = if smoke {
        (20_000u32, 2_000u32, 200u32)
    } else {
        (200_000u32, 20_000u32, 2_000u32)
    };

    println!("== Anubis reproduction :: hot-path component benchmark ==");
    println!(
        "mode: {}, micro iters {micro}, controller iters {ctrl_iters}",
        if smoke { "smoke" } else { "full" }
    );

    let key = Key([0xFEED, 0xF00D]);
    let codec = DataCodec::new(key);
    let enc = Speck128::new(key.derive("data-otp"));
    let legacy_mac_key = Hasher64::new(key.derive("data-mac"));
    let tree_hasher = Hasher64::new(key.derive("tree-hash"));
    let addr = BlockAddr::new(0x2a);
    let ctr = IvCounter::split(3, 17);
    let pt = Block::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
    let sealed = codec.seal(addr, ctr, &pt);
    let pads = otp::pad_set_with(&enc, addr, ctr);

    // --- calibration -------------------------------------------------
    // Oversampled relative to the other components: every per-speck
    // ratio divides by this number, so its jitter multiplies everything.
    let speck_ns = {
        let mut x = (1u64, 2u64);
        time_ns(micro.saturating_mul(4), || {
            x = enc.encrypt(black_box(x));
        })
    };
    println!("calibration: speck encrypt {speck_ns:.1} ns");

    // --- crypto micro components ------------------------------------
    let mut components = Vec::new();
    components.push(Timed {
        name: "otp_pad_set",
        ns_per_op: time_ns(micro, || {
            black_box(otp::pad_set_with(&enc, black_box(addr), black_box(ctr)));
        }),
    });
    components.push(Timed {
        name: "ecc_block",
        ns_per_op: time_ns(micro, || {
            black_box(ecc_block(black_box(&pt)));
        }),
    });
    components.push(Timed {
        name: "data_mac",
        ns_per_op: time_ns(micro, || {
            black_box(codec.data_mac(black_box(pads.tweak), black_box(&pt)));
        }),
    });
    components.push(Timed {
        name: "hasher64_block",
        ns_per_op: time_ns(micro, || {
            black_box(tree_hasher.hash_words(black_box(&pt.words())));
        }),
    });
    components.push(Timed {
        name: "seal",
        ns_per_op: time_ns(micro, || {
            black_box(codec.seal(black_box(addr), black_box(ctr), black_box(&pt)));
        }),
    });
    components.push(Timed {
        name: "open",
        ns_per_op: time_ns(micro, || {
            black_box(codec.open(black_box(addr), black_box(ctr), black_box(&sealed)))
                .expect("clean open");
        }),
    });
    components.push(Timed {
        name: "open_correcting_clean",
        ns_per_op: time_ns(micro, || {
            black_box(codec.open_correcting(black_box(addr), black_box(ctr), black_box(&sealed)))
                .expect("clean correcting open");
        }),
    });
    {
        let mut cache = MacCache::default();
        codec
            .open_correcting_cached(&mut cache, addr, ctr, &sealed)
            .expect("prime mac cache");
        components.push(Timed {
            name: "open_cached_hit",
            ns_per_op: time_ns(micro, || {
                black_box(
                    codec
                        .open_correcting_cached(&mut cache, addr, ctr, black_box(&sealed))
                        .expect("cached open"),
                );
            }),
        });
    }

    // --- batch path (per-op at a commit-group-sized batch) -----------
    {
        let items: Vec<(BlockAddr, IvCounter, Block)> = (0..64u64)
            .map(|i| {
                (
                    BlockAddr::new(i),
                    IvCounter::split(2, i),
                    Block::filled(i as u8),
                )
            })
            .collect();
        let mut out = Vec::new();
        codec.seal_batch_into(&items, &mut out);
        let to_open: Vec<(BlockAddr, IvCounter, anubis_crypto::SealedBlock)> = items
            .iter()
            .zip(&out)
            .map(|((a, c, _), s)| (*a, *c, *s))
            .collect();
        let mut opened = Vec::new();
        components.push(Timed {
            name: "seal_batch64_per_op",
            ns_per_op: time_ns(batch_rounds, || {
                codec.seal_batch_into(black_box(&items), &mut out);
            }) / 64.0,
        });
        components.push(Timed {
            name: "open_batch64_per_op",
            ns_per_op: time_ns(batch_rounds, || {
                codec.open_batch_into(black_box(&to_open), &mut opened);
            }) / 64.0,
        });
    }

    // --- counter cache hit -------------------------------------------
    {
        let mut cache: anubis_cache::MetadataCache<u64> = anubis_cache::MetadataCache::new(4096, 4);
        for i in 0..16u64 {
            cache.insert(BlockAddr::new(i), i);
        }
        components.push(Timed {
            name: "counter_cache_hit",
            ns_per_op: time_ns(micro, || {
                black_box(cache.peek(black_box(BlockAddr::new(7))));
            }),
        });
    }

    // --- tree update unit (one node re-digest) ------------------------
    {
        let node = Block::from_words([9, 8, 7, 6, 5, 4, 3, 2]);
        components.push(Timed {
            name: "tree_node_digest",
            ns_per_op: time_ns(micro, || {
                black_box(tree_hasher.hash(black_box(node.as_bytes())));
            }),
        });
    }

    // --- device write (one-op commit group through WPQ + ADR) ---------
    {
        let mut domain: PersistenceDomain = PersistenceDomain::new(1 << 20);
        let block = Block::filled(0x5a);
        components.push(Timed {
            name: "device_commit_write",
            ns_per_op: time_ns(ctrl_iters, || {
                domain
                    .commit_group(vec![WriteOp::new(BlockAddr::new(12), black_box(block))])
                    .expect("commit");
            }),
        });
    }

    // --- controller-level ops -----------------------------------------
    let cfg = AnubisConfig::small_test();
    {
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        let mut i = 0u64;
        components.push(Timed {
            name: "ctrl_write_agit_plus",
            ns_per_op: time_ns(ctrl_iters, || {
                c.write(DataAddr::new(i % 256), black_box(pt))
                    .expect("write");
                i += 1;
            }),
        });
        let mut j = 0u64;
        components.push(Timed {
            name: "ctrl_read_agit_plus",
            ns_per_op: time_ns(ctrl_iters, || {
                black_box(c.read(DataAddr::new(j % 256)).expect("read"));
                j += 1;
            }),
        });
        let items: Vec<(DataAddr, Block)> =
            (0..32u64).map(|k| (DataAddr::new(k % 256), pt)).collect();
        components.push(Timed {
            name: "ctrl_write_batch32_agit_plus",
            ns_per_op: time_ns(ctrl_iters / 32 + 1, || {
                c.write_batch(black_box(&items)).expect("write_batch");
            }) / 32.0,
        });
    }
    {
        let mut c = SgxController::new(SgxScheme::Asit, &cfg);
        let mut i = 0u64;
        components.push(Timed {
            name: "ctrl_write_asit",
            ns_per_op: time_ns(ctrl_iters, || {
                c.write(DataAddr::new(i % 256), black_box(pt))
                    .expect("write");
                i += 1;
            }),
        });
        let mut j = 0u64;
        components.push(Timed {
            name: "ctrl_read_asit",
            ns_per_op: time_ns(ctrl_iters, || {
                black_box(c.read(DataAddr::new(j % 256)).expect("read"));
                j += 1;
            }),
        });
    }

    // --- legacy reconstructions ---------------------------------------
    let legacy_sealed = legacy_seal(&enc, &legacy_mac_key, addr, ctr, &pt);
    let legacy = vec![
        Timed {
            name: "legacy_data_mac",
            ns_per_op: time_ns(micro, || {
                black_box(legacy_data_mac(
                    &legacy_mac_key,
                    black_box(addr),
                    black_box(ctr),
                    black_box(&pt),
                ));
            }),
        },
        Timed {
            name: "legacy_seal",
            ns_per_op: time_ns(micro, || {
                black_box(legacy_seal(
                    &enc,
                    &legacy_mac_key,
                    black_box(addr),
                    black_box(ctr),
                    black_box(&pt),
                ));
            }),
        },
        Timed {
            name: "legacy_open",
            ns_per_op: time_ns(micro, || {
                black_box(
                    legacy_open(
                        &enc,
                        &legacy_mac_key,
                        black_box(addr),
                        black_box(ctr),
                        black_box(&legacy_sealed),
                    )
                    .expect("legacy open"),
                );
            }),
        },
    ];

    // --- report --------------------------------------------------------
    println!("\n{:<30} {:>12} {:>12}", "component", "ns/op", "per-speck");
    let row_json = |t: &Timed| {
        println!(
            "{:<30} {:>12.1} {:>12.2}",
            t.name,
            t.ns_per_op,
            t.ns_per_op / speck_ns
        );
        Json::obj(vec![
            ("name", Json::Str(t.name.into())),
            ("ns_per_op", Json::Num(t.ns_per_op)),
            ("per_speck", Json::Num(t.ns_per_op / speck_ns)),
        ])
    };
    let component_rows: Vec<Json> = components.iter().map(&row_json).collect();
    println!("--- legacy reconstructions ---");
    let legacy_rows: Vec<Json> = legacy.iter().map(&row_json).collect();

    let ns_of = |set: &[Timed], name: &str| -> f64 {
        set.iter()
            .find(|t| t.name == name)
            .map(|t| t.ns_per_op)
            .expect("component present")
    };
    let speedups = vec![
        (
            "seal",
            ns_of(&legacy, "legacy_seal") / ns_of(&components, "seal"),
        ),
        (
            "open",
            ns_of(&legacy, "legacy_open") / ns_of(&components, "open"),
        ),
        (
            "data_mac",
            ns_of(&legacy, "legacy_data_mac") / ns_of(&components, "data_mac"),
        ),
    ];
    println!("--- speedup vs legacy (same machine, same run) ---");
    for (name, x) in &speedups {
        println!("{name:<30} {x:>12.2}x");
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("hotpath".into())),
        ("smoke", Json::Bool(smoke)),
        ("host", host_info_json()),
        (
            "calibration",
            Json::obj(vec![("speck_encrypt_ns", Json::Num(speck_ns))]),
        ),
        ("components", Json::Arr(component_rows)),
        ("legacy", Json::Arr(legacy_rows)),
        (
            "speedup_vs_legacy",
            Json::Obj(
                speedups
                    .iter()
                    .map(|(n, x)| (n.to_string(), Json::Num(*x)))
                    .collect(),
            ),
        ),
    ]);

    if let Some(baseline_path) = check {
        // Gate mode: compare against the committed baseline, do not
        // overwrite it.
        match run_gate(&baseline_path, &components, speck_ns) {
            Ok(()) => println!(
                "\nregression gate: OK (within {:.0}%)",
                REGRESSION_TOLERANCE * 100.0
            ),
            Err(failures) => {
                eprintln!("\nregression gate FAILED:");
                for f in failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let out = out_path_from_args("BENCH_hotpath.json");
    std::fs::write(&out, doc.render()).expect("write baseline json");
    println!("\nwrote {}", out.display());

    let telemetry = anubis_bench::telemetry::start();
    if telemetry.enabled() {
        // One instrumented controller pass so the artifact has counters.
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &cfg);
        for k in 0..512u64 {
            c.write(DataAddr::new(k % 128), pt).expect("write");
            c.read(DataAddr::new(k % 128)).expect("read");
        }
        c.publish_telemetry();
    }
    anubis_bench::telemetry::finish(&telemetry, &out, "bench_hotpath");
}

/// Compares the fresh component timings against a committed baseline in
/// speck-normalized units. Returns the list of regressions, empty on pass.
fn run_gate(baseline_path: &str, components: &[Timed], speck_ns: f64) -> Result<(), Vec<String>> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => return Err(vec![format!("cannot read baseline {baseline_path}: {e}")]),
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("cannot parse baseline {baseline_path}: {e}")]),
    };
    let Some(rows) = doc.get("components").and_then(Json::as_arr) else {
        return Err(vec![format!(
            "baseline {baseline_path} has no components array"
        )]);
    };
    let baseline_row = |name: &str| -> Option<(f64, f64)> {
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))?;
        Some((
            row.get("ns_per_op").and_then(Json::as_f64)?,
            row.get("per_speck").and_then(Json::as_f64)?,
        ))
    };
    // A component regresses only when BOTH views agree: raw ns/op (valid
    // when baseline and run share a host class, as in CI) and the
    // speck-normalized ratio (valid across hosts, but amplified by
    // calibration jitter). A real algorithmic regression moves both; a
    // frequency-scaling artifact moves only one.
    let mut failures = Vec::new();
    println!("\n--- regression gate vs {baseline_path} ---");
    for t in components {
        let new_ratio = t.ns_per_op / speck_ns;
        match baseline_row(t.name) {
            None => println!("{:<30} (no baseline entry, skipped)", t.name),
            Some((base_ns, base_ratio)) => {
                let ns_limit = base_ns * (1.0 + REGRESSION_TOLERANCE);
                let ratio_limit = base_ratio * (1.0 + REGRESSION_TOLERANCE) + ABSOLUTE_SLACK;
                let regressed = t.ns_per_op > ns_limit && new_ratio > ratio_limit;
                println!(
                    "{:<30} ns {:>9.1}/{:<9.1} per-speck {:>7.2}/{:<7.2} {}",
                    t.name,
                    t.ns_per_op,
                    ns_limit,
                    new_ratio,
                    ratio_limit,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    failures.push(format!(
                        "{}: {:.1} ns/op ({:.2} speck units) vs baseline {:.1} ns/op \
                         ({:.2} speck units), limit +{:.0}%",
                        t.name,
                        t.ns_per_op,
                        new_ratio,
                        base_ns,
                        base_ratio,
                        REGRESSION_TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}
