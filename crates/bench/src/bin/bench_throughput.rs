//! Machine-readable replay-throughput benchmark: host wall-clock cost of
//! serial `run_trace` vs sharded replay (`run_trace_sharded`) at one and
//! N lanes.
//!
//! Emits `BENCH_throughput.json` (override with `--out PATH`). Exit code
//! 1 if the threaded sharded replay's merged result differs from the
//! inline (lanes = 1) sharded replay — they must be bit-identical.
//!
//! Serial `run_trace` and sharded replay are *different experiments*
//! (one controller + one channel vs per-shard controllers + channels), so
//! their simulated numbers legitimately differ; the baseline records both.
//! The speedup column compares host wall-clock of the same sharded
//! experiment at 1 vs N lanes.

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, SgxController, SgxScheme};
use anubis_bench::json::Json;
use anubis_bench::{host_parallelism, out_path_from_args};
use anubis_sim::{run_trace, run_trace_sharded, RunResult, ShardedRunResult, TimingModel};
use anubis_workloads::{spec2006, Trace, TraceGenerator};
use std::time::Instant;

const SHARDS: usize = 4;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("ANUBIS_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
    let (ops, reps) = if smoke {
        (5_000usize, 2u32)
    } else {
        (100_000usize, 3u32)
    };
    let config = AnubisConfig::small_test().with_capacity(8 << 20);
    let trace = TraceGenerator::new(spec2006::milc(), config.capacity_bytes).generate(ops, 1907);
    let model = TimingModel::paper();

    println!("== Anubis reproduction :: replay throughput benchmark ==");
    println!(
        "{} ops, {SHARDS} shards, best of {reps}, host parallelism {}",
        trace.len(),
        host_parallelism()
    );
    anubis_bench::warn_if_single_core();

    let mut diverged = false;
    let mut cases = Vec::new();

    {
        let cfg = &config;
        let (case, bad) = bench_scheme(
            "agit-plus",
            &trace,
            &model,
            reps,
            |t, m| {
                let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, cfg);
                run_trace(&mut c, t, m).expect("serial replay")
            },
            |t, m, lanes| {
                run_trace_sharded(
                    |_| BonsaiController::new(BonsaiScheme::AgitPlus, cfg),
                    t,
                    m,
                    SHARDS,
                    lanes,
                )
                .expect("sharded replay")
            },
        );
        diverged |= bad;
        cases.push(case);
    }
    {
        let cfg = &config;
        let (case, bad) = bench_scheme(
            "asit",
            &trace,
            &model,
            reps,
            |t, m| {
                let mut c = SgxController::new(SgxScheme::Asit, cfg);
                run_trace(&mut c, t, m).expect("serial replay")
            },
            |t, m, lanes| {
                run_trace_sharded(
                    |_| SgxController::new(SgxScheme::Asit, cfg),
                    t,
                    m,
                    SHARDS,
                    lanes,
                )
                .expect("sharded replay")
            },
        );
        diverged |= bad;
        cases.push(case);
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::Str("throughput".into())),
        ("host", anubis_bench::host_info_json()),
        ("host_parallelism", Json::Int(host_parallelism() as u64)),
        ("smoke", Json::Bool(smoke)),
        (
            "config",
            Json::obj(vec![
                ("capacity_bytes", Json::Int(8 << 20)),
                ("trace_ops", Json::Int(trace.len() as u64)),
                ("shards", Json::Int(SHARDS as u64)),
                ("reps", Json::Int(u64::from(reps))),
            ]),
        ),
        ("cases", Json::Arr(cases)),
    ]);
    let out = out_path_from_args("BENCH_throughput.json");
    std::fs::write(&out, doc.render()).expect("write baseline json");
    println!("wrote {}", out.display());

    // Telemetry artifact: the timed best-of loops above ran with the
    // global registry at its default (disabled unless ANUBIS_TELEMETRY=1)
    // so the recorded wall-clocks gate cleanly against the committed
    // baseline. One extra instrumented replay per scheme — outside the
    // timed region — populates the counters for TELEMETRY_*.jsonl.
    let telemetry = anubis_bench::telemetry::start();
    if telemetry.enabled() {
        let mut c = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
        run_trace(&mut c, &trace, &model).expect("instrumented replay");
        let mut c = SgxController::new(SgxScheme::Asit, &config);
        run_trace(&mut c, &trace, &model).expect("instrumented replay");
    }
    anubis_bench::telemetry::finish(&telemetry, &out, "bench_throughput");

    if diverged {
        eprintln!("FAIL: threaded sharded replay diverged from inline sharded replay");
        std::process::exit(1);
    }
    println!("sharded replay bit-identical at every lane count");
}

#[allow(clippy::too_many_arguments)]
fn bench_scheme(
    scheme: &str,
    trace: &Trace,
    model: &TimingModel,
    reps: u32,
    serial: impl Fn(&Trace, &TimingModel) -> RunResult,
    sharded: impl Fn(&Trace, &TimingModel, usize) -> ShardedRunResult,
) -> (Json, bool) {
    let (serial_ns, _serial_result) = best_of(reps, || serial(trace, model));
    let (inline_ns, inline_result) = best_of(reps, || sharded(trace, model, 1));
    let lanes_n = host_parallelism().clamp(2, SHARDS);
    let (threaded_ns, threaded_result) = best_of(reps, || sharded(trace, model, lanes_n));
    let identical = threaded_result.merged == inline_result.merged
        && threaded_result.shard_ns == inline_result.shard_ns;
    let row = |label: &str, lanes: usize, wall_ns: f64| {
        let secs = wall_ns / 1e9;
        println!(
            "{scheme:>10} {label:<18} lanes={lanes}: {:>12.0} ns wall, {:>10.0} ops/s",
            wall_ns,
            trace.len() as f64 / secs
        );
        Json::obj(vec![
            ("mode", Json::Str(label.into())),
            ("lanes", Json::Int(lanes as u64)),
            ("wall_ns", Json::Num(wall_ns)),
            ("ns_per_op", Json::Num(wall_ns / trace.len() as f64)),
            ("ops_per_s", Json::Num(trace.len() as f64 / secs)),
            ("speedup_vs_serial", Json::Num(serial_ns / wall_ns)),
        ])
    };
    let case = Json::obj(vec![
        ("scheme", Json::Str(scheme.into())),
        (
            "runs",
            Json::Arr(vec![
                row("run_trace", 1, serial_ns),
                row("sharded-inline", 1, inline_ns),
                row("sharded-threaded", lanes_n, threaded_ns),
            ]),
        ),
        (
            "sharded_sim_totals",
            Json::obj(vec![
                ("total_ns", Json::Int(inline_result.merged.total_ns)),
                ("nvm_reads", Json::Int(inline_result.merged.nvm_reads)),
                ("nvm_writes", Json::Int(inline_result.merged.nvm_writes)),
                (
                    "writes_per_data_write",
                    Json::Num(inline_result.merged.writes_per_data_write),
                ),
                (
                    "latency_p99_ns",
                    Json::Int(inline_result.merged.latency.p99_ns),
                ),
            ]),
        ),
        ("threaded_identical_to_inline", Json::Bool(identical)),
    ]);
    if !identical {
        eprintln!("{scheme}: sharded replay DIVERGED between lanes=1 and lanes={lanes_n}");
    }
    (case, !identical)
}

fn best_of<R>(reps: u32, f: impl Fn() -> R) -> (f64, R) {
    let mut best_ns = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as f64;
        if ns < best_ns {
            best_ns = ns;
        }
        result = Some(r);
    }
    (best_ns, result.expect("reps >= 1"))
}
