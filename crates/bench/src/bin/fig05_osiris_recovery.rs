//! Figure 5: recovery time of Osiris-style full recovery (counter fixes +
//! whole-tree rebuild) as a function of NVM capacity.
//!
//! The paper evaluates 128 GB through 8 TB analytically (footnote 1:
//! count fetched/updated blocks + hash/decrypt ops at 100 ns each); so do
//! we, via `anubis::recovery::time`. For a cross-check, we also *execute*
//! the same recovery on a miniature memory and report the measured op
//! count next to the model's prediction.

use anubis::recovery::time;
use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController};
use anubis_sim::Table;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    println!("== Anubis reproduction :: Figure 5 ==");
    println!("Osiris full-recovery time vs memory capacity (analytical, 100 ns/op)\n");

    let mut table = Table::new(vec![
        "capacity".into(),
        "recovery ops".into(),
        "seconds".into(),
        "hours".into(),
    ]);
    for shift in [37u32, 38, 39, 40, 41, 42, 43] {
        let bytes = 1u64 << shift;
        let ops = time::osiris_full_ops(bytes, 4);
        let secs = time::osiris_full_secs(bytes, 4);
        table.row(vec![
            human_bytes(bytes),
            ops.to_string(),
            format!("{secs:.1}"),
            format!("{:.2}", secs / 3600.0),
        ]);
    }
    println!("{table}");
    println!("paper reference: ≈ 28 193 s (7.8 h) at 8 TB\n");

    // Executed cross-check at miniature scale.
    let config = AnubisConfig::small_test();
    let mut ctrl = BonsaiController::new(BonsaiScheme::Osiris, &config);
    for i in 0..200u64 {
        ctrl.write(
            DataAddr::new(i * 37 % 4000),
            anubis_nvm::Block::filled(i as u8),
        )
        .expect("write");
    }
    ctrl.crash();
    let report = ctrl.recover().expect("osiris recovery at miniature scale");
    println!(
        "executed cross-check ({} data): measured {} recovery ops -> {:.6} s \
         (model scales linearly with capacity)",
        human_bytes(config.capacity_bytes),
        report.total_ops(),
        report.estimated_secs()
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "fig05_osiris_recovery",
    );
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 40 {
        format!("{} TB", b >> 40)
    } else if b >= 1 << 30 {
        format!("{} GB", b >> 30)
    } else {
        format!("{} MB", b >> 20)
    }
}
