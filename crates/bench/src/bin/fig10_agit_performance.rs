//! Figure 10: run-time overhead of the general-tree (Bonsai) schemes —
//! WriteBack / StrictPersist / Osiris / AGIT-Read / AGIT-Plus — per
//! SPEC-like workload, normalized to WriteBack.

use anubis::{AnubisConfig, BonsaiScheme};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::{bonsai_row, geomean};
use anubis_sim::{Table, TimingModel};
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Figure 10",
        "AGIT performance: normalized execution time (write-back = 1.00)",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();
    let schemes = BonsaiScheme::all();

    let mut headers = vec!["workload".to_string()];
    headers.extend(schemes.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);

    let mut tail_headers = vec!["workload".to_string()];
    tail_headers.extend(schemes.iter().map(|s| format!("{} p99", s.name())));
    let mut tail = Table::new(tail_headers);

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for spec in spec2006::all() {
        let row = bonsai_row(&spec, &config, &model, scale).expect("replay");
        let norm = row.normalized();
        let mut cells = vec![row.workload.clone()];
        for (i, n) in norm.iter().enumerate() {
            per_scheme[i].push(*n);
            cells.push(format!("{n:.3}"));
        }
        table.row(cells);
        let mut tail_cells = vec![row.workload.clone()];
        tail_cells.extend(
            row.results
                .iter()
                .map(|r| format!("{} ns", r.latency.p99_ns)),
        );
        tail.row(tail_cells);
        eprintln!("  done: {}", spec.name);
    }
    let mut cells = vec!["GEOMEAN".to_string()];
    for values in &per_scheme {
        cells.push(format!("{:.3}", geomean(values)));
    }
    table.row(cells);
    println!("{table}");
    println!("p99 per-op latency (simulated ns, same runs):\n{tail}");
    println!(
        "paper reference (averages): write-back 1.00, strict 1.63, osiris 1.014, \
         agit-read 1.104, agit-plus 1.034.\n\
         Expected shape: strict ≫ everything; AGIT-Read worst on read-heavy mcf;\n\
         AGIT-Plus within a few % of Osiris while recovering in O(cache) time.\n\
         Note the mean-vs-tail gap: schemes with similar normalized (mean) time\n\
         can differ at p99, where WPQ pressure and bank conflicts surface."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "fig10_agit_performance",
    );
}
