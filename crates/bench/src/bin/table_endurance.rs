//! Beyond-paper table: device lifetime and energy per scheme — the
//! quantified version of §6.2's endurance argument.
//!
//! Lifetime is computed two ways: with ideal wear-leveling (upper bound)
//! and with none (the hottest block dies first). Strict persistence is
//! hurt twice: ~10× the write volume *and* extreme hot-spotting on the
//! upper tree levels.

use anubis::{
    AnubisConfig, BonsaiController, BonsaiScheme, MemoryController, SgxController, SgxScheme,
};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::{run_trace, EnduranceModel, Table, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Endurance & energy (paper §6.2, quantified)",
        "Projected lifetime and memory-system energy, libquantum trace",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();
    let endurance = EnduranceModel::pcm();
    let trace = TraceGenerator::new(spec2006::libquantum(), config.capacity_bytes)
        .generate(scale.ops, scale.seed);
    let capacity_blocks = config.data_blocks();

    let mut table = Table::new(vec![
        "scheme".into(),
        "writes/op".into(),
        "life (ideal WL) yr".into(),
        "life (no WL) h".into(),
        "energy mJ".into(),
    ]);
    let push =
        |name: &str, r: &anubis_sim::RunResult, max_wear: u64, hash_ops: u64, table: &mut Table| {
            table.row(vec![
                name.to_string(),
                format!("{:.2}", r.writes_per_data_write),
                format!("{:.1}", endurance.ideal_lifetime_years(r, capacity_blocks)),
                format!(
                    "{:.1}",
                    endurance.unleveled_lifetime_years(max_wear, r.total_ns) * 365.25 * 24.0
                ),
                format!("{:.2}", endurance.energy_mj(r, hash_ops)),
            ]);
        };
    for scheme in BonsaiScheme::all_with_extras() {
        let mut c = BonsaiController::new(scheme, &config);
        let r = run_trace(&mut c, &trace, &model).expect("replay");
        let wear = c.domain().device().stats().max_writes_to_one_block();
        let hashes = c.total_cost().hash_ops + c.total_cost().bg_hash_ops;
        push(scheme.name(), &r, wear, hashes, &mut table);
    }
    for scheme in SgxScheme::all_with_extras() {
        let mut c = SgxController::new(scheme, &config);
        let r = run_trace(&mut c, &trace, &model).expect("replay");
        let wear = c.domain().device().stats().max_writes_to_one_block();
        let hashes = c.total_cost().hash_ops + c.total_cost().bg_hash_ops;
        push(scheme.name(), &r, wear, hashes, &mut table);
    }
    println!("{table}");
    println!(
        "expected shape: strict persistence loses an order of magnitude of\n\
         unleveled lifetime to tree-path hot-spotting; Anubis schemes stay\n\
         within a small factor of the write-back baseline."
    );
    anubis_bench::telemetry::finish(&telemetry, std::path::Path::new("."), "table_endurance");
}
