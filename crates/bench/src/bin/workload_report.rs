//! Characterizes the synthetic SPEC-like workloads: read fraction,
//! footprint, reuse, and the metadata-cache behaviour they induce —
//! the data a reviewer needs to judge the trace-substitution fidelity
//! (DESIGN.md, "Substitutions").

use anubis::{AnubisConfig, BonsaiController, BonsaiScheme};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::{run_trace, Table, TimingModel};
use anubis_workloads::{spec2006, TraceGenerator};

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Workload characterization",
        "Trace statistics and induced metadata-cache behaviour per profile",
        scale,
    );
    let config = AnubisConfig::paper();
    let mut table = Table::new(vec![
        "workload".into(),
        "read %".into(),
        "footprint MB".into(),
        "uniq/op".into(),
        "ctr$ hit %".into(),
        "tree$ hit %".into(),
        "clean-ev %".into(),
        "p50 ns".into(),
        "p95 ns".into(),
        "p99 ns".into(),
    ]);
    for spec in spec2006::all() {
        let trace = TraceGenerator::new(spec.clone(), config.capacity_bytes)
            .generate(scale.ops, scale.seed);
        let mut ctrl = BonsaiController::new(BonsaiScheme::WriteBack, &config);
        let result = run_trace(&mut ctrl, &trace, &TimingModel::paper()).expect("replay");
        let cs = ctrl.counter_cache_stats();
        let ts = ctrl.tree_cache_stats();
        table.row(vec![
            spec.name.to_string(),
            format!("{:.1}", trace.read_fraction() * 100.0),
            format!("{:.1}", trace.footprint_blocks() as f64 * 64.0 / 1e6),
            format!(
                "{:.3}",
                trace.footprint_blocks() as f64 / trace.len() as f64
            ),
            format!("{:.1}", cs.hit_rate().unwrap_or(0.0) * 100.0),
            format!("{:.1}", ts.hit_rate().unwrap_or(0.0) * 100.0),
            format!("{:.1}", cs.clean_eviction_fraction().unwrap_or(0.0) * 100.0),
            result.latency.p50_ns.to_string(),
            result.latency.p95_ns.to_string(),
            result.latency.p99_ns.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Latency columns are per-op simulated ns on the write-back baseline;\n\
         the p99/p50 spread shows how much queueing each profile induces\n\
         beyond its mean (bench_latency breaks this down per scheme)."
    );
    anubis_bench::telemetry::finish(&telemetry, std::path::Path::new("."), "workload_report");
}
