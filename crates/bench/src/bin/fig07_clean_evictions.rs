//! Figure 7: fraction of counter-cache evictions that are clean, per
//! workload — the observation motivating AGIT-Plus (most blocks leave the
//! cache unmodified, so tracking only first modifications suffices).

use anubis::AnubisConfig;
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::clean_eviction_fraction;
use anubis_sim::Table;
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Figure 7",
        "Clean vs dirty counter-cache evictions per SPEC-like workload",
        scale,
    );
    let config = AnubisConfig::paper();
    let mut table = Table::new(vec!["workload".into(), "clean %".into(), "dirty %".into()]);
    let mut fractions = Vec::new();
    for spec in spec2006::all() {
        let f = clean_eviction_fraction(&spec, &config, scale)
            .expect("workload replay")
            .unwrap_or(f64::NAN);
        fractions.push(f);
        table.row(vec![
            spec.name.to_string(),
            format!("{:.1}", f * 100.0),
            format!("{:.1}", (1.0 - f) * 100.0),
        ]);
    }
    let avg = fractions
        .iter()
        .copied()
        .filter(|f| f.is_finite())
        .sum::<f64>()
        / fractions.len() as f64;
    table.row(vec![
        "AVERAGE".into(),
        format!("{:.1}", avg * 100.0),
        format!("{:.1}", (1.0 - avg) * 100.0),
    ]);
    println!("{table}");
    println!(
        "paper reference: \"most applications evict a large number of cache-blocks \
         from the counter cache that are clean\" — read-heavy apps (mcf, xalancbmk) \
         should show the highest clean fractions."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "fig07_clean_evictions",
    );
}
