//! Figure 12: Anubis recovery time vs metadata cache size — a function of
//! the cache, not of memory capacity.
//!
//! Analytical (paper footnote 1: 100 ns per fetched/updated/hashed block)
//! for the 8 TB memory, plus an *executed* crash-recovery at miniature
//! scale to cross-check the per-entry work the model charges.

use anubis::recovery::time;
use anubis::AnubisConfig;
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::{measured_recovery, Scale};
use anubis_sim::Table;
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Figure 12",
        "Recovery time vs cache size (AGIT: counter+tree caches; ASIT: combined)",
        scale,
    );

    let mut table = Table::new(vec![
        "cache (each)".into(),
        "AGIT ops".into(),
        "AGIT s".into(),
        "ASIT ops".into(),
        "ASIT s".into(),
    ]);
    for kb in [256u64, 512, 1024, 2048, 4096] {
        let cache = kb << 10;
        let agit_ops = time::agit_ops(cache, cache, 8 << 40);
        let asit_ops = time::asit_ops(2 * cache);
        table.row(vec![
            format!("{kb} KB"),
            agit_ops.to_string(),
            format!("{:.4}", time::agit_secs(cache, cache, 8 << 40)),
            asit_ops.to_string(),
            format!("{:.4}", time::asit_secs(2 * cache)),
        ]);
    }
    println!("{table}");
    let osiris = time::osiris_full_secs(8 << 40, 4);
    let agit_small = time::agit_secs(256 << 10, 256 << 10, 8 << 40);
    let agit_large = time::agit_secs(4 << 20, 4 << 20, 8 << 40);
    println!(
        "speedup over Osiris full recovery @8TB: {:.0}x (256 KB caches), {:.0}x (4 MB caches)",
        osiris / agit_small,
        osiris / agit_large
    );
    println!("paper reference: ≈0.03 s @256 KB, ≈0.48 s @4 MB AGIT; 58 735x at 4 MB.\n");

    // Executed cross-check: real crash + recovery at miniature scale.
    let spec = spec2006::milc();
    let smoke = Scale {
        ops: scale.ops.min(20_000),
        ..scale
    };
    for kb in [4usize, 8, 16] {
        let config = AnubisConfig::small_test().with_cache_bytes(kb << 10);
        let agit = measured_recovery(&spec, &config, smoke, true).expect("agit recovery");
        let asit = measured_recovery(&spec, &config, smoke, false).expect("asit recovery");
        println!(
            "executed @ {kb:>2} KB caches: AGIT {:>7} ops ({:.6} s) | ASIT {:>7} ops ({:.6} s)",
            agit.total_ops(),
            agit.estimated_secs(),
            asit.total_ops(),
            asit.estimated_secs(),
        );
    }
    println!("\n(executed numbers scale with cache size, not memory size — the paper's point)");
    anubis_bench::telemetry::finish(&telemetry, std::path::Path::new("."), "fig12_recovery_time");
}
