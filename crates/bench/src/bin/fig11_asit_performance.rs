//! Figure 11: run-time overhead of the SGX-style schemes — WriteBack /
//! StrictPersist / Osiris / ASIT — per SPEC-like workload, normalized to
//! WriteBack.

use anubis::{AnubisConfig, SgxScheme};
use anubis_bench::{banner, scale_from_args};
use anubis_sim::experiments::{geomean, sgx_row};
use anubis_sim::{Table, TimingModel};
use anubis_workloads::spec2006;

fn main() {
    let telemetry = anubis_bench::telemetry::start();
    let scale = scale_from_args();
    banner(
        "Figure 11",
        "ASIT performance: normalized execution time (SGX write-back = 1.00)",
        scale,
    );
    let config = AnubisConfig::paper();
    let model = TimingModel::paper();
    let schemes = SgxScheme::all();

    let mut headers = vec!["workload".to_string()];
    headers.extend(schemes.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(headers);

    let mut tail_headers = vec!["workload".to_string()];
    tail_headers.extend(schemes.iter().map(|s| format!("{} p99", s.name())));
    let mut tail = Table::new(tail_headers);

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for spec in spec2006::all() {
        let row = sgx_row(&spec, &config, &model, scale).expect("replay");
        let norm = row.normalized();
        let mut cells = vec![row.workload.clone()];
        for (i, n) in norm.iter().enumerate() {
            per_scheme[i].push(*n);
            cells.push(format!("{n:.3}"));
        }
        table.row(cells);
        let mut tail_cells = vec![row.workload.clone()];
        tail_cells.extend(
            row.results
                .iter()
                .map(|r| format!("{} ns", r.latency.p99_ns)),
        );
        tail.row(tail_cells);
        eprintln!("  done: {}", spec.name);
    }
    let mut cells = vec!["GEOMEAN".to_string()];
    for values in &per_scheme {
        cells.push(format!("{:.3}", geomean(values)));
    }
    table.row(cells);
    println!("{table}");
    println!("p99 per-op latency (simulated ns, same runs):\n{tail}");
    println!(
        "paper reference (averages): write-back 1.00, strict 1.63, osiris ~1.01, \
         asit 1.079. Of the four, only strict and ASIT can actually recover an \
         SGX-style tree; ASIT costs one extra NVM write per data write instead \
         of strict's ~tree-depth.\n\
         Note the mean-vs-tail gap: ASIT's extra shadow write mostly hides in\n\
         the WPQ at the mean but shows up at p99 under write bursts."
    );
    anubis_bench::telemetry::finish(
        &telemetry,
        std::path::Path::new("."),
        "fig11_asit_performance",
    );
}
