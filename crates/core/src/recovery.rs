//! Recovery reports and the analytical recovery-time model.
//!
//! The paper estimates recovery time by counting the blocks that must be
//! fetched/updated plus the hash/decrypt computations, at **100 ns each**
//! (footnote 1). Executed recoveries in this crate count their actual
//! operations; for terabyte-scale capacities (Figs. 5 and 12) the
//! [`time`] module evaluates the same counts analytically.

/// Cost of one recovery operation (fetch + hash/decrypt), per the paper's
/// footnote 1.
pub const NS_PER_RECOVERY_OP: u64 = 100;

/// What a completed recovery did and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// NVM blocks read during recovery.
    pub nvm_reads: u64,
    /// NVM blocks written during recovery.
    pub nvm_writes: u64,
    /// Hash/MAC/ECC-probe computations.
    pub hash_ops: u64,
    /// Encryption counters repaired (Osiris trials that moved a counter).
    pub counters_fixed: u64,
    /// Tree nodes recomputed/restored.
    pub nodes_fixed: u64,
    /// Writes REDOne from the persistent registers at power-up.
    pub redo_writes: u64,
    /// Whether an interrupted page re-encryption was completed first.
    pub reencryption_completed: bool,
}

impl RecoveryReport {
    /// Total recovery operations under the paper's cost model.
    pub fn total_ops(&self) -> u64 {
        self.nvm_reads + self.nvm_writes + self.hash_ops
    }

    /// Estimated wall-clock recovery time in nanoseconds
    /// (`total_ops × 100 ns`).
    pub fn estimated_ns(&self) -> u64 {
        self.total_ops() * NS_PER_RECOVERY_OP
    }

    /// Estimated recovery time in seconds.
    pub fn estimated_secs(&self) -> f64 {
        self.estimated_ns() as f64 * 1e-9
    }
}

/// Analytical recovery-time formulas for capacities too large to execute.
pub mod time {
    use super::NS_PER_RECOVERY_OP;
    use anubis_itree::TreeGeometry;

    /// Recovery operations for **full Osiris recovery** of a
    /// `capacity_bytes` memory with a general tree (Fig. 5): every data
    /// block is read and ECC-probed to fix its counter, every counter
    /// block is read and rewritten, and the whole tree is rebuilt.
    pub fn osiris_full_ops(capacity_bytes: u64, stop_loss: u32) -> u64 {
        let n_data = capacity_bytes / 64;
        let n_ctr = n_data.div_ceil(64);
        let g = TreeGeometry::new(n_ctr.max(1), 8);
        // Per data line: 1 read + ~(stop_loss/2 + 1)/2... the paper charges
        // one fetch and one hash/decrypt per block; expected probe count
        // is small, so we charge 1 read + 1 probe per line (matching the
        // paper's ≈2 ops/block that reproduces its 7.8 h @ 8 TB).
        let _ = stop_loss;
        let counter_fix = n_data * 2 + n_ctr * 2; // read+probe, read+write ctr blocks
                                                  // Tree rebuild: hash every node's children once and write it.
        let interior = g.interior_blocks();
        let tree_rebuild = interior * 2 + g.num_leaves(); // leaf digests + node writes/hashes
        counter_fix + tree_rebuild
    }

    /// Recovery time in seconds for full Osiris recovery (Fig. 5).
    pub fn osiris_full_secs(capacity_bytes: u64, stop_loss: u32) -> f64 {
        osiris_full_ops(capacity_bytes, stop_loss) as f64 * NS_PER_RECOVERY_OP as f64 * 1e-9
    }

    /// Recovery operations for **AGIT** (Fig. 12): scan both shadow
    /// tables, Osiris-fix the 64 counters of every tracked counter block
    /// (one data read + one probe each), and recompute every tracked tree
    /// node from its 8 children.
    pub fn agit_ops(counter_cache_bytes: u64, tree_cache_bytes: u64, capacity_bytes: u64) -> u64 {
        let sct_slots = counter_cache_bytes / 64;
        let smt_slots = tree_cache_bytes / 64;
        let n_ctr = (capacity_bytes / 64).div_ceil(64);
        let g = TreeGeometry::new(n_ctr.max(1), 8);
        let scan = sct_slots + smt_slots;
        // The paper's footnote 1 charges fetch + hash/decrypt as ONE
        // 100 ns unit. Per tracked counter block: 1 block read + 64
        // data-read-and-probe units + 1 write.
        let counter_fix = sct_slots * (1 + 64 + 1);
        // Per tracked node: 8 child read-and-digest units + 1 write.
        let node_fix = smt_slots * (8 + 1);
        // Root check: one digest per level on the final path.
        scan + counter_fix + node_fix + g.num_levels() as u64
    }

    /// AGIT recovery time in seconds (Fig. 12).
    pub fn agit_secs(counter_cache_bytes: u64, tree_cache_bytes: u64, capacity_bytes: u64) -> f64 {
        agit_ops(counter_cache_bytes, tree_cache_bytes, capacity_bytes) as f64
            * NS_PER_RECOVERY_OP as f64
            * 1e-9
    }

    /// Recovery operations for **ASIT** (Fig. 12): scan the ST, re-hash it
    /// against `SHADOW_TREE_ROOT`, then per entry read the stale node,
    /// splice, read the parent (counter) and verify one MAC.
    pub fn asit_ops(metadata_cache_bytes: u64) -> u64 {
        let st_slots = metadata_cache_bytes / 64;
        let g = TreeGeometry::new(st_slots.max(1), 8);
        let shadow_hashes: u64 = (0..g.num_levels()).map(|l| g.nodes_at(l)).sum();
        let scan = st_slots;
        // Per entry: stale-node read + parent read + MAC verify.
        let per_entry = 3u64;
        scan + shadow_hashes + st_slots * per_entry
    }

    /// ASIT recovery time in seconds (Fig. 12).
    pub fn asit_secs(metadata_cache_bytes: u64) -> f64 {
        asit_ops(metadata_cache_bytes) as f64 * NS_PER_RECOVERY_OP as f64 * 1e-9
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fig5_8tb_is_hours() {
            // Paper: ≈ 28 193 s (7.8 h) for 8 TB.
            let secs = osiris_full_secs(8 << 40, 4);
            assert!((20_000.0..40_000.0).contains(&secs), "got {secs}");
        }

        #[test]
        fn fig5_scales_linearly() {
            let s1 = osiris_full_secs(1 << 40, 4);
            let s8 = osiris_full_secs(8 << 40, 4);
            assert!((s8 / s1 - 8.0).abs() < 0.1);
        }

        #[test]
        fn fig12_headline_numbers() {
            // Paper: ≈ 0.03 s at 256 KB caches, ≈ 0.48 s at 4 MB.
            let small = agit_secs(256 << 10, 256 << 10, 8 << 40);
            assert!((0.02..0.06).contains(&small), "256 KB: {small}");
            let large = agit_secs(4 << 20, 4 << 20, 8 << 40);
            assert!((0.3..0.7).contains(&large), "4 MB: {large}");
        }

        #[test]
        fn asit_is_faster_than_agit() {
            for kb in [256u64, 512, 1024, 2048, 4096] {
                let agit = agit_secs(kb << 10, kb << 10, 8 << 40);
                let asit = asit_secs(2 * (kb << 10));
                assert!(asit < agit, "cache {kb} KB: asit {asit} vs agit {agit}");
            }
        }

        #[test]
        fn speedup_is_order_1e5_at_8tb() {
            // Paper: 58 735× at 4 MB caches; ~10^6 at 256 KB.
            let osiris = osiris_full_secs(8 << 40, 4);
            let agit = agit_secs(4 << 20, 4 << 20, 8 << 40);
            let speedup = osiris / agit;
            assert!(speedup > 10_000.0, "speedup only {speedup}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_arithmetic() {
        let r = RecoveryReport {
            nvm_reads: 10,
            nvm_writes: 5,
            hash_ops: 15,
            ..Default::default()
        };
        assert_eq!(r.total_ops(), 30);
        assert_eq!(r.estimated_ns(), 3000);
        assert!((r.estimated_secs() - 3e-6).abs() < 1e-12);
    }
}
