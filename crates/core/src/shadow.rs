//! Shadow-table entry formats (paper Fig. 9).
//!
//! * [`ShadowAddrEntry`] — one SCT/SMT block (AGIT, Fig. 9a): the address
//!   (tree position) of the metadata block resident in the corresponding
//!   cache slot. Only ~3 words of the 64-byte block are used; the table is
//!   sized one block per cache slot, exactly as in the paper (Table 1:
//!   256 KB SCT for a 256 KB counter cache).
//! * [`StEntry`] — one ASIT Shadow Table block (Fig. 9b): the node's
//!   device address (8 B), its 56-bit MAC (7 B) and 49-bit LSBs of each of
//!   the node's eight counters (49 B) — 64 bytes exactly.

use anubis_itree::NodeId;
use anubis_nvm::{Block, BlockAddr};

/// Magic word marking a valid SCT/SMT entry (never-written slots are
/// all-zero and therefore invalid).
const SHADOW_VALID: u64 = 0x414e_5542_4953_0001;

/// One Shadow Counter Table / Shadow Merkle-tree Table entry: the tree
/// position of the block occupying the mirrored cache slot.
///
/// # Example
///
/// ```
/// use anubis::ShadowAddrEntry;
/// use anubis_itree::NodeId;
///
/// let e = ShadowAddrEntry::new(NodeId::new(2, 77));
/// let block = e.to_block();
/// assert_eq!(ShadowAddrEntry::from_block(&block), Some(e));
/// assert_eq!(ShadowAddrEntry::from_block(&Default::default()), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShadowAddrEntry {
    node: NodeId,
}

impl ShadowAddrEntry {
    /// Creates an entry recording `node`.
    pub fn new(node: NodeId) -> Self {
        ShadowAddrEntry { node }
    }

    /// The recorded tree position.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Serializes to a shadow block.
    pub fn to_block(&self) -> Block {
        let mut b = Block::zeroed();
        b.set_word(0, SHADOW_VALID);
        b.set_word(1, self.node.level as u64);
        b.set_word(2, self.node.index);
        b
    }

    /// Parses a shadow block; `None` for invalid (never-written) slots.
    pub fn from_block(b: &Block) -> Option<Self> {
        (b.word(0) == SHADOW_VALID).then(|| ShadowAddrEntry {
            node: NodeId::new(b.word(1) as usize, b.word(2)),
        })
    }

    /// An explicitly invalid slot image (used to clear entries).
    pub fn invalid_block() -> Block {
        Block::zeroed()
    }
}

/// Width of the per-counter LSB field in an ST entry.
pub const ST_LSB_FIELD_BITS: u32 = 49;

/// One ASIT Shadow Table entry: everything needed to restore the mirrored
/// metadata-cache slot after a crash.
///
/// Layout (64 bytes): `addr` (8 B LE) · `mac` (7 B LE) · eight 49-bit LSB
/// fields packed little-endian-bitwise into the remaining 49 bytes.
/// A zero `addr` marks an invalid (never used) slot — the layout places
/// the data region at device address 0, so no metadata node has address 0.
///
/// # Example
///
/// ```
/// use anubis::StEntry;
/// use anubis_nvm::BlockAddr;
///
/// let e = StEntry::new(BlockAddr::new(0x1234), 0xAB_CDEF, [1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(StEntry::from_block(&e.to_block()), Some(e));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StEntry {
    addr: BlockAddr,
    mac: u64,
    lsbs: [u64; 8],
}

impl StEntry {
    /// Creates an entry.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is 0 (reserved as the invalid marker), `mac`
    /// exceeds 56 bits, or any LSB field exceeds 49 bits.
    pub fn new(addr: BlockAddr, mac: u64, lsbs: [u64; 8]) -> Self {
        assert!(
            addr.index() != 0,
            "address 0 is reserved as the invalid ST marker"
        );
        assert!(mac < (1 << 56), "ST MAC must fit 56 bits");
        for l in lsbs {
            assert!(l < (1 << ST_LSB_FIELD_BITS), "LSB field must fit 49 bits");
        }
        StEntry { addr, mac, lsbs }
    }

    /// Device address of the mirrored metadata node.
    pub fn addr(&self) -> BlockAddr {
        self.addr
    }

    /// The node's 56-bit MAC at tracking time.
    pub fn mac(&self) -> u64 {
        self.mac
    }

    /// The 49-bit LSBs of the node's eight counters.
    pub fn lsbs(&self) -> [u64; 8] {
        self.lsbs
    }

    /// Serializes to a 64-byte shadow block.
    pub fn to_block(&self) -> Block {
        let mut b = Block::zeroed();
        let bytes = b.as_bytes_mut();
        bytes[0..8].copy_from_slice(&self.addr.index().to_le_bytes());
        bytes[8..15].copy_from_slice(&self.mac.to_le_bytes()[..7]);
        // Pack 8 × 49-bit fields bitwise starting at byte 15.
        for (i, &v) in self.lsbs.iter().enumerate() {
            let start_bit = i as u32 * ST_LSB_FIELD_BITS;
            write_bits(&mut bytes[15..], start_bit, ST_LSB_FIELD_BITS, v);
        }
        b
    }

    /// Parses a shadow block; `None` for invalid slots (`addr == 0`).
    pub fn from_block(b: &Block) -> Option<Self> {
        let bytes = b.as_bytes();
        let addr = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        if addr == 0 {
            return None;
        }
        let mut mac_bytes = [0u8; 8];
        mac_bytes[..7].copy_from_slice(&bytes[8..15]);
        let mac = u64::from_le_bytes(mac_bytes);
        let mut lsbs = [0u64; 8];
        for (i, l) in lsbs.iter_mut().enumerate() {
            let start_bit = i as u32 * ST_LSB_FIELD_BITS;
            *l = read_bits(&bytes[15..], start_bit, ST_LSB_FIELD_BITS);
        }
        Some(StEntry {
            addr: BlockAddr::new(addr),
            mac,
            lsbs,
        })
    }
}

/// Writes `width` bits of `value` at bit offset `start` into `buf`.
fn write_bits(buf: &mut [u8], start: u32, width: u32, value: u64) {
    debug_assert!(width <= 57, "value plus shift must fit in u64 chunks");
    for bit in 0..width {
        let v = (value >> bit) & 1;
        let pos = (start + bit) as usize;
        if v == 1 {
            buf[pos / 8] |= 1 << (pos % 8);
        } else {
            buf[pos / 8] &= !(1 << (pos % 8));
        }
    }
}

/// Reads `width` bits at bit offset `start` from `buf`.
fn read_bits(buf: &[u8], start: u32, width: u32) -> u64 {
    let mut out = 0u64;
    for bit in 0..width {
        let pos = (start + bit) as usize;
        if buf[pos / 8] & (1 << (pos % 8)) != 0 {
            out |= 1 << bit;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_addr_roundtrip_all_levels() {
        for level in 0..12 {
            for index in [0u64, 1, 0xFFFF_FFFF] {
                let e = ShadowAddrEntry::new(NodeId::new(level, index));
                assert_eq!(ShadowAddrEntry::from_block(&e.to_block()), Some(e));
            }
        }
    }

    #[test]
    fn zero_block_is_invalid() {
        assert_eq!(ShadowAddrEntry::from_block(&Block::zeroed()), None);
        assert_eq!(StEntry::from_block(&Block::zeroed()), None);
        assert_eq!(
            ShadowAddrEntry::from_block(&ShadowAddrEntry::invalid_block()),
            None
        );
    }

    #[test]
    fn st_entry_roundtrip_extremes() {
        let max49 = (1u64 << 49) - 1;
        let e = StEntry::new(
            BlockAddr::new(u64::MAX),
            (1 << 56) - 1,
            [max49, 0, max49, 1, 2, max49 - 1, 12345, max49],
        );
        assert_eq!(StEntry::from_block(&e.to_block()), Some(e));
    }

    #[test]
    fn st_entry_uses_all_64_bytes() {
        let max49 = (1u64 << 49) - 1;
        let e = StEntry::new(BlockAddr::new(1), 0, [max49; 8]);
        let b = e.to_block();
        // Last LSB field ends at bit 15*8 + 8*49 = 512 exactly.
        assert_ne!(b.as_bytes()[63], 0);
    }

    #[test]
    fn st_fields_do_not_bleed() {
        // Each field isolated: set one, others must read zero.
        for i in 0..8 {
            let mut lsbs = [0u64; 8];
            lsbs[i] = (1u64 << 49) - 1;
            let e = StEntry::new(BlockAddr::new(7), 0x42, lsbs);
            let d = StEntry::from_block(&e.to_block()).unwrap();
            assert_eq!(d.lsbs(), lsbs, "field {i} bled");
            assert_eq!(d.mac(), 0x42);
            assert_eq!(d.addr(), BlockAddr::new(7));
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn st_addr_zero_rejected() {
        let _ = StEntry::new(BlockAddr::new(0), 0, [0; 8]);
    }

    #[test]
    #[should_panic(expected = "56 bits")]
    fn st_wide_mac_rejected() {
        let _ = StEntry::new(BlockAddr::new(1), 1 << 56, [0; 8]);
    }

    #[test]
    #[should_panic(expected = "49 bits")]
    fn st_wide_lsb_rejected() {
        let _ = StEntry::new(BlockAddr::new(1), 0, [1 << 49, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn bit_helpers_roundtrip() {
        let mut buf = [0u8; 16];
        write_bits(&mut buf, 3, 49, 0x1_2345_6789_ABCD);
        assert_eq!(read_bits(&buf, 3, 49), 0x1_2345_6789_ABCD);
        write_bits(&mut buf, 52, 49, 0xFFFF);
        assert_eq!(
            read_bits(&buf, 3, 49),
            0x1_2345_6789_ABCD,
            "neighbor untouched"
        );
        assert_eq!(read_bits(&buf, 52, 49), 0xFFFF);
    }
}
