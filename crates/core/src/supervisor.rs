//! The recovery supervisor: an escalation ladder that turns terminal
//! [`RecoveryError`]s into graceful degradation.
//!
//! The paper's recovery algorithms (and `MemoryController::recover`) are
//! all-or-nothing: the first unverifiable block aborts recovery even when
//! a slower path could still restore, or at least bound, the damage. The
//! supervisor drives a [`Supervised`] controller through four rungs:
//!
//! 1. **Fast** — the scheme's shadow-assisted recovery (AGIT SCT/SMT
//!    scan or ASIT ST splice), exactly as `recover()` runs it today.
//! 2. **Retry** — bounded re-runs with exponential backoff accounted in
//!    *simulated* nanoseconds, for transiently correctable media errors
//!    (each retry re-reads and ECC-corrects through the normal path).
//! 3. **Targeted repair** — scheme-specific reconstruction: Osiris-style
//!    counter probing plus bottom-up tree rebuild for the general-tree
//!    family; shadow-table spill-splice or top-down MAC-verify-and-reset
//!    for the SGX family.
//! 4. **Quarantine** — a scrub pass walks every data line; lines that
//!    still cannot be verified are ECC-repaired in place when possible
//!    and otherwise remapped into the spare region by the bad-block
//!    layer in `anubis-nvm`, with permanently lost content counted.
//!
//! The ladder always terminates in a structured [`RecoveryOutcome`]
//! (`Recovered`, `Degraded`, or `Quarantined`) unless the scheme is
//! structurally unable to recover at all (`SchemeCannotRecover`), and is
//! deterministic across recovery lane counts: parallel stages only
//! compute, writes are applied in item order on the supervising thread.

use crate::error::RecoveryError;
use crate::layout::DataAddr;
use crate::parallel;
use crate::recovery::RecoveryReport;
use crate::MemoryController;
use anubis_telemetry::Telemetry;

/// Environment override for the rung-2 retry budget (default
/// [`DEFAULT_MAX_RETRIES`]). Part of the `ANUBIS_*` knob family
/// documented in the README.
pub const MAX_RETRIES_ENV: &str = "ANUBIS_MAX_RETRIES";

/// Rung-2 retry budget when [`MAX_RETRIES_ENV`] is unset.
pub const DEFAULT_MAX_RETRIES: u32 = 3;

/// Simulated backoff before the first retry; doubles per attempt.
pub const BASE_BACKOFF_NS: u64 = 1_000;

/// Scrub passes before the supervisor gives up on convergence. Each pass
/// quarantines every still-failing line, so two passes normally suffice;
/// the cap is a defense against a repair rung that loses ground.
const MAX_SCRUB_PASSES: u32 = 6;

/// How a supervised recovery ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Every line verified through the fast path (possibly after
    /// retries); nothing was rebuilt or lost.
    Recovered,
    /// All committed data survives, but slower rungs had to repair media
    /// (`repaired` lines resealed after ECC correction) or rebuild
    /// metadata (`rebuilt` counter blocks / tree nodes reconstructed).
    Degraded {
        /// Data lines resealed after in-place ECC repair.
        repaired: u64,
        /// Metadata blocks reconstructed (probed counters, rebuilt or
        /// reset tree nodes, respliced shadow entries).
        rebuilt: u64,
    },
    /// Some lines were retired into the spare region; `lost_lines` of
    /// them held committed non-zero content that could not be restored.
    Quarantined {
        /// Permanently lost data lines (quarantined with content).
        lost_lines: u64,
    },
}

impl core::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryOutcome::Recovered => write!(f, "recovered"),
            RecoveryOutcome::Degraded { repaired, rebuilt } => {
                write!(f, "degraded (repaired {repaired}, rebuilt {rebuilt})")
            }
            RecoveryOutcome::Quarantined { lost_lines } => {
                write!(f, "quarantined (lost {lost_lines} lines)")
            }
        }
    }
}

/// Full accounting of a supervised recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisedRecovery {
    /// The structured outcome (see [`RecoveryOutcome`]).
    pub outcome: RecoveryOutcome,
    /// The report of the last successful fast-recovery attempt (zeroed
    /// when recovery only succeeded through targeted repair).
    pub report: RecoveryReport,
    /// Rung-2 attempts consumed.
    pub retries: u32,
    /// Times the ladder escalated past rung 2.
    pub escalations: u32,
    /// Simulated backoff time accumulated by rung 2.
    pub backoff_ns: u64,
    /// Data lines resealed after ECC repair.
    pub repaired_lines: u64,
    /// Metadata blocks reconstructed by rungs 3/4.
    pub rebuilt_nodes: u64,
    /// Lines remapped into the spare region.
    pub quarantined_lines: u64,
    /// Quarantined lines whose committed content was lost.
    pub lost_lines: u64,
}

/// What a targeted-repair or reconcile step accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Data lines resealed after in-place ECC repair.
    pub repaired: u64,
    /// Metadata blocks reconstructed.
    pub rebuilt: u64,
    /// Lines remapped into the spare region.
    pub quarantined: u64,
    /// Quarantined lines that held committed content.
    pub lost: u64,
}

impl RepairSummary {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: RepairSummary) {
        self.repaired += other.repaired;
        self.rebuilt += other.rebuilt;
        self.quarantined += other.quarantined;
        self.lost += other.lost;
    }
}

/// The per-scheme hooks the supervisor drives. Implemented by
/// [`crate::BonsaiController`] and [`crate::SgxController`] (in their
/// `repair` submodules, which have access to controller internals).
pub trait Supervised: MemoryController {
    /// Rung 1: the scheme's fast shadow-assisted recovery.
    ///
    /// # Errors
    ///
    /// Propagates the scheme's [`RecoveryError`] untouched; the
    /// supervisor decides whether to retry or escalate.
    fn fast_recover(&mut self, lanes: usize) -> Result<RecoveryReport, RecoveryError>;

    /// Number of data lines the scrub pass must walk.
    fn data_lines(&self) -> u64;

    /// Per-line media repair: re-read ciphertext and side block,
    /// ECC-correct against the stored code, reseal and write back.
    /// Returns the number of corrected words (0 = media already clean).
    ///
    /// # Errors
    ///
    /// Fails when the line cannot be verified even after correction.
    fn repair_line(&mut self, addr: DataAddr) -> Result<u32, RecoveryError>;

    /// Retires a line into the spare region (or in place once the pool
    /// is exhausted), leaving it readable as zero. Returns `true` when
    /// committed non-zero content was lost.
    ///
    /// # Errors
    ///
    /// Propagates device-level failures only.
    fn quarantine_line(&mut self, addr: DataAddr) -> Result<bool, RecoveryError>;

    /// Rung 3: scheme-specific metadata reconstruction, driven by the
    /// error that defeated the fast path.
    ///
    /// # Errors
    ///
    /// Fails only when the scheme has no slower path for `err`.
    fn targeted_repair(
        &mut self,
        err: &RecoveryError,
        lanes: usize,
    ) -> Result<RepairSummary, RecoveryError>;

    /// Restores metadata self-consistency after per-line repairs and
    /// quarantines (tree digests recomputed, caches invalidated).
    ///
    /// # Errors
    ///
    /// Propagates reconstruction failures.
    fn reconcile_metadata(&mut self, lanes: usize) -> Result<RepairSummary, RecoveryError>;

    /// Persists the bad-block remap table into the `qtable` region.
    fn persist_quarantine(&mut self);

    /// Whether the line's backing block is currently quarantined.
    fn is_line_quarantined(&self, addr: DataAddr) -> bool;

    /// Telemetry handle for supervisor instrumentation.
    fn supervisor_telemetry(&self) -> Telemetry;
}

/// Drives a [`Supervised`] controller through the escalation ladder.
#[derive(Clone, Debug)]
pub struct Supervisor {
    lanes: usize,
    max_retries: u32,
    scrub: bool,
}

impl Supervisor {
    /// A supervisor with the environment's lane count
    /// (`ANUBIS_RECOVERY_THREADS`), the environment's retry budget
    /// (`ANUBIS_MAX_RETRIES`, default 3), and the scrub pass enabled.
    pub fn new() -> Self {
        Supervisor {
            lanes: parallel::recovery_lanes(),
            max_retries: max_retries_from_env(),
            scrub: true,
        }
    }

    /// Overrides the recovery lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.clamp(1, parallel::MAX_LANES);
        self
    }

    /// Overrides the rung-2 retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Enables or disables the O(memory) scrub pass. With scrub off the
    /// supervisor trusts the fast path's verdict and never quarantines —
    /// recovery stays O(cache) but latent data damage goes undetected
    /// until the next read.
    pub fn with_scrub(mut self, scrub: bool) -> Self {
        self.scrub = scrub;
        self
    }

    /// The configured lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The configured retry budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Runs the full ladder.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::SchemeCannotRecover`] when the scheme is
    /// structurally unrecoverable (no shadow information at all) or the
    /// scrub fails to converge; [`RecoveryError::Nvm`] for device-level
    /// failures. Every *content* problem ends in a structured
    /// [`RecoveryOutcome`] instead of an error.
    pub fn recover<C: Supervised + ?Sized>(
        &self,
        ctrl: &mut C,
    ) -> Result<SupervisedRecovery, RecoveryError> {
        let tel = ctrl.supervisor_telemetry();
        let scheme = ctrl.scheme_name();
        let mut out = SupervisedRecovery {
            outcome: RecoveryOutcome::Recovered,
            report: RecoveryReport::default(),
            retries: 0,
            escalations: 0,
            backoff_ns: 0,
            repaired_lines: 0,
            rebuilt_nodes: 0,
            quarantined_lines: 0,
            lost_lines: 0,
        };

        // Rung 1: fast shadow-assisted recovery.
        let first_err = {
            let _g = tel.span("supervisor_rung", "fast");
            match ctrl.fast_recover(self.lanes) {
                Ok(r) => {
                    out.report = r;
                    None
                }
                Err(e) if e.is_refusal() => return Err(self.note_refusal(e, &tel, scheme)),
                Err(e) if is_structural(&e) => return Err(e),
                Err(e) => Some(e),
            }
        };

        if let Some(first) = first_err {
            // Rung 2: bounded retries with exponential simulated backoff.
            let mut last = first;
            let mut fast_ok = false;
            for attempt in 0..self.max_retries {
                out.retries += 1;
                out.backoff_ns += BASE_BACKOFF_NS << attempt;
                tel.incr("supervisor_retries_total", scheme, 1);
                ctrl.crash();
                let _g = tel.span("supervisor_rung", "retry");
                match ctrl.fast_recover(self.lanes) {
                    Ok(r) => {
                        out.report = r;
                        fast_ok = true;
                        break;
                    }
                    Err(e) if e.is_refusal() => return Err(self.note_refusal(e, &tel, scheme)),
                    Err(e) if is_structural(&e) => return Err(e),
                    Err(e) => last = e,
                }
            }
            if !fast_ok {
                // Rung 3: targeted repair.
                out.escalations += 1;
                tel.incr("supervisor_escalations_total", scheme, 1);
                let _g = tel.span("supervisor_rung", "targeted");
                let sum = ctrl.targeted_repair(&last, self.lanes)?;
                self.absorb(&mut out, sum, &tel, scheme);
            }
        }

        // Rung 4: scrub — every line must verify, be repaired, or be
        // explicitly quarantined and counted.
        if self.scrub {
            self.scrub_pass(ctrl, &mut out, &tel, scheme)?;
        }

        if out.quarantined_lines > 0 {
            ctrl.persist_quarantine();
        }
        out.outcome = outcome_of(&out);
        Ok(out)
    }

    /// Enters the ladder at rung 3 with a known corruption hint, then
    /// runs the full ladder.
    ///
    /// This is the restart path for a reopened device image whose
    /// controller reported a non-structural [`RecoveryError`] at reopen
    /// (e.g. [`RecoveryError::CorruptImage`] for an unparseable persisted
    /// quarantine table): the corruption is already known, so waiting for
    /// the fast path to trip over it wastes the retry budget. Targeted
    /// repair runs first with the hint — valid on a freshly reopened,
    /// powered device — and its repair work is merged into the accounting
    /// of the subsequent [`Supervisor::recover`] run.
    ///
    /// # Errors
    ///
    /// Same classes as [`Supervisor::recover`].
    pub fn repair_then_recover<C: Supervised + ?Sized>(
        &self,
        ctrl: &mut C,
        err: &RecoveryError,
    ) -> Result<SupervisedRecovery, RecoveryError> {
        let tel = ctrl.supervisor_telemetry();
        let scheme = ctrl.scheme_name();
        // A freshness refusal from reopen is not a corruption hint: no
        // ladder rung may repair its way into serving rolled-back or
        // unverifiable-epoch state. Refuse before touching the image.
        if err.is_refusal() {
            return Err(self.note_refusal(err.clone(), &tel, scheme));
        }
        // Drain any REDO group left in the persistent registers before
        // repairing over the image (idempotent; rung 1 repeats it).
        let _ = ctrl.domain_mut().power_up();
        tel.incr("supervisor_escalations_total", scheme, 1);
        let pre = {
            let _g = tel.span("supervisor_rung", "targeted");
            ctrl.targeted_repair(err, self.lanes)?
        };
        let mut out = self.recover(ctrl)?;
        out.escalations += 1;
        out.repaired_lines += pre.repaired;
        out.rebuilt_nodes += pre.rebuilt;
        out.quarantined_lines += pre.quarantined;
        out.lost_lines += pre.lost;
        if pre.quarantined > 0 {
            ctrl.persist_quarantine();
        }
        out.outcome = outcome_of(&out);
        Ok(out)
    }

    /// Counts a freshness refusal in telemetry and hands the error back
    /// unchanged — the caller's decision (refuse service, surface to the
    /// operator) happens above the ladder.
    fn note_refusal(
        &self,
        err: RecoveryError,
        tel: &Telemetry,
        scheme: &'static str,
    ) -> RecoveryError {
        match &err {
            RecoveryError::RollbackDetected { .. } => {
                tel.incr("supervisor_rollback_refusals_total", scheme, 1);
            }
            RecoveryError::FreshnessAnchorViolation { .. } => {
                tel.incr("supervisor_anchor_refusals_total", scheme, 1);
            }
            _ => {}
        }
        err
    }

    fn absorb(
        &self,
        out: &mut SupervisedRecovery,
        sum: RepairSummary,
        tel: &Telemetry,
        scheme: &'static str,
    ) {
        out.repaired_lines += sum.repaired;
        out.rebuilt_nodes += sum.rebuilt;
        out.quarantined_lines += sum.quarantined;
        out.lost_lines += sum.lost;
        if sum.repaired > 0 {
            tel.incr("supervisor_repaired_lines_total", scheme, sum.repaired);
        }
        if sum.quarantined > 0 {
            tel.incr(
                "supervisor_quarantined_lines_total",
                scheme,
                sum.quarantined,
            );
        }
        if sum.lost > 0 {
            tel.incr("supervisor_lost_lines_total", scheme, sum.lost);
        }
    }

    fn scrub_pass<C: Supervised + ?Sized>(
        &self,
        ctrl: &mut C,
        out: &mut SupervisedRecovery,
        tel: &Telemetry,
        scheme: &'static str,
    ) -> Result<(), RecoveryError> {
        let _g = tel
            .span("supervisor_rung", "scrub")
            .items(ctrl.data_lines());
        let mut did_targeted = out.escalations > 0;
        for pass in 1..=MAX_SCRUB_PASSES {
            // Serial scan: reads mutate caches, and serial order keeps
            // the pass bit-identical across lane counts.
            let mut failures: Vec<DataAddr> = Vec::new();
            for i in 0..ctrl.data_lines() {
                let addr = DataAddr::new(i);
                if ctrl.read(addr).is_err() {
                    failures.push(addr);
                }
            }
            if failures.is_empty() {
                return Ok(());
            }
            // First failing pass without a rung-3 run yet: give the
            // scheme one shot at wholesale metadata reconstruction
            // before retiring lines one by one.
            if !did_targeted {
                did_targeted = true;
                out.escalations += 1;
                tel.incr("supervisor_escalations_total", scheme, 1);
                let hint = RecoveryError::ScrubFailed { addr: failures[0] };
                if let Ok(sum) = ctrl.targeted_repair(&hint, self.lanes) {
                    self.absorb(out, sum, tel, scheme);
                    continue;
                }
            }
            let mut sum = RepairSummary::default();
            let final_passes = pass >= MAX_SCRUB_PASSES - 2;
            for addr in &failures {
                match ctrl.repair_line(*addr) {
                    Ok(w) if w > 0 => sum.repaired += 1,
                    // Media-clean but unverifiable: on early passes let
                    // reconcile try to re-anchor the metadata first; on
                    // the late passes retire the line.
                    Ok(_) if !final_passes => {}
                    _ => {
                        sum.quarantined += 1;
                        if ctrl.quarantine_line(*addr)? {
                            sum.lost += 1;
                        }
                    }
                }
            }
            let rec = ctrl.reconcile_metadata(self.lanes)?;
            sum.absorb(rec);
            self.absorb(out, sum, tel, scheme);
        }
        // One last check after the final pass's reconcile.
        let clean = (0..ctrl.data_lines()).all(|i| ctrl.read(DataAddr::new(i)).is_ok());
        if clean {
            Ok(())
        } else {
            Err(RecoveryError::SchemeCannotRecover {
                reason: "scrub did not converge",
            })
        }
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new()
    }
}

/// Synthesizes the outcome from the accumulated repair accounting.
fn outcome_of(out: &SupervisedRecovery) -> RecoveryOutcome {
    if out.lost_lines > 0 {
        RecoveryOutcome::Quarantined {
            lost_lines: out.lost_lines,
        }
    } else if out.repaired_lines + out.rebuilt_nodes + out.quarantined_lines > 0 {
        RecoveryOutcome::Degraded {
            repaired: out.repaired_lines,
            rebuilt: out.rebuilt_nodes,
        }
    } else {
        RecoveryOutcome::Recovered
    }
}

/// Errors no ladder rung can improve on: the scheme has no shadow
/// information at all, or the device itself failed.
fn is_structural(err: &RecoveryError) -> bool {
    matches!(
        err,
        RecoveryError::SchemeCannotRecover { .. } | RecoveryError::Nvm(_)
    )
}

fn max_retries_from_env() -> u32 {
    std::env::var(MAX_RETRIES_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_MAX_RETRIES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_display_is_readable() {
        assert_eq!(RecoveryOutcome::Recovered.to_string(), "recovered");
        assert_eq!(
            RecoveryOutcome::Degraded {
                repaired: 2,
                rebuilt: 3
            }
            .to_string(),
            "degraded (repaired 2, rebuilt 3)"
        );
        assert_eq!(
            RecoveryOutcome::Quarantined { lost_lines: 5 }.to_string(),
            "quarantined (lost 5 lines)"
        );
    }

    #[test]
    fn repair_summary_absorbs() {
        let mut a = RepairSummary {
            repaired: 1,
            rebuilt: 2,
            quarantined: 3,
            lost: 1,
        };
        a.absorb(RepairSummary {
            repaired: 10,
            rebuilt: 20,
            quarantined: 30,
            lost: 4,
        });
        assert_eq!(a.repaired, 11);
        assert_eq!(a.rebuilt, 22);
        assert_eq!(a.quarantined, 33);
        assert_eq!(a.lost, 5);
    }

    #[test]
    fn supervisor_builders() {
        let s = Supervisor::new()
            .with_lanes(2)
            .with_max_retries(5)
            .with_scrub(false);
        assert_eq!(s.lanes(), 2);
        assert_eq!(s.max_retries(), 5);
    }
}
