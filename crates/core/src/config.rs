//! Controller configuration.

use anubis_crypto::Key;

/// Configuration for a secure-NVM memory controller.
///
/// Defaults mirror the paper's Table 1; [`AnubisConfig::small_test`]
/// shrinks everything so crash/recovery tests run in milliseconds.
///
/// # Example
///
/// ```
/// use anubis::AnubisConfig;
/// let cfg = AnubisConfig::paper();
/// assert_eq!(cfg.capacity_bytes, 16 << 30);
/// assert_eq!(cfg.counter_cache_bytes, 256 * 1024);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnubisConfig {
    /// Data capacity in bytes (metadata regions are allocated on top).
    pub capacity_bytes: u64,
    /// Counter-cache capacity in bytes (Bonsai family).
    pub counter_cache_bytes: usize,
    /// Counter-cache associativity.
    pub counter_cache_ways: usize,
    /// Merkle-tree-cache capacity in bytes (Bonsai family).
    pub tree_cache_bytes: usize,
    /// Merkle-tree-cache associativity.
    pub tree_cache_ways: usize,
    /// Combined metadata-cache capacity in bytes (SGX family).
    pub metadata_cache_bytes: usize,
    /// Combined metadata-cache associativity.
    pub metadata_cache_ways: usize,
    /// Osiris stop-loss limit: counters are persisted every N-th update.
    pub stop_loss: u8,
    /// Number of counter LSBs stored per ST entry (paper: 49). Lowering
    /// this in tests forces the LSB-overflow persistence path.
    pub st_lsb_bits: u32,
    /// Spare blocks reserved for bad-block quarantine: unrecoverable
    /// lines are remapped here by the recovery supervisor's last rung.
    pub spare_blocks: u64,
    /// Master key; every working key is derived from it.
    pub key: Key,
}

impl AnubisConfig {
    /// The paper's Table 1 configuration: 16 GiB PCM, 256 KiB 8-way
    /// counter cache, 256 KiB 16-way tree cache, 512 KiB combined
    /// metadata cache for ASIT, stop-loss 4.
    pub fn paper() -> Self {
        AnubisConfig {
            capacity_bytes: 16 << 30,
            counter_cache_bytes: 256 * 1024,
            counter_cache_ways: 8,
            tree_cache_bytes: 256 * 1024,
            tree_cache_ways: 16,
            metadata_cache_bytes: 512 * 1024,
            metadata_cache_ways: 16,
            stop_loss: 4,
            st_lsb_bits: 49,
            spare_blocks: 64,
            key: Key([0x0041_4e55_4249_5300, 0x0049_5343_415f_3139]),
        }
    }

    /// A miniature configuration for unit and crash-injection tests:
    /// 1 MiB of data, 4 KiB caches — small enough that evictions and
    /// shadow-slot reuse actually happen in short runs.
    pub fn small_test() -> Self {
        AnubisConfig {
            capacity_bytes: 1 << 20,
            counter_cache_bytes: 4 * 1024,
            counter_cache_ways: 4,
            tree_cache_bytes: 4 * 1024,
            tree_cache_ways: 4,
            metadata_cache_bytes: 8 * 1024,
            metadata_cache_ways: 4,
            stop_loss: 4,
            st_lsb_bits: 49,
            spare_blocks: 64,
            key: Key([7, 13]),
        }
    }

    /// Returns a copy with a different data capacity.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Returns a copy with both Bonsai caches set to `bytes` each and the
    /// combined metadata cache to `2 * bytes` (the Fig. 12/13 sweep rule:
    /// "both counter cache and Merkle tree cache sizes are increased by
    /// the same capacity").
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.counter_cache_bytes = bytes;
        self.tree_cache_bytes = bytes;
        self.metadata_cache_bytes = 2 * bytes;
        self
    }

    /// Returns a copy with a different stop-loss limit.
    pub fn with_stop_loss(mut self, n: u8) -> Self {
        assert!(n >= 1, "stop-loss must be at least 1");
        self.stop_loss = n;
        self
    }

    /// Returns a copy with a different ST LSB width (1..=49).
    pub fn with_st_lsb_bits(mut self, bits: u32) -> Self {
        assert!((1..=49).contains(&bits), "ST LSB width must be 1..=49");
        self.st_lsb_bits = bits;
        self
    }

    /// Returns a copy with a different quarantine spare-pool size.
    pub fn with_spare_blocks(mut self, blocks: u64) -> Self {
        self.spare_blocks = blocks;
        self
    }

    /// Number of 64-byte data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.capacity_bytes / 64
    }
}

impl Default for AnubisConfig {
    fn default() -> Self {
        AnubisConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_1() {
        let c = AnubisConfig::paper();
        assert_eq!(c.counter_cache_ways, 8);
        assert_eq!(c.tree_cache_ways, 16);
        assert_eq!(c.stop_loss, 4);
        assert_eq!(c.st_lsb_bits, 49);
        assert_eq!(c.data_blocks(), (16u64 << 30) / 64);
        assert_eq!(AnubisConfig::default(), c);
    }

    #[test]
    fn builders() {
        let c = AnubisConfig::small_test()
            .with_capacity(2 << 20)
            .with_cache_bytes(8 * 1024)
            .with_stop_loss(8)
            .with_st_lsb_bits(8)
            .with_spare_blocks(16);
        assert_eq!(c.capacity_bytes, 2 << 20);
        assert_eq!(c.counter_cache_bytes, 8 * 1024);
        assert_eq!(c.metadata_cache_bytes, 16 * 1024);
        assert_eq!(c.stop_loss, 8);
        assert_eq!(c.st_lsb_bits, 8);
        assert_eq!(c.spare_blocks, 16);
    }

    #[test]
    #[should_panic(expected = "stop-loss")]
    fn zero_stop_loss_rejected() {
        let _ = AnubisConfig::small_test().with_stop_loss(0);
    }

    #[test]
    #[should_panic(expected = "LSB width")]
    fn bad_lsb_width_rejected() {
        let _ = AnubisConfig::small_test().with_st_lsb_bits(50);
    }
}
