//! Unit tests for the Bonsai controller family.

use super::*;
use crate::MemoryController;

fn cfg() -> AnubisConfig {
    AnubisConfig::small_test()
}

fn controller(scheme: BonsaiScheme) -> BonsaiController {
    BonsaiController::new(scheme, &cfg())
}

fn pattern(i: u64) -> Block {
    Block::from_words([i, i ^ 0xAA, i * 3, i + 7, !i, i << 8, i.rotate_left(13), 42])
}

#[test]
fn fresh_memory_reads_zero() {
    for scheme in BonsaiScheme::all() {
        let mut c = controller(scheme);
        assert_eq!(c.read(DataAddr::new(0)).unwrap(), Block::zeroed());
        assert_eq!(c.read(DataAddr::new(12345)).unwrap(), Block::zeroed());
    }
}

#[test]
fn write_read_roundtrip_all_schemes() {
    for scheme in BonsaiScheme::all() {
        let mut c = controller(scheme);
        for i in 0..50u64 {
            c.write(DataAddr::new(i * 97 % 4000), pattern(i)).unwrap();
        }
        for i in 0..50u64 {
            assert_eq!(
                c.read(DataAddr::new(i * 97 % 4000)).unwrap(),
                pattern(i),
                "{} idx {i}",
                scheme.name()
            );
        }
    }
}

#[test]
fn overwrites_return_latest() {
    let mut c = controller(BonsaiScheme::AgitPlus);
    let a = DataAddr::new(99);
    for i in 0..20u64 {
        c.write(a, pattern(i)).unwrap();
    }
    assert_eq!(c.read(a).unwrap(), pattern(19));
}

#[test]
fn out_of_range_rejected() {
    let mut c = controller(BonsaiScheme::WriteBack);
    let cap = c.layout().data_blocks();
    assert!(matches!(
        c.read(DataAddr::new(cap)),
        Err(MemError::OutOfRange { .. })
    ));
    assert!(c.write(DataAddr::new(cap + 5), Block::zeroed()).is_err());
}

#[test]
fn single_bit_data_flip_corrected_on_read() {
    // One flipped ciphertext bit is within SEC-DED reach: the read path
    // repairs it, re-verifies the MAC, and serves the original data.
    let mut c = controller(BonsaiScheme::Osiris);
    let a = DataAddr::new(7);
    c.write(a, pattern(1)).unwrap();
    c.domain_mut().drain_wpq();
    let dev = c.layout().data_addr(a);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 100);
    assert_eq!(c.read(a).unwrap(), pattern(1));
    assert_eq!(c.ecc_corrections(), 1);
}

#[test]
fn multi_bit_data_tamper_detected_on_read() {
    let mut c = controller(BonsaiScheme::Osiris);
    let a = DataAddr::new(7);
    c.write(a, pattern(1)).unwrap();
    c.domain_mut().drain_wpq();
    let dev = c.layout().data_addr(a);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 100);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 101); // same word
    assert!(matches!(c.read(a), Err(MemError::Crypto(_))));
    assert_eq!(c.ecc_corrections(), 0);
}

#[test]
fn counter_tamper_detected_via_tree() {
    let mut c = controller(BonsaiScheme::WriteBack);
    let a = DataAddr::new(7);
    c.write(a, pattern(1)).unwrap();
    c.shutdown_flush().unwrap();
    // Evict everything so the next read re-fetches and re-verifies.
    c.counter_cache.invalidate_all();
    c.tree_cache.invalidate_all();
    let (leaf, _) = c.layout().counter_of(a);
    let ctr_addr = c.layout().node_addr(leaf);
    c.domain_mut().device_mut().tamper_flip_bit(ctr_addr, 9);
    assert!(matches!(c.read(a), Err(MemError::Integrity { .. })));
}

#[test]
fn tree_node_tamper_detected() {
    let mut c = controller(BonsaiScheme::WriteBack);
    c.write(DataAddr::new(0), pattern(1)).unwrap();
    c.shutdown_flush().unwrap();
    c.counter_cache.invalidate_all();
    c.tree_cache.invalidate_all();
    let node = NodeId::new(1, 0);
    let addr = c.layout().node_addr(node);
    c.domain_mut().device_mut().tamper_flip_bit(addr, 3);
    assert!(matches!(
        c.read(DataAddr::new(0)),
        Err(MemError::Integrity { .. })
    ));
}

#[test]
fn zero_state_tamper_detected() {
    // Writing garbage into a never-written line must not read as valid.
    let mut c = controller(BonsaiScheme::WriteBack);
    let a = DataAddr::new(3);
    let dev = c.layout().data_addr(a);
    c.domain_mut().device_mut().tamper_flip_bit(dev, 0);
    assert!(matches!(c.read(a), Err(MemError::Crypto(_))));
}

#[test]
fn graceful_shutdown_then_recover_for_all_schemes() {
    for scheme in BonsaiScheme::all() {
        let mut c = controller(scheme);
        for i in 0..30u64 {
            c.write(DataAddr::new(i), pattern(i)).unwrap();
        }
        c.shutdown_flush().unwrap();
        c.crash();
        let report = c.recover();
        assert!(report.is_ok(), "{}: {report:?}", scheme.name());
        for i in 0..30u64 {
            assert_eq!(
                c.read(DataAddr::new(i)).unwrap(),
                pattern(i),
                "{}",
                scheme.name()
            );
        }
    }
}

#[test]
fn crash_recover_osiris_and_agit() {
    for scheme in [
        BonsaiScheme::Osiris,
        BonsaiScheme::AgitRead,
        BonsaiScheme::AgitPlus,
    ] {
        let mut c = controller(scheme);
        for i in 0..60u64 {
            c.write(DataAddr::new(i * 13 % 500), pattern(i)).unwrap();
        }
        c.crash(); // no flush: dirty metadata in caches is lost
        let report = c
            .recover()
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert!(report.total_ops() > 0);
        for i in 0..60u64 {
            // Later writes to the same address win; recompute expectation.
            let addr = i * 13 % 500;
            let last = (0..60u64).filter(|j| j * 13 % 500 == addr).max().unwrap();
            assert_eq!(
                c.read(DataAddr::new(addr)).unwrap(),
                pattern(last),
                "{} addr {addr}",
                scheme.name()
            );
        }
    }
}

#[test]
fn writeback_crash_with_dirty_metadata_unrecoverable() {
    let mut c = controller(BonsaiScheme::WriteBack);
    // Write enough times that counters drift past what NVM holds.
    for i in 0..10u64 {
        c.write(DataAddr::new(1), pattern(i)).unwrap();
    }
    c.crash();
    assert_eq!(c.recover(), Err(RecoveryError::RootMismatch));
}

#[test]
fn strict_crash_recovers_trivially() {
    let mut c = controller(BonsaiScheme::StrictPersist);
    for i in 0..25u64 {
        c.write(DataAddr::new(i * 3), pattern(i)).unwrap();
    }
    c.crash();
    let report = c.recover().unwrap();
    assert_eq!(report.counters_fixed, 0);
    for i in 0..25u64 {
        assert_eq!(c.read(DataAddr::new(i * 3)).unwrap(), pattern(i));
    }
}

#[test]
fn agit_recovery_is_much_cheaper_than_osiris() {
    let run = |scheme| {
        let mut c = controller(scheme);
        for i in 0..40u64 {
            c.write(DataAddr::new(i), pattern(i)).unwrap();
        }
        c.crash();
        c.recover().unwrap().total_ops()
    };
    let osiris = run(BonsaiScheme::Osiris);
    let agit = run(BonsaiScheme::AgitPlus);
    assert!(
        agit < osiris,
        "AGIT ({agit}) must beat Osiris ({osiris}) even at test scale"
    );
}

#[test]
fn agit_plus_issues_fewer_shadow_writes_than_agit_read() {
    // Read-heavy access: AGIT-Read shadows every fill, AGIT-Plus only
    // first modifications.
    let run = |scheme| {
        let mut c = controller(scheme);
        for i in 0..20u64 {
            c.write(DataAddr::new(i * 64), pattern(i)).unwrap();
        }
        for _ in 0..5 {
            for i in 0..200u64 {
                c.read(DataAddr::new(i * 64)).unwrap();
            }
        }
        c.domain().device().stats().writes_in("sct")
            + c.domain().device().stats().writes_in("smt")
            + pending_shadow(&c)
    };
    fn pending_shadow(_c: &BonsaiController) -> u64 {
        0 // WPQ coalescing means stats lag slightly; totals dominate anyway
    }
    let read_scheme = run(BonsaiScheme::AgitRead);
    let plus_scheme = run(BonsaiScheme::AgitPlus);
    assert!(
        plus_scheme < read_scheme,
        "AGIT-Plus ({plus_scheme}) must shadow less than AGIT-Read ({read_scheme})"
    );
}

#[test]
fn stop_loss_bounds_counter_drift() {
    let mut c = controller(BonsaiScheme::Osiris);
    let a = DataAddr::new(5);
    for i in 0..9u64 {
        c.write(a, pattern(i)).unwrap();
    }
    c.domain_mut().drain_wpq();
    let (leaf, line) = c.layout().counter_of(a);
    let nvm_ctr = SplitCounterBlock::from_block(&{
        let a = c.layout().node_addr(leaf);
        c.domain_mut().device_mut().read(a)
    });
    let cached = c
        .counter_cache
        .peek(c.layout().node_addr(leaf))
        .expect("resident")
        .ctr;
    let drift = cached.minor(line) - nvm_ctr.minor(line);
    assert!(
        drift < cfg().stop_loss,
        "drift {drift} must stay below stop-loss"
    );
}

#[test]
fn minor_overflow_reencrypts_page_and_stays_readable() {
    let mut c = controller(BonsaiScheme::AgitPlus);
    let a = DataAddr::new(130); // page 2, line 2
    let neighbor = DataAddr::new(131);
    c.write(neighbor, pattern(777)).unwrap();
    for i in 0..(MINOR_MAX as u64 + 5) {
        c.write(a, pattern(i)).unwrap();
    }
    // Major counter must have advanced.
    let (leaf, line) = c.layout().counter_of(a);
    let entry = c
        .counter_cache
        .peek(c.layout().node_addr(leaf))
        .expect("resident");
    assert_eq!(entry.ctr.major(), 1, "major bumped after overflow");
    assert!(entry.ctr.minor(line) >= 1);
    // Both the hot line and its neighbor survive re-encryption.
    assert_eq!(c.read(a).unwrap(), pattern(MINOR_MAX as u64 + 4));
    assert_eq!(c.read(neighbor).unwrap(), pattern(777));
}

#[test]
fn overflow_then_crash_recovers() {
    for scheme in [
        BonsaiScheme::Osiris,
        BonsaiScheme::AgitPlus,
        BonsaiScheme::AgitRead,
    ] {
        let mut c = controller(scheme);
        let a = DataAddr::new(130);
        let neighbor = DataAddr::new(140);
        c.write(neighbor, pattern(1)).unwrap();
        for i in 0..(MINOR_MAX as u64 + 3) {
            c.write(a, pattern(i)).unwrap();
        }
        c.crash();
        c.recover()
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert_eq!(
            c.read(a).unwrap(),
            pattern(MINOR_MAX as u64 + 2),
            "{}",
            scheme.name()
        );
        assert_eq!(c.read(neighbor).unwrap(), pattern(1), "{}", scheme.name());
    }
}

#[test]
fn strict_persist_writes_most_agit_plus_close_to_osiris() {
    // Write-amplification ordering from the paper: strict ≫ agit-read ≥
    // agit-plus ≥ osiris ≥ write-back.
    let amp = |scheme| {
        let mut c = controller(scheme);
        for i in 0..300u64 {
            c.write(DataAddr::new(i * 7 % 2000), pattern(i)).unwrap();
        }
        c.total_cost().writes_per_data_write().unwrap()
    };
    let wb = amp(BonsaiScheme::WriteBack);
    let strict = amp(BonsaiScheme::StrictPersist);
    let osiris = amp(BonsaiScheme::Osiris);
    let agit_r = amp(BonsaiScheme::AgitRead);
    let agit_p = amp(BonsaiScheme::AgitPlus);
    assert!(strict > 3.0 * wb, "strict {strict} vs wb {wb}");
    assert!(osiris >= wb);
    assert!(agit_p >= osiris - 1e-9);
    assert!(agit_r + 1e-9 >= agit_p, "read {agit_r} vs plus {agit_p}");
    assert!(strict > agit_r, "strict {strict} vs agit-read {agit_r}");
}

#[test]
fn costs_are_recorded_per_op() {
    let mut c = controller(BonsaiScheme::AgitPlus);
    c.write(DataAddr::new(0), pattern(0)).unwrap();
    let w = c.last_cost();
    assert!(w.nvm_writes >= 1, "data write staged");
    assert!(w.hash_ops >= 2, "pad+mac at minimum");
    c.read(DataAddr::new(0)).unwrap();
    let r = c.last_cost();
    assert!(r.nvm_reads >= 1);
    assert_eq!(c.total_cost().reads, 1);
    assert_eq!(c.total_cost().writes, 1);
    c.reset_costs();
    assert_eq!(c.total_cost().reads, 0);
}

#[test]
fn recovery_report_counts_fixed_counters() {
    let mut c = controller(BonsaiScheme::AgitPlus);
    for i in 0..3u64 {
        c.write(DataAddr::new(64 * i), pattern(i)).unwrap();
    }
    c.crash();
    let report = c.recover().unwrap();
    // Each written line's counter was at drift 1 (one write since fill,
    // below stop-loss), so three counters needed fixing.
    assert_eq!(report.counters_fixed, 3);
    assert!(report.nodes_fixed >= 1);
    assert!(!report.reencryption_completed);
}

#[test]
fn tampered_sct_detected_at_root_check() {
    // AGIT has no shadow-table integrity tree: tampering SCT misleads
    // recovery into fixing the wrong blocks, which the final root check
    // catches (paper §4.2.1).
    let mut c = controller(BonsaiScheme::AgitPlus);
    for i in 0..10u64 {
        c.write(DataAddr::new(i * 64), pattern(i)).unwrap();
    }
    c.crash();
    // Overwrite every SCT entry with a bogus-but-well-formed entry so the
    // truly-dirty counters are never repaired.
    for slot in 0..c.layout().sct_slots() {
        let bogus = ShadowAddrEntry::new(NodeId::new(0, 99)).to_block();
        let addr = c.layout().sct_slot(slot);
        c.domain_mut().device_mut().poke(addr, bogus);
    }
    assert_eq!(c.recover(), Err(RecoveryError::RootMismatch));
}

#[test]
fn zero_tree_root_is_consistent_with_first_fetch() {
    // A fresh controller must accept its own all-zero NVM image.
    let mut c = controller(BonsaiScheme::WriteBack);
    // Touch two widely separated addresses: exercises multi-level fetch
    // verification against the zero-tree root.
    assert!(c.read(DataAddr::new(0)).is_ok());
    assert!(c.read(DataAddr::new(16000)).is_ok());
}

#[test]
fn cache_stats_flow_through() {
    let mut c = controller(BonsaiScheme::WriteBack);
    for i in 0..100u64 {
        c.write(DataAddr::new(i * 64), pattern(i)).unwrap(); // distinct pages
    }
    let s = c.counter_cache_stats();
    assert!(s.misses >= 64, "each new page misses: {s:?}");
    assert!(c.tree_cache_stats().hits > 0);
}

#[test]
fn flushed_nvm_tree_matches_reference_model() {
    // After a graceful flush, the NVM image (counters + interior nodes)
    // must equal a ReferenceTree built from the NVM counter blocks, and
    // its root must equal the on-chip register — the strongest
    // cross-check between the cached controller and the pure model.
    use anubis_itree::bonsai::ReferenceTree;
    let mut c = controller(BonsaiScheme::WriteBack);
    for i in 0..200u64 {
        c.write(DataAddr::new(i * 29 % 3000), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    let g = c.layout().geometry().clone();
    let leaves: Vec<Block> = (0..g.num_leaves())
        .map(|i| {
            let addr = c.layout().node_addr(NodeId::new(0, i));
            c.domain().device().peek(addr)
        })
        .collect();
    let reference = ReferenceTree::build(cfg().key, leaves);
    assert_eq!(
        reference.root(),
        c.root(),
        "root register equals model root"
    );
    // Every *written* interior node in NVM matches the model node.
    for level in 1..g.num_levels() {
        for index in 0..g.nodes_at(level) {
            let node = NodeId::new(level, index);
            let nvm = c.domain().device().peek(c.layout().node_addr(node));
            if !nvm.is_zeroed() {
                assert_eq!(&nvm, reference.node(node), "node {node}");
            }
        }
    }
}

#[test]
fn agit_recovery_root_matches_reference_after_crash() {
    use anubis_itree::bonsai::ReferenceTree;
    let mut c = controller(BonsaiScheme::AgitPlus);
    for i in 0..150u64 {
        c.write(DataAddr::new(i * 41 % 2500), pattern(i)).unwrap();
    }
    c.crash();
    c.recover().unwrap();
    // Post-recovery NVM counters define the tree; its root must equal the
    // register (recovery already checked this — assert the cross-model
    // equality independently).
    let g = c.layout().geometry().clone();
    let leaves: Vec<Block> = (0..g.num_leaves())
        .map(|i| {
            c.domain()
                .device()
                .peek(c.layout().node_addr(NodeId::new(0, i)))
        })
        .collect();
    let reference = ReferenceTree::build(cfg().key, leaves);
    assert_eq!(reference.root(), c.root());
}

#[test]
fn single_page_memory_works() {
    // Degenerate geometry: one counter block, single-leaf tree (the root
    // IS the leaf digest).
    let tiny = cfg().with_capacity(4096);
    for scheme in BonsaiScheme::all() {
        let mut c = BonsaiController::new(scheme, &tiny);
        assert_eq!(c.layout().geometry().num_levels(), 1, "{}", scheme.name());
        for i in 0..64u64 {
            c.write(DataAddr::new(i), pattern(i)).unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(
                c.read(DataAddr::new(i)).unwrap(),
                pattern(i),
                "{}",
                scheme.name()
            );
        }
        if scheme != BonsaiScheme::WriteBack {
            c.crash();
            c.recover()
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert_eq!(c.read(DataAddr::new(5)).unwrap(), pattern(5));
        }
    }
}

#[test]
fn read_heavy_then_crash_recovers_cleanly() {
    // Reads dirty nothing; recovery after pure reads must be near-trivial
    // and succeed even for write-back.
    let mut c = controller(BonsaiScheme::WriteBack);
    for i in 0..100u64 {
        c.write(DataAddr::new(i), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    for _ in 0..3 {
        for i in 0..100u64 {
            c.read(DataAddr::new(i)).unwrap();
        }
    }
    c.crash();
    c.recover().expect("nothing dirty lost");
    assert_eq!(c.read(DataAddr::new(42)).unwrap(), pattern(42));
}

#[test]
fn recovery_is_idempotent() {
    let mut c = controller(BonsaiScheme::AgitPlus);
    for i in 0..50u64 {
        c.write(DataAddr::new(i * 3), pattern(i)).unwrap();
    }
    c.crash();
    let r1 = c.recover().unwrap();
    // Crash immediately again without any new writes: the second recovery
    // must also succeed, with nothing left to fix.
    c.crash();
    let r2 = c.recover().unwrap();
    assert!(r1.counters_fixed >= r2.counters_fixed);
    assert_eq!(
        r2.counters_fixed, 0,
        "first recovery already persisted the fixes"
    );
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), pattern(0));
}

#[test]
fn counter_write_through_recovers_without_probing() {
    // SecPM-style: counters always current in NVM, so recovery succeeds
    // with zero Osiris probe fixes — but it still walks the whole tree.
    let mut c = controller(BonsaiScheme::CounterWriteThrough);
    for i in 0..60u64 {
        c.write(DataAddr::new(i * 13 % 600), pattern(i)).unwrap();
    }
    c.crash();
    let report = c.recover().unwrap();
    assert_eq!(
        report.counters_fixed, 0,
        "write-through needs no counter fixes"
    );
    assert!(
        report.nodes_fixed >= c.layout().geometry().interior_blocks(),
        "recovery is still O(memory): the whole tree is rebuilt"
    );
    for i in 0..60u64 {
        let addr = i * 13 % 600;
        let last = (0..60u64).filter(|j| j * 13 % 600 == addr).max().unwrap();
        assert_eq!(c.read(DataAddr::new(addr)).unwrap(), pattern(last));
    }
}

#[test]
fn counter_write_through_amplification_between_wb_and_strict() {
    let amp = |scheme| {
        let mut c = controller(scheme);
        for i in 0..200u64 {
            c.write(DataAddr::new(i * 7 % 1000), pattern(i)).unwrap();
        }
        c.total_cost().writes_per_data_write().unwrap()
    };
    let wb = amp(BonsaiScheme::WriteBack);
    let wt = amp(BonsaiScheme::CounterWriteThrough);
    let strict = amp(BonsaiScheme::StrictPersist);
    assert!(
        wt > wb,
        "write-through adds the counter write: {wt} vs {wb}"
    );
    assert!(wt < strict, "but not the whole tree path: {wt} vs {strict}");
    assert!(
        (wt - wb - 1.0).abs() < 0.3,
        "≈ +1 write per data write: {}",
        wt - wb
    );
}

#[test]
fn recovery_completes_reencryption_interrupted_at_any_line() {
    // Reconstruct the exact mid-flight state of `reencrypt_page` — log
    // active, counter block installed, the first `k` lines re-encrypted —
    // and crash there. Recovery must finish the remaining lines from the
    // log's old-counter snapshot, for every interruption point class.
    for k in [0usize, 1, 7, 32, 63, 64] {
        let mut c = controller(BonsaiScheme::AgitPlus);
        let page_base = 64u64; // page 1
        for i in 0..64u64 {
            c.write(DataAddr::new(page_base + i), pattern(i)).unwrap();
        }
        c.shutdown_flush().unwrap();
        let (leaf, _) = c.layout().counter_of(DataAddr::new(page_base));
        let leaf_addr = c.layout().node_addr(leaf);
        let old = SplitCounterBlock::from_block(&c.domain().device().peek(leaf_addr));

        // --- faithful replay of reencrypt_page steps 1–2 ---
        c.ensure_counter(leaf).unwrap();
        let fresh = SplitCounterBlock::with_major(old.major() + 1);
        c.reenc_log = Some(ReencLog {
            leaf: leaf.index,
            old,
            next_line: 0,
        });
        {
            let entry = c.counter_cache.peek_mut(leaf_addr).unwrap();
            entry.ctr = fresh;
            entry.since_persist = 0;
        }
        c.counter_cache.mark_dirty(leaf_addr);
        c.track_counter_if_first_mod(leaf);
        c.stage(leaf_addr, fresh.to_block());
        c.counter_cache.mark_clean(leaf_addr);
        c.update_path(leaf).unwrap();
        c.commit().unwrap();
        // --- step 3, interrupted after k lines ---
        for line in 0..k {
            c.reencrypt_line(leaf.index, &old, old.major() + 1, line)
                .unwrap();
            c.commit().unwrap();
            c.reenc_log.as_mut().unwrap().next_line = line as u8 + 1;
        }

        c.crash();
        let report = c.recover().unwrap_or_else(|e| panic!("k={k}: {e}"));
        assert!(report.reencryption_completed, "k={k}");
        for i in 0..64u64 {
            assert_eq!(
                c.read(DataAddr::new(page_base + i)).unwrap(),
                pattern(i),
                "k={k} line {i}"
            );
        }
        // The page's counter block now carries the bumped major.
        let after = SplitCounterBlock::from_block(&c.domain().device().peek(leaf_addr));
        assert_eq!(after.major(), old.major() + 1, "k={k}");
    }
}

#[test]
fn lazy_scheme_roundtrips_and_root_lags() {
    let mut c = controller(BonsaiScheme::LazyWriteBack);
    let initial_root = c.root();
    for i in 0..80u64 {
        c.write(DataAddr::new(i * 19 % 900), pattern(i)).unwrap();
    }
    for i in 0..80u64 {
        let addr = i * 19 % 900;
        let last = (0..80u64).filter(|j| j * 19 % 900 == addr).max().unwrap();
        assert_eq!(c.read(DataAddr::new(addr)).unwrap(), pattern(last));
    }
    // With a small working set and a warm cache, the top node may never
    // have been written back: the root register may still be stale (it
    // only advances on top-node writebacks). Either way, a graceful flush
    // must advance it to the persisted tree's root.
    c.shutdown_flush().unwrap();
    assert_ne!(c.root(), initial_root, "flush must refresh the lazy root");
}

#[test]
fn lazy_flush_crash_recovers_crash_without_flush_does_not() {
    // Recoverable after a clean flush...
    let mut c = controller(BonsaiScheme::LazyWriteBack);
    for i in 0..40u64 {
        c.write(DataAddr::new(i * 7), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    c.crash();
    c.recover().expect("flushed lazy tree recovers");
    for i in 0..40u64 {
        assert_eq!(c.read(DataAddr::new(i * 7)).unwrap(), pattern(i));
    }
    // ...but not after losing dirty metadata. Two failure shapes, both
    // fatal (paper §2.6): if any writeback advanced the root register, the
    // rebuilt stale tree mismatches it; if nothing was ever written back,
    // the stale root *matches* the stale tree — recovery "succeeds" into a
    // silent rollback and the data written since is unreadable. Either
    // way, committed writes are gone.
    let mut c = controller(BonsaiScheme::LazyWriteBack);
    for i in 0..40u64 {
        c.write(DataAddr::new(i * 7), pattern(i)).unwrap();
    }
    c.crash();
    match c.recover() {
        Err(RecoveryError::RootMismatch) => {}
        Ok(_) => {
            assert!(
                c.read(DataAddr::new(0)).is_err(),
                "silent rollback: post-crash reads of written lines must fail"
            );
        }
        Err(e) => panic!("unexpected recovery error: {e}"),
    }
}

#[test]
fn lazy_is_cheaper_than_eager_at_run_time() {
    // The §2.6 trade-off: lazy updates skip the per-write path hashing.
    let hashes = |scheme| {
        let mut c = controller(scheme);
        for i in 0..300u64 {
            c.write(DataAddr::new(i % 64), pattern(i)).unwrap(); // warm, hot page
        }
        c.total_cost().hash_ops
    };
    let eager = hashes(BonsaiScheme::WriteBack);
    let lazy = hashes(BonsaiScheme::LazyWriteBack);
    assert!(
        lazy * 2 < eager,
        "lazy ({lazy}) must hash far less than eager ({eager}) on a warm cache"
    );
}

#[test]
fn lazy_eviction_cascade_keeps_tree_verifiable() {
    // Heavy churn forces dirty evictions whose digest updates cascade
    // through non-resident parents; everything must stay verifiable.
    let mut c = controller(BonsaiScheme::LazyWriteBack);
    for i in 0..500u64 {
        c.write(DataAddr::new(i * 67 % 8000), pattern(i)).unwrap();
    }
    c.shutdown_flush().unwrap();
    c.counter_cache.invalidate_all();
    c.tree_cache.invalidate_all();
    for i in 0..500u64 {
        let addr = i * 67 % 8000;
        let last = (0..500u64).filter(|j| j * 67 % 8000 == addr).max().unwrap();
        assert_eq!(
            c.read(DataAddr::new(addr)).unwrap(),
            pattern(last),
            "addr {addr}"
        );
    }
}

#[test]
fn all_with_extras_lists_seven_bonsai_schemes() {
    let schemes = BonsaiScheme::all_with_extras();
    let mut names: Vec<_> = schemes.iter().map(|s| s.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 7);
}
