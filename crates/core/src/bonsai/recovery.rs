//! Post-crash recovery for the Bonsai controller family.
//!
//! * **Strict persistence** — nothing was lost; only an interrupted page
//!   re-encryption needs completing.
//! * **Write-back** — rebuild the whole tree from the NVM counters as-is
//!   (no Osiris probing) and compare with the root register: succeeds only
//!   if no dirty metadata was in flight.
//! * **Osiris** — the paper's O(memory) baseline: ECC-probe every counter
//!   of every counter block against its data, then rebuild the entire
//!   tree and compare with the root register.
//! * **AGIT** (Algorithm 1) — scan the SCT/SMT, Osiris-fix only the
//!   tracked counter blocks, recompute only the tracked tree nodes level
//!   by level, then compare with the root register.

use super::{BonsaiController, BonsaiScheme, ReencLog};
use crate::error::RecoveryError;
use crate::layout::LINES_PER_COUNTER_BLOCK;
use crate::recovery::RecoveryReport;
use crate::shadow::ShadowAddrEntry;
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{SealedBlock, SplitCounterBlock};
use anubis_itree::bonsai::Root;
use anubis_itree::NodeId;
use anubis_nvm::{Block, BlockAddr};
use std::collections::BTreeSet;

/// Tallies recovery work separately from the run-time cost model.
#[derive(Default)]
struct Tally {
    reads: u64,
    writes: u64,
    hashes: u64,
    counters_fixed: u64,
    nodes_fixed: u64,
}

pub(super) fn recover(c: &mut BonsaiController) -> Result<RecoveryReport, RecoveryError> {
    let redo_writes = c.domain.power_up() as u64;
    let mut t = Tally::default();

    // Complete any interrupted page re-encryption first; it also tells
    // AGIT recovery which extra path must be repaired.
    let reenc_leaf = complete_reencryption(c, &mut t)?;

    match c.scheme {
        BonsaiScheme::StrictPersist => {
            // All metadata persisted eagerly. If a re-encryption was
            // interrupted, its leaf path must be recomputed (the path
            // writes may have been lost with the commit group).
            if let Some(leaf) = reenc_leaf {
                fix_path(c, leaf, &mut t)?;
                check_root(c, &mut t)?;
            }
        }
        BonsaiScheme::WriteBack
        | BonsaiScheme::CounterWriteThrough
        | BonsaiScheme::LazyWriteBack => {
            // Counters as-is (write-through keeps them current; plain
            // write-back only recovers if nothing dirty was lost), whole
            // tree rebuilt, root compared.
            rebuild_whole_tree(c, &mut t, false)?;
        }
        BonsaiScheme::Osiris => {
            rebuild_whole_tree(c, &mut t, true)?;
        }
        BonsaiScheme::AgitRead | BonsaiScheme::AgitPlus => {
            recover_agit(c, &mut t, reenc_leaf)?;
        }
    }

    Ok(RecoveryReport {
        nvm_reads: t.reads,
        nvm_writes: t.writes,
        hash_ops: t.hashes,
        counters_fixed: t.counters_fixed,
        nodes_fixed: t.nodes_fixed,
        redo_writes,
        reencryption_completed: reenc_leaf.is_some(),
    })
}

fn dev_read(c: &mut BonsaiController, addr: BlockAddr, t: &mut Tally) -> Block {
    t.reads += 1;
    c.domain.device_mut().read(addr)
}

/// Reads a tree node, substituting the canonical zero-state content for
/// never-written interior nodes (see `BonsaiController::nvm_read_node`).
fn dev_read_node(c: &mut BonsaiController, node: NodeId, t: &mut Tally) -> Block {
    let raw = dev_read(c, c.layout.node_addr(node), t);
    if node.level >= 1 && raw.is_zeroed() {
        c.canonical_node(node)
    } else {
        raw
    }
}

fn dev_write(c: &mut BonsaiController, addr: BlockAddr, block: Block, t: &mut Tally) {
    t.writes += 1;
    c.domain.device_mut().write(addr, block);
}

/// Completes an interrupted page re-encryption from the on-chip log
/// (counter block first, then the remaining lines). Returns the affected
/// leaf so tree recovery can repair its path.
fn complete_reencryption(
    c: &mut BonsaiController,
    t: &mut Tally,
) -> Result<Option<NodeId>, RecoveryError> {
    let Some(ReencLog {
        leaf,
        old,
        next_line,
    }) = c.reenc_log
    else {
        return Ok(None);
    };
    let leaf_node = NodeId::new(0, leaf);
    let new_major = old.major() + 1;
    // REDO the counter-block install (idempotent).
    let fresh = SplitCounterBlock::with_major(new_major);
    let leaf_addr = c.layout.node_addr(leaf_node);
    dev_write(c, leaf_addr, fresh.to_block(), t);
    // Finish the lines. Redo the boundary line defensively: a crash may
    // have landed between the line commit and the log bump.
    let start = next_line.saturating_sub(1) as usize;
    for line in start..LINES_PER_COUNTER_BLOCK as usize {
        let Some(data_addr) = c.layout.line_of(leaf, line) else {
            break;
        };
        let dev = c.layout.data_addr(data_addr);
        let side_addr = c.layout.side_addr(data_addr);
        let ciphertext = dev_read(c, dev, t);
        let side = c.domain.device_mut().read(side_addr);
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let new_iv = IvCounter::split(new_major, 0);
        let plaintext = if old.major() == 0 && old.minor(line) == 0 {
            Block::zeroed()
        } else {
            t.hashes += 1;
            let old_iv = IvCounter::split(old.major(), old.minor(line) as u64);
            match c.codec.probe(dev, old_iv, &sealed) {
                Some(pt) => pt,
                None => {
                    t.hashes += 1;
                    if c.codec.probe(dev, new_iv, &sealed).is_some() {
                        continue; // already re-encrypted before the crash
                    }
                    return Err(RecoveryError::CounterNotRecovered { addr: dev });
                }
            }
        };
        t.hashes += 2;
        let resealed = c.codec.seal(dev, new_iv, &plaintext);
        dev_write(c, dev, resealed.ciphertext, t);
        let mut side_new = Block::zeroed();
        side_new.set_word(0, resealed.ecc);
        side_new.set_word(1, resealed.mac);
        c.domain.device_mut().write(side_addr, side_new);
    }
    c.reenc_log = None;
    Ok(Some(leaf_node))
}

/// Osiris-fixes every counter of one counter block against its data
/// lines, writing the repaired block back. Returns whether anything moved.
fn fix_counter_block(
    c: &mut BonsaiController,
    leaf: NodeId,
    t: &mut Tally,
) -> Result<bool, RecoveryError> {
    let leaf_addr = c.layout.node_addr(leaf);
    let stale = SplitCounterBlock::from_block(&dev_read(c, leaf_addr, t));
    let mut fixed = stale;
    let mut changed = false;
    for line in 0..LINES_PER_COUNTER_BLOCK as usize {
        let Some(data_addr) = c.layout.line_of(leaf.index, line) else {
            break;
        };
        let dev = c.layout.data_addr(data_addr);
        let side_addr = c.layout.side_addr(data_addr);
        let ciphertext = dev_read(c, dev, t);
        let side = c.domain.device_mut().read(side_addr);
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let base_minor = stale.minor(line) as u64;
        // Candidate 0: the zero state (never-written line).
        if stale.major() == 0 && base_minor == 0 && ciphertext.is_zeroed() && side.is_zeroed() {
            continue;
        }
        let mut recovered = None;
        for gap in 0..=c.config.stop_loss as u64 {
            let minor = base_minor + gap;
            if minor > anubis_crypto::MINOR_MAX as u64 {
                break; // overflow would have persisted the block
            }
            if stale.major() == 0 && minor == 0 {
                continue; // zero state handled above
            }
            t.hashes += 1;
            let iv = IvCounter::split(stale.major(), minor);
            if c.codec.probe(dev, iv, &sealed).is_some() {
                recovered = Some(gap as u8);
                break;
            }
        }
        match recovered {
            Some(gap) => {
                if gap > 0 {
                    fixed.advance_minor(line, gap);
                    changed = true;
                    t.counters_fixed += 1;
                }
            }
            None => return Err(RecoveryError::CounterNotRecovered { addr: dev }),
        }
    }
    if changed {
        dev_write(c, leaf_addr, fixed.to_block(), t);
    }
    Ok(changed)
}

/// Recomputes one interior node from its children in NVM and writes it.
fn fix_interior_node(c: &mut BonsaiController, node: NodeId, t: &mut Tally) {
    let g = c.layout.geometry().clone();
    let children: Vec<NodeId> = g.children(node).collect();
    let mut digests = Vec::with_capacity(children.len());
    for child in children {
        let child_block = dev_read_node(c, child, t);
        t.hashes += 1;
        digests.push(c.hasher.digest(&child_block));
    }
    let block = c.hasher.parent_block(&digests);
    dev_write(c, c.layout.node_addr(node), block, t);
    t.nodes_fixed += 1;
}

/// Recomputes the root digest from the NVM top node and compares it with
/// the on-chip register.
fn check_root(c: &mut BonsaiController, t: &mut Tally) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();
    let top = g.top();
    let top_block = dev_read_node(c, top, t);
    t.hashes += 1;
    let computed = Root(c.hasher.digest(&top_block));
    if computed == c.root {
        Ok(())
    } else {
        Err(RecoveryError::RootMismatch)
    }
}

/// Recomputes the ancestors of `leaf` from NVM, bottom-up (used after an
/// interrupted re-encryption under strict persistence).
fn fix_path(c: &mut BonsaiController, leaf: NodeId, t: &mut Tally) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();
    for node in g.path_to_top(leaf) {
        fix_interior_node(c, node, t);
    }
    Ok(())
}

/// Whole-memory recovery: optionally Osiris-fix every counter block, then
/// rebuild every interior node bottom-up and compare the root.
fn rebuild_whole_tree(
    c: &mut BonsaiController,
    t: &mut Tally,
    probe_counters: bool,
) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();
    if probe_counters {
        for leaf in 0..g.num_leaves() {
            fix_counter_block(c, NodeId::new(0, leaf), t)?;
        }
    }
    for level in 1..g.num_levels() {
        for index in 0..g.nodes_at(level) {
            fix_interior_node(c, NodeId::new(level, index), t);
        }
    }
    check_root(c, t)
}

/// Algorithm 1 (paper §4.2.3): fix tracked counters, then tracked nodes
/// level by level, then verify the root.
fn recover_agit(
    c: &mut BonsaiController,
    t: &mut Tally,
    reenc_leaf: Option<NodeId>,
) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();

    // Scan the SCT.
    let mut tracked_counters: BTreeSet<u64> = BTreeSet::new();
    for slot in 0..c.layout.sct_slots() {
        let block = dev_read(c, c.layout.sct_slot(slot), t);
        if let Some(entry) = ShadowAddrEntry::from_block(&block) {
            let node = entry.node();
            if node.level == 0 && node.index < g.num_leaves() {
                tracked_counters.insert(node.index);
            }
        }
    }
    // Scan the SMT.
    let mut tracked_nodes: BTreeSet<(usize, u64)> = BTreeSet::new();
    for slot in 0..c.layout.smt_slots() {
        let block = dev_read(c, c.layout.smt_slot(slot), t);
        if let Some(entry) = ShadowAddrEntry::from_block(&block) {
            let node = entry.node();
            if node.level >= 1 && node.level < g.num_levels() && node.index < g.nodes_at(node.level)
            {
                tracked_nodes.insert((node.level, node.index));
            }
        }
    }
    // An interrupted re-encryption repairs its own leaf path regardless of
    // shadow tracking (the tracking commit may have been the lost group).
    if let Some(leaf) = reenc_leaf {
        tracked_counters.insert(leaf.index);
        for node in g.path_to_top(leaf) {
            tracked_nodes.insert((node.level, node.index));
        }
    }

    // Phase 1: fix tracked counter blocks.
    for leaf in tracked_counters {
        fix_counter_block(c, NodeId::new(0, leaf), t)?;
    }

    // Phase 2: fix tracked nodes level by level (order matters: upper
    // levels hash the already-repaired lower levels).
    for level in 1..g.num_levels() {
        let at_level: Vec<u64> = tracked_nodes
            .iter()
            .filter(|(l, _)| *l == level)
            .map(|(_, i)| *i)
            .collect();
        for index in at_level {
            fix_interior_node(c, NodeId::new(level, index), t);
        }
    }

    // Phase 3: root check.
    check_root(c, t)
}
