//! Post-crash recovery for the Bonsai controller family.
//!
//! * **Strict persistence** — nothing was lost; only an interrupted page
//!   re-encryption needs completing.
//! * **Write-back** — rebuild the whole tree from the NVM counters as-is
//!   (no Osiris probing) and compare with the root register: succeeds only
//!   if no dirty metadata was in flight.
//! * **Osiris** — the paper's O(memory) baseline: ECC-probe every counter
//!   of every counter block against its data, then rebuild the entire
//!   tree and compare with the root register.
//! * **AGIT** (Algorithm 1) — scan the SCT/SMT, Osiris-fix only the
//!   tracked counter blocks, recompute only the tracked tree nodes level
//!   by level, then compare with the root register.
//!
//! The heavy sweeps (counter probing, per-level node rebuilds, shadow
//! scans) fan out across recovery lanes (see [`crate::parallel`]): lanes
//! compute over a shared read-only view of the device, the main thread
//! applies the resulting writes in item order. Levels stay sequential
//! bottom-up — parents hash their children's repaired contents — but
//! nodes within a level are independent. Tallies are merged in item order
//! and writes applied in item order, so the [`RecoveryReport`], the final
//! NVM image and the device statistics are bit-identical to the serial
//! path (`lanes == 1`) at any lane count.

use super::{BonsaiController, BonsaiScheme, ReencLog};
use crate::config::AnubisConfig;
use crate::error::RecoveryError;
use crate::layout::{BonsaiLayout, LINES_PER_COUNTER_BLOCK};
use crate::parallel;
use crate::recovery::RecoveryReport;
use crate::shadow::ShadowAddrEntry;
use crate::MemoryController;
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{DataCodec, SealedBlock, SplitCounterBlock};
use anubis_itree::bonsai::{BonsaiHasher, Root};
use anubis_itree::NodeId;
use anubis_nvm::{Block, BlockAddr, NvmBackend, NvmDevice};
use std::collections::BTreeSet;

/// Tallies recovery work separately from the run-time cost model.
#[derive(Default)]
pub(super) struct Tally {
    pub(super) reads: u64,
    pub(super) writes: u64,
    pub(super) hashes: u64,
    pub(super) counters_fixed: u64,
    pub(super) nodes_fixed: u64,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hashes += other.hashes;
        self.counters_fixed += other.counters_fixed;
        self.nodes_fixed += other.nodes_fixed;
    }
}

/// Shared read-only view of the controller for recovery lanes. Lanes only
/// *read* the device (access counting is atomic — see `NvmStats`); all
/// writes are deferred to the main thread, which applies them in item
/// order.
pub(super) struct Ctx<'a, B: NvmBackend> {
    pub(super) dev: &'a NvmDevice<B>,
    pub(super) layout: &'a BonsaiLayout,
    pub(super) codec: &'a DataCodec,
    pub(super) hasher: &'a BonsaiHasher,
    pub(super) config: &'a AnubisConfig,
    canon: &'a [Block],
    edge: &'a [Block],
}

impl<'a, B: NvmBackend> Ctx<'a, B> {
    pub(super) fn of(c: &'a BonsaiController<B>) -> Self {
        Ctx {
            dev: c.domain.device(),
            layout: &c.layout,
            codec: &c.codec,
            hasher: &c.hasher,
            config: &c.config,
            canon: &c.canon,
            edge: &c.edge,
        }
    }

    pub(super) fn read(&self, addr: BlockAddr, t: &mut Tally) -> Block {
        t.reads += 1;
        self.dev.read(addr)
    }

    /// Reads a tree node, substituting the canonical zero-state content
    /// for never-written interior nodes (see
    /// `BonsaiController::nvm_read_node`).
    pub(super) fn read_node(&self, node: NodeId, t: &mut Tally) -> Block {
        let raw = self.read(self.layout.node_addr(node), t);
        if node.level >= 1 && raw.is_zeroed() {
            self.canonical_node(node)
        } else {
            raw
        }
    }

    pub(super) fn canonical_node(&self, node: NodeId) -> Block {
        let g = self.layout.geometry();
        if node.index == g.nodes_at(node.level) - 1 {
            self.edge[node.level]
        } else {
            self.canon[node.level]
        }
    }
}

/// One lane's result for one counter block: the repaired block to write
/// back (if anything moved) plus the work tally.
pub(super) struct LeafFix {
    pub(super) write: Option<Block>,
    pub(super) tally: Tally,
}

pub(super) fn recover<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    lanes: usize,
) -> Result<RecoveryReport, RecoveryError> {
    let tel = c.telemetry.clone();
    let _recovery_span = tel.span("recovery", c.scheme_name());
    let redo_writes = c.domain.power_up() as u64;
    let mut t = Tally::default();

    // Complete any interrupted page re-encryption first; it also tells
    // AGIT recovery which extra path must be repaired.
    let reenc_leaf = {
        let _span = tel.span("recovery_phase", "reencryption_replay");
        complete_reencryption(c, &mut t)?
    };

    match c.scheme {
        BonsaiScheme::StrictPersist => {
            // All metadata persisted eagerly. If a re-encryption was
            // interrupted, its leaf path must be recomputed (the path
            // writes may have been lost with the commit group).
            if let Some(leaf) = reenc_leaf {
                fix_path(c, leaf, &mut t)?;
                check_root(c, &mut t)?;
            }
        }
        BonsaiScheme::WriteBack
        | BonsaiScheme::CounterWriteThrough
        | BonsaiScheme::LazyWriteBack => {
            // Counters as-is (write-through keeps them current; plain
            // write-back only recovers if nothing dirty was lost), whole
            // tree rebuilt, root compared.
            rebuild_whole_tree(c, &mut t, false, lanes)?;
        }
        BonsaiScheme::Osiris => {
            rebuild_whole_tree(c, &mut t, true, lanes)?;
        }
        BonsaiScheme::AgitRead | BonsaiScheme::AgitPlus => {
            recover_agit(c, &mut t, reenc_leaf, lanes)?;
        }
    }

    tel.incr("recovery_runs_total", c.scheme_name(), 1);
    Ok(RecoveryReport {
        nvm_reads: t.reads,
        nvm_writes: t.writes,
        hash_ops: t.hashes,
        counters_fixed: t.counters_fixed,
        nodes_fixed: t.nodes_fixed,
        redo_writes,
        reencryption_completed: reenc_leaf.is_some(),
    })
}

fn dev_read<B: NvmBackend>(c: &mut BonsaiController<B>, addr: BlockAddr, t: &mut Tally) -> Block {
    t.reads += 1;
    c.domain.device_mut().read(addr)
}

pub(super) fn dev_write<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    addr: BlockAddr,
    block: Block,
    t: &mut Tally,
) {
    t.writes += 1;
    c.domain.device_mut().write(addr, block);
}

/// Completes an interrupted page re-encryption from the on-chip log
/// (counter block first, then the remaining lines). Returns the affected
/// leaf so tree recovery can repair its path. Inherently serial: at most
/// one page (64 lines) of sequential REDO work.
pub(super) fn complete_reencryption<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
) -> Result<Option<NodeId>, RecoveryError> {
    let Some(ReencLog {
        leaf,
        old,
        next_line,
    }) = c.reenc_log
    else {
        return Ok(None);
    };
    let leaf_node = NodeId::new(0, leaf);
    let new_major = old.major() + 1;
    // REDO the counter-block install (idempotent).
    let fresh = SplitCounterBlock::with_major(new_major);
    let leaf_addr = c.layout.node_addr(leaf_node);
    dev_write(c, leaf_addr, fresh.to_block(), t);
    // Finish the lines. Redo the boundary line defensively: a crash may
    // have landed between the line commit and the log bump.
    let start = next_line.saturating_sub(1) as usize;
    for line in start..LINES_PER_COUNTER_BLOCK as usize {
        let Some(data_addr) = c.layout.line_of(leaf, line) else {
            break;
        };
        let dev = c.layout.data_addr(data_addr);
        let side_addr = c.layout.side_addr(data_addr);
        let ciphertext = dev_read(c, dev, t);
        let side = c.domain.device_mut().read(side_addr);
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let new_iv = IvCounter::split(new_major, 0);
        let plaintext = if old.major() == 0 && old.minor(line) == 0 {
            Block::zeroed()
        } else {
            t.hashes += 1;
            let old_iv = IvCounter::split(old.major(), old.minor(line) as u64);
            match c.codec.probe(dev, old_iv, &sealed) {
                Some(pt) => pt,
                None => {
                    t.hashes += 1;
                    if c.codec.probe(dev, new_iv, &sealed).is_some() {
                        continue; // already re-encrypted before the crash
                    }
                    return Err(RecoveryError::CounterNotRecovered { addr: dev });
                }
            }
        };
        t.hashes += 2;
        let resealed = c.codec.seal(dev, new_iv, &plaintext);
        dev_write(c, dev, resealed.ciphertext, t);
        let mut side_new = Block::zeroed();
        side_new.set_word(0, resealed.ecc);
        side_new.set_word(1, resealed.mac);
        c.domain.device_mut().write(side_addr, side_new);
    }
    c.reenc_log = None;
    Ok(Some(leaf_node))
}

/// Osiris-fixes every counter of one counter block against its data
/// lines. Pure with respect to the device: the repaired block is returned
/// for the main thread to write, so lanes can run this concurrently.
pub(super) fn probe_counter_block<B: NvmBackend>(
    ctx: &Ctx<'_, B>,
    leaf: NodeId,
) -> Result<LeafFix, RecoveryError> {
    let mut t = Tally::default();
    let leaf_addr = ctx.layout.node_addr(leaf);
    let stale = SplitCounterBlock::from_block(&ctx.read(leaf_addr, &mut t));
    let mut fixed = stale;
    let mut changed = false;
    for line in 0..LINES_PER_COUNTER_BLOCK as usize {
        let Some(data_addr) = ctx.layout.line_of(leaf.index, line) else {
            break;
        };
        let dev = ctx.layout.data_addr(data_addr);
        let side_addr = ctx.layout.side_addr(data_addr);
        let ciphertext = ctx.read(dev, &mut t);
        let side = ctx.dev.read(side_addr);
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let base_minor = stale.minor(line) as u64;
        // Candidate 0: the zero state (never-written line).
        if stale.major() == 0 && base_minor == 0 && ciphertext.is_zeroed() && side.is_zeroed() {
            continue;
        }
        let mut recovered = None;
        for gap in 0..=ctx.config.stop_loss as u64 {
            let minor = base_minor + gap;
            if minor > anubis_crypto::MINOR_MAX as u64 {
                break; // overflow would have persisted the block
            }
            if stale.major() == 0 && minor == 0 {
                continue; // zero state handled above
            }
            t.hashes += 1;
            let iv = IvCounter::split(stale.major(), minor);
            if ctx.codec.probe(dev, iv, &sealed).is_some() {
                recovered = Some(gap as u8);
                break;
            }
        }
        match recovered {
            Some(gap) => {
                if gap > 0 {
                    // The probe loop never exceeds MINOR_MAX for a
                    // well-formed stale block, but a corrupted block can
                    // present minors that overflow when replayed — surface
                    // that as a typed error, never a panic.
                    fixed.advance_minor(line, gap).map_err(|source| {
                        RecoveryError::StopLossExceeded {
                            leaf: leaf.index,
                            source,
                        }
                    })?;
                    changed = true;
                    t.counters_fixed += 1;
                }
            }
            None => return Err(RecoveryError::CounterNotRecovered { addr: dev }),
        }
    }
    Ok(LeafFix {
        write: changed.then(|| fixed.to_block()),
        tally: t,
    })
}

/// Recomputes one interior node from its children in NVM. Pure: returns
/// the rebuilt block for the main thread to write.
pub(super) fn compute_interior_node<B: NvmBackend>(
    ctx: &Ctx<'_, B>,
    node: NodeId,
) -> (Block, Tally) {
    let mut t = Tally::default();
    let g = ctx.layout.geometry();
    let children: Vec<NodeId> = g.children(node).collect();
    let mut digests = Vec::with_capacity(children.len());
    for child in children {
        let child_block = ctx.read_node(child, &mut t);
        t.hashes += 1;
        digests.push(ctx.hasher.digest(&child_block));
    }
    let block = ctx.hasher.parent_block(&digests);
    t.nodes_fixed += 1;
    (block, t)
}

/// Osiris-fixes the given counter blocks across recovery lanes, applying
/// repairs in leaf order. On a probe failure the repairs of preceding
/// leaves are still applied (matching the serial sweep's partial
/// progress) before the error is returned.
fn fix_counter_blocks<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
    leaves: &[u64],
    lanes: usize,
) -> Result<(), RecoveryError> {
    let tel = c.telemetry.clone();
    let _phase = tel
        .span("recovery_phase", "osiris_probe")
        .items(leaves.len() as u64);
    let results = {
        let ctx = Ctx::of(c);
        parallel::map_slice_traced(lanes, leaves, &tel, "osiris_probe_lane", |&leaf| {
            probe_counter_block(&ctx, NodeId::new(0, leaf))
        })
    };
    for (&leaf, result) in leaves.iter().zip(results) {
        let fix = match result {
            Ok(fix) => fix,
            Err(e) => {
                if matches!(e, RecoveryError::StopLossExceeded { .. }) {
                    c.stop_loss_events += 1;
                    tel.incr("stop_loss_events_total", c.scheme_name(), 1);
                }
                return Err(e);
            }
        };
        t.merge(&fix.tally);
        if let Some(block) = fix.write {
            dev_write(c, c.layout.node_addr(NodeId::new(0, leaf)), block, t);
        }
    }
    Ok(())
}

/// Rebuilds the given nodes of one tree level across recovery lanes,
/// writing the results in index order. The caller sequences levels
/// bottom-up: a parent must hash its children's *repaired* contents, so
/// the level boundary is a hard barrier (unlike ASIT ST verification,
/// where nodes verify independently against parent counters).
fn fix_node_level<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
    level: usize,
    indices: &[u64],
    lanes: usize,
) {
    let tel = c.telemetry.clone();
    let _phase = tel
        .span("recovery_phase", &format!("level_rebuild_{level}"))
        .items(indices.len() as u64);
    let results = {
        let ctx = Ctx::of(c);
        parallel::map_slice_traced(lanes, indices, &tel, "level_rebuild_lane", |&index| {
            compute_interior_node(&ctx, NodeId::new(level, index))
        })
    };
    for (&index, (block, tally)) in indices.iter().zip(results) {
        t.merge(&tally);
        dev_write(c, c.layout.node_addr(NodeId::new(level, index)), block, t);
    }
}

/// Recomputes the root digest from the NVM top node and compares it with
/// the on-chip register.
fn check_root<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
) -> Result<(), RecoveryError> {
    let tel = c.telemetry.clone();
    let _span = tel.span("recovery_phase", "root_check");
    let top = c.layout.geometry().top();
    let top_block = {
        let ctx = Ctx::of(c);
        let mut local = Tally::default();
        let b = ctx.read_node(top, &mut local);
        t.merge(&local);
        b
    };
    t.hashes += 1;
    let computed = Root(c.hasher.digest(&top_block));
    if computed == c.root {
        Ok(())
    } else {
        Err(RecoveryError::RootMismatch)
    }
}

/// Recomputes the ancestors of `leaf` from NVM, bottom-up (used after an
/// interrupted re-encryption under strict persistence). A single path is
/// a strict chain — nothing to parallelize.
fn fix_path<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    leaf: NodeId,
    t: &mut Tally,
) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();
    for node in g.path_to_top(leaf) {
        let (block, tally) = {
            let ctx = Ctx::of(c);
            compute_interior_node(&ctx, node)
        };
        t.merge(&tally);
        dev_write(c, c.layout.node_addr(node), block, t);
    }
    Ok(())
}

/// Whole-memory recovery: optionally Osiris-fix every counter block, then
/// rebuild every interior node bottom-up and compare the root.
fn rebuild_whole_tree<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
    probe_counters: bool,
    lanes: usize,
) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();
    if probe_counters {
        let leaves: Vec<u64> = (0..g.num_leaves()).collect();
        fix_counter_blocks(c, t, &leaves, lanes)?;
    }
    for level in 1..g.num_levels() {
        let indices: Vec<u64> = (0..g.nodes_at(level)).collect();
        fix_node_level(c, t, level, &indices, lanes);
    }
    check_root(c, t)
}

/// Algorithm 1 (paper §4.2.3): fix tracked counters, then tracked nodes
/// level by level, then verify the root.
fn recover_agit<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    t: &mut Tally,
    reenc_leaf: Option<NodeId>,
    lanes: usize,
) -> Result<(), RecoveryError> {
    let g = c.layout.geometry().clone();

    // Scan the SCT and SMT across lanes; slot reads are independent and
    // the per-slot parse is pure. Merging into ordered sets in slot order
    // yields the same sets as the serial scan.
    let tel = c.telemetry.clone();
    let (sct_entries, smt_entries) = {
        let _span = tel.span("recovery_phase", "shadow_scan");
        let ctx = Ctx::of(c);
        let sct = parallel::map_range_traced(
            lanes,
            ctx.layout.sct_slots(),
            &tel,
            "shadow_scan_lane",
            |slot| {
                ShadowAddrEntry::from_block(&ctx.dev.read(ctx.layout.sct_slot(slot)))
                    .map(|e| e.node())
            },
        );
        let smt = parallel::map_range_traced(
            lanes,
            ctx.layout.smt_slots(),
            &tel,
            "shadow_scan_lane",
            |slot| {
                ShadowAddrEntry::from_block(&ctx.dev.read(ctx.layout.smt_slot(slot)))
                    .map(|e| e.node())
            },
        );
        (sct, smt)
    };
    t.reads += c.layout.sct_slots() + c.layout.smt_slots();
    let mut tracked_counters: BTreeSet<u64> = BTreeSet::new();
    for node in sct_entries.into_iter().flatten() {
        if node.level == 0 && node.index < g.num_leaves() {
            tracked_counters.insert(node.index);
        }
    }
    let mut tracked_nodes: BTreeSet<(usize, u64)> = BTreeSet::new();
    for node in smt_entries.into_iter().flatten() {
        if node.level >= 1 && node.level < g.num_levels() && node.index < g.nodes_at(node.level) {
            tracked_nodes.insert((node.level, node.index));
        }
    }
    // An interrupted re-encryption repairs its own leaf path regardless of
    // shadow tracking (the tracking commit may have been the lost group).
    if let Some(leaf) = reenc_leaf {
        tracked_counters.insert(leaf.index);
        for node in g.path_to_top(leaf) {
            tracked_nodes.insert((node.level, node.index));
        }
    }

    // Phase 1: fix tracked counter blocks across lanes.
    let leaves: Vec<u64> = tracked_counters.into_iter().collect();
    fix_counter_blocks(c, t, &leaves, lanes)?;

    // Phase 2: fix tracked nodes level by level (order matters: upper
    // levels hash the already-repaired lower levels).
    for level in 1..g.num_levels() {
        let at_level: Vec<u64> = tracked_nodes
            .iter()
            .filter(|(l, _)| *l == level)
            .map(|(_, i)| *i)
            .collect();
        fix_node_level(c, t, level, &at_level, lanes);
    }

    // Phase 3: root check.
    check_root(c, t)
}
