//! Degraded-mode repair hooks for the Bonsai controller family: the
//! [`Supervised`] implementation the recovery supervisor drives when the
//! fast path (and its retries) cannot restore a verified state.
//!
//! The rungs map onto the general-tree design like this:
//!
//! * **Targeted repair** — Osiris-style salvage of *every* counter block
//!   (not just shadow-tracked ones), falling back to per-line probing
//!   when a whole-block probe fails, then a full bottom-up interior
//!   rebuild. Unlike the fast path, the rebuilt root *re-anchors* the
//!   on-chip register: degraded mode explicitly trades the root check
//!   for availability and relies on the scrub pass plus per-line MACs
//!   to bound what an attacker (or the fault) could have changed.
//! * **Per-line repair** — re-open the line through the ECC-correcting
//!   decoder and reseal it when correction moved any words.
//! * **Quarantine** — retire the line's backing block into the spare
//!   region and leave the line readable as zero under its current
//!   counter, counting committed content as lost.

use super::{recovery, BonsaiController};
use crate::error::RecoveryError;
use crate::layout::{DataAddr, LINES_PER_COUNTER_BLOCK};
use crate::parallel;
use crate::recovery::RecoveryReport;
use crate::supervisor::{RepairSummary, Supervised};
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{SealedBlock, SplitCounterBlock, MINOR_MAX};
use anubis_itree::bonsai::Root;
use anubis_itree::NodeId;
use anubis_nvm::{Block, NvmBackend};
use anubis_telemetry::Telemetry;

impl<B: NvmBackend> Supervised for BonsaiController<B> {
    fn fast_recover(&mut self, lanes: usize) -> Result<RecoveryReport, RecoveryError> {
        self.recover_with_lanes(lanes)
    }

    fn data_lines(&self) -> u64 {
        self.layout.data_blocks()
    }

    fn repair_line(&mut self, addr: DataAddr) -> Result<u32, RecoveryError> {
        let (leaf, slot) = self.layout.counter_of(addr);
        let leaf_addr = self.layout.node_addr(leaf);
        let stale = SplitCounterBlock::from_block(&self.domain.device_mut().read(leaf_addr));
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        let ciphertext = self.domain.device_mut().read(dev);
        let side = self.domain.device_mut().read(side_addr);
        if stale.major() == 0 && stale.minor(slot) == 0 {
            // Zero state: clean media is all-zero; anything else cannot
            // be opened (there is no counter to verify against).
            return if ciphertext.is_zeroed() && side.is_zeroed() {
                Ok(0)
            } else {
                Err(RecoveryError::CounterNotRecovered { addr: dev })
            };
        }
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let iv = IvCounter::split(stale.major(), stale.minor(slot) as u64);
        match self.codec.open_correcting(dev, iv, &sealed) {
            Ok((plaintext, fixed)) => {
                if fixed > 0 {
                    let resealed = self.codec.seal(dev, iv, &plaintext);
                    self.domain.device_mut().write(dev, resealed.ciphertext);
                    let mut side_new = Block::zeroed();
                    side_new.set_word(0, resealed.ecc);
                    side_new.set_word(1, resealed.mac);
                    self.domain.device_mut().write(side_addr, side_new);
                    self.ecc_corrections += u64::from(fixed);
                }
                Ok(fixed)
            }
            Err(_) => Err(RecoveryError::CounterNotRecovered { addr: dev }),
        }
    }

    fn quarantine_line(&mut self, addr: DataAddr) -> Result<bool, RecoveryError> {
        let (leaf, slot) = self.layout.counter_of(addr);
        let leaf_addr = self.layout.node_addr(leaf);
        let stale = SplitCounterBlock::from_block(&self.domain.device_mut().read(leaf_addr));
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        let had_content = stale.major() != 0 || stale.minor(slot) != 0;
        self.domain.device_mut().quarantine_block(dev);
        if had_content {
            // Leave the line readable as an explicit zero under its
            // current counter (the counter itself stays untouched so the
            // tree digests remain valid).
            let iv = IvCounter::split(stale.major(), stale.minor(slot) as u64);
            let resealed = self.codec.seal(dev, iv, &Block::zeroed());
            self.domain.device_mut().write(dev, resealed.ciphertext);
            let mut side_new = Block::zeroed();
            side_new.set_word(0, resealed.ecc);
            side_new.set_word(1, resealed.mac);
            self.domain.device_mut().write(side_addr, side_new);
            self.domain.device_mut().record_lost_lines(1);
        } else {
            self.domain.device_mut().write(dev, Block::zeroed());
            self.domain.device_mut().write(side_addr, Block::zeroed());
        }
        Ok(had_content)
    }

    fn targeted_repair(
        &mut self,
        _err: &RecoveryError,
        lanes: usize,
    ) -> Result<RepairSummary, RecoveryError> {
        // The domain is already powered up (rung 1 ran `power_up`); only
        // volatile state needs resetting before the slow rebuild.
        self.counter_cache.invalidate_all();
        self.tree_cache.invalidate_all();
        self.pending.clear();
        // Best-effort replay of an interrupted re-encryption: if even the
        // replay fails the log is dropped and the scrub pass deals with
        // the affected lines individually.
        let mut t = recovery::Tally::default();
        if recovery::complete_reencryption(self, &mut t).is_err() {
            self.reenc_log = None;
        }
        let mut sum = salvage_counters(self, lanes);
        sum.absorb(rebuild_interior(self, lanes));
        Ok(sum)
    }

    fn reconcile_metadata(&mut self, lanes: usize) -> Result<RepairSummary, RecoveryError> {
        self.counter_cache.invalidate_all();
        self.tree_cache.invalidate_all();
        self.pending.clear();
        Ok(rebuild_interior(self, lanes))
    }

    fn persist_quarantine(&mut self) {
        let blocks = self.domain.device().quarantine_table_blocks();
        let cap = self.layout.qtable_blocks();
        for (i, block) in blocks.into_iter().enumerate() {
            if (i as u64) < cap {
                let addr = self.layout.qtable_addr(i as u64);
                self.domain.device_mut().write(addr, block);
            }
        }
    }

    fn is_line_quarantined(&self, addr: DataAddr) -> bool {
        self.domain
            .device()
            .is_quarantined(self.layout.data_addr(addr))
    }

    fn supervisor_telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }
}

/// Osiris-salvages every counter block: whole-block probing across lanes
/// first, then a serial per-line salvage for blocks where probing failed
/// (retiring only the individual lines that cannot be opened, instead of
/// aborting recovery).
fn salvage_counters<B: NvmBackend>(c: &mut BonsaiController<B>, lanes: usize) -> RepairSummary {
    let leaves: Vec<u64> = (0..c.layout.geometry().num_leaves()).collect();
    let results = {
        let ctx = recovery::Ctx::of(c);
        parallel::map_slice(lanes, &leaves, |&leaf| {
            recovery::probe_counter_block(&ctx, NodeId::new(0, leaf))
        })
    };
    let mut sum = RepairSummary::default();
    let mut t = recovery::Tally::default();
    for (&leaf, result) in leaves.iter().zip(results) {
        match result {
            Ok(fix) => {
                if let Some(block) = fix.write {
                    let addr = c.layout.node_addr(NodeId::new(0, leaf));
                    recovery::dev_write(c, addr, block, &mut t);
                    sum.rebuilt += 1;
                }
            }
            Err(_) => salvage_leaf(c, leaf, &mut sum),
        }
    }
    sum
}

/// Per-line salvage of one counter block: lines that probe within the
/// stop-loss window advance the counter; lines that do not are retired
/// into the spare region and zero-sealed under their final counter bits.
fn salvage_leaf<B: NvmBackend>(c: &mut BonsaiController<B>, leaf: u64, sum: &mut RepairSummary) {
    let leaf_node = NodeId::new(0, leaf);
    let leaf_addr = c.layout.node_addr(leaf_node);
    let stale = SplitCounterBlock::from_block(&c.domain.device_mut().read(leaf_addr));
    let mut fixed = stale;
    let mut changed = false;
    for line in 0..LINES_PER_COUNTER_BLOCK as usize {
        let Some(data_addr) = c.layout.line_of(leaf, line) else {
            break;
        };
        let dev = c.layout.data_addr(data_addr);
        let side_addr = c.layout.side_addr(data_addr);
        let ciphertext = c.domain.device_mut().read(dev);
        let side = c.domain.device_mut().read(side_addr);
        let base = stale.minor(line) as u64;
        if stale.major() == 0 && base == 0 && ciphertext.is_zeroed() && side.is_zeroed() {
            continue;
        }
        let sealed = SealedBlock {
            ciphertext,
            ecc: side.word(0),
            mac: side.word(1),
        };
        let mut hit = None;
        for gap in 0..=c.config.stop_loss as u64 {
            let minor = base + gap;
            if minor > MINOR_MAX as u64 {
                break;
            }
            if stale.major() == 0 && minor == 0 {
                continue;
            }
            let iv = IvCounter::split(stale.major(), minor);
            if c.codec.probe(dev, iv, &sealed).is_some() {
                hit = Some(gap as u8);
                break;
            }
        }
        let advanced = match hit {
            Some(0) => true,
            Some(gap) if fixed.advance_minor(line, gap).is_ok() => {
                changed = true;
                sum.rebuilt += 1;
                true
            }
            // No candidate opened the line, or the salvaged minor would
            // overflow on replay: retire it.
            _ => false,
        };
        if !advanced {
            retire_line(c, data_addr, &stale, line, sum);
        }
    }
    if changed {
        c.domain.device_mut().write(leaf_addr, fixed.to_block());
    }
}

/// Retires one data line whose content cannot be opened under any
/// counter candidate: remap the backing block, zero-seal the line under
/// its (unadvanced) counter bits, and count committed content as lost.
fn retire_line<B: NvmBackend>(
    c: &mut BonsaiController<B>,
    data_addr: DataAddr,
    stale: &SplitCounterBlock,
    line: usize,
    sum: &mut RepairSummary,
) {
    let dev = c.layout.data_addr(data_addr);
    let side_addr = c.layout.side_addr(data_addr);
    let had_content = stale.major() != 0 || stale.minor(line) != 0;
    c.domain.device_mut().quarantine_block(dev);
    if had_content {
        let iv = IvCounter::split(stale.major(), stale.minor(line) as u64);
        let resealed = c.codec.seal(dev, iv, &Block::zeroed());
        c.domain.device_mut().write(dev, resealed.ciphertext);
        let mut side_new = Block::zeroed();
        side_new.set_word(0, resealed.ecc);
        side_new.set_word(1, resealed.mac);
        c.domain.device_mut().write(side_addr, side_new);
        c.domain.device_mut().record_lost_lines(1);
        sum.lost += 1;
    } else {
        c.domain.device_mut().write(dev, Block::zeroed());
        c.domain.device_mut().write(side_addr, Block::zeroed());
    }
    sum.quarantined += 1;
}

/// Rebuilds every interior level bottom-up from the (salvaged) leaves and
/// re-anchors the on-chip root to the result. Only nodes whose stored
/// content differs from the recomputation are written — the zero-state
/// tree stays unmaterialized — so `rebuilt` counts genuine reconstruction.
fn rebuild_interior<B: NvmBackend>(c: &mut BonsaiController<B>, lanes: usize) -> RepairSummary {
    let g = c.layout.geometry().clone();
    let mut sum = RepairSummary::default();
    for level in 1..g.num_levels() {
        let indices: Vec<u64> = (0..g.nodes_at(level)).collect();
        let results = {
            let ctx = recovery::Ctx::of(c);
            parallel::map_slice(lanes, &indices, |&index| {
                recovery::compute_interior_node(&ctx, NodeId::new(level, index))
            })
        };
        for (&index, (block, _tally)) in indices.iter().zip(results) {
            let node = NodeId::new(level, index);
            let addr = c.layout.node_addr(node);
            let old = c.domain.device_mut().read(addr);
            let effective_old = if old.is_zeroed() {
                c.canonical_node(node)
            } else {
                old
            };
            if effective_old != block {
                c.domain.device_mut().write(addr, block);
                sum.rebuilt += 1;
            }
        }
    }
    // Degraded mode re-anchors the register to the rebuilt tree: the
    // fast path's root *check* already failed, so the choice is between
    // refusing service and trusting NVM contents that every per-line MAC
    // and the scrub pass still vouch for.
    let top = g.top();
    let top_addr = c.layout.node_addr(top);
    let raw = c.domain.device_mut().read(top_addr);
    let top_block = if top.level >= 1 && raw.is_zeroed() {
        c.canonical_node(top)
    } else {
        raw
    };
    c.root = Root(c.hasher.digest(&top_block));
    sum
}
