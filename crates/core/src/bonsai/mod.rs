//! The general-tree (Bonsai-style) memory controller family.
//!
//! One controller struct implements all five schemes of the paper's §6.1
//! (write-back baseline, strict persistence, Osiris, AGIT-Read and
//! AGIT-Plus); [`BonsaiScheme`] selects which hooks fire. Everything else
//! — counter-mode encryption with split counters, the eagerly-updated
//! 8-ary Merkle tree with its root in an on-chip register, write-back
//! metadata caches, atomic commit groups through the persistent registers
//! — is shared.

mod recovery;
mod repair;

use crate::config::AnubisConfig;
use crate::cost::{CostAccum, OpCost};
use crate::error::{freshness_hint, IntegrityWitness, MemError, RecoveryError};
use crate::layout::{BonsaiLayout, DataAddr, LINES_PER_COUNTER_BLOCK};
use crate::recovery::RecoveryReport;
use crate::shadow::ShadowAddrEntry;
use crate::MemoryController;
use anubis_cache::{Eviction, MetadataCache};
use anubis_crypto::otp::IvCounter;
use anubis_crypto::{DataCodec, MacCache, SealedBlock, SplitCounterBlock, MINOR_MAX};
use anubis_itree::bonsai::{BonsaiHasher, Root};
use anubis_itree::NodeId;
use anubis_nvm::{Block, BlockAddr, MemBackend, NvmBackend, PersistenceDomain, WriteOp};
use anubis_telemetry::Telemetry;

/// Backend register slot mirroring the on-chip Merkle-root register.
pub(crate) const REG_ROOT: u8 = 0;
/// Backend register slot mirroring the re-encryption log header
/// (word 0 = active flag, word 1 = leaf index, word 2 = next line).
pub(crate) const REG_REENC: u8 = 1;
/// Backend register slot mirroring the re-encryption log's old counter
/// block.
pub(crate) const REG_REENC_OLD: u8 = 2;

/// Which §6.1 scheme a [`BonsaiController`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BonsaiScheme {
    /// Plain write-back metadata caches; fastest, but dirty metadata lost
    /// in a crash makes the memory unverifiable (root mismatch).
    WriteBack,
    /// Every counter and tree-node update is persisted immediately, up to
    /// the root. Trivially recoverable; ~tree-depth extra writes per
    /// memory write.
    StrictPersist,
    /// Osiris stop-loss: counters persisted every N-th update; recovery
    /// must ECC-probe *every* counter in memory and rebuild the whole
    /// tree — O(memory size).
    Osiris,
    /// AGIT-Read (paper §4.2.1): Osiris stop-loss plus shadow tables
    /// updated on every counter/tree cache **fill**.
    AgitRead,
    /// AGIT-Plus (paper §4.2.2): shadow tables updated only on a block's
    /// **first modification** in the cache.
    AgitPlus,
    /// SecPM-style counter write-through (paper §7, related work): every
    /// counter update is written through to NVM (the WPQ coalesces
    /// bursts), the tree stays write-back. Counters are always current so
    /// recovery needs no ECC probing — but it still rebuilds the whole
    /// tree, O(memory), and like Osiris it cannot help SGX-style trees.
    CounterWriteThrough,
    /// Lazy-update write-back (paper §2.6's other design point for
    /// general trees): digests propagate upward only when dirty blocks
    /// are written back, so the on-chip root lags the cache. Cheapest at
    /// run time — and unsafe across crashes: after losing dirty metadata,
    /// recovery either fails the root check or, worse, *silently rolls
    /// back* (the stale root matches the stale NVM tree, and every write
    /// since the last writeback becomes unreadable). This is exactly why
    /// §2.6 requires a verifiable cache-content recovery mechanism (ASIT)
    /// before a lazy scheme may be used on persistent memory.
    LazyWriteBack,
}

impl BonsaiScheme {
    /// Scheme name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            BonsaiScheme::WriteBack => "write-back",
            BonsaiScheme::StrictPersist => "strict-persist",
            BonsaiScheme::Osiris => "osiris",
            BonsaiScheme::AgitRead => "agit-read",
            BonsaiScheme::AgitPlus => "agit-plus",
            BonsaiScheme::CounterWriteThrough => "ctr-write-through",
            BonsaiScheme::LazyWriteBack => "lazy-write-back",
        }
    }

    /// All five schemes in the paper's Figure 10 order.
    pub fn all() -> [BonsaiScheme; 5] {
        [
            BonsaiScheme::WriteBack,
            BonsaiScheme::StrictPersist,
            BonsaiScheme::Osiris,
            BonsaiScheme::AgitRead,
            BonsaiScheme::AgitPlus,
        ]
    }

    /// Every implemented scheme, including the beyond-paper SecPM-style
    /// [`BonsaiScheme::CounterWriteThrough`] comparator.
    pub fn all_with_extras() -> [BonsaiScheme; 7] {
        [
            BonsaiScheme::WriteBack,
            BonsaiScheme::StrictPersist,
            BonsaiScheme::Osiris,
            BonsaiScheme::AgitRead,
            BonsaiScheme::AgitPlus,
            BonsaiScheme::CounterWriteThrough,
            BonsaiScheme::LazyWriteBack,
        ]
    }

    fn is_lazy(self) -> bool {
        self == BonsaiScheme::LazyWriteBack
    }

    fn uses_stop_loss(self) -> bool {
        matches!(
            self,
            BonsaiScheme::Osiris | BonsaiScheme::AgitRead | BonsaiScheme::AgitPlus
        )
    }

    fn shadows_on_fill(self) -> bool {
        self == BonsaiScheme::AgitRead
    }

    fn shadows_on_first_mod(self) -> bool {
        self == BonsaiScheme::AgitPlus
    }
}

/// A cached counter block plus its Osiris stop-loss bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CtrEntry {
    pub(crate) ctr: SplitCounterBlock,
    /// Updates since the block was last persisted (stop-loss counter).
    pub(crate) since_persist: u8,
    /// Whether this residency has already written its shadow entry
    /// (AGIT-Plus tracks once per residency, not once per dirty episode —
    /// a stop-loss persist cleans the block without changing its slot).
    pub(crate) tracked: bool,
}

/// The persistent on-chip page re-encryption log: lets a crash interrupt
/// the 64-line re-encryption triggered by a minor-counter overflow without
/// losing data (see DESIGN.md, "Implementation decisions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ReencLog {
    /// Leaf (counter-block) index being re-encrypted.
    pub(crate) leaf: u64,
    /// Counter block *before* the major bump (old minors decrypt the
    /// not-yet-re-encrypted lines).
    pub(crate) old: SplitCounterBlock,
    /// First line not yet re-encrypted.
    pub(crate) next_line: u8,
}

/// The general-tree secure memory controller (paper §4.2 and baselines).
///
/// Generic over the NVM storage backend: the default in-memory
/// [`MemBackend`] for simulation, or a durable backend (e.g.
/// `anubis_nvm::FileBackend`) whose image survives process death and can
/// be reopened with [`BonsaiController::reopen`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Clone, Debug)]
pub struct BonsaiController<B: NvmBackend = MemBackend> {
    scheme: BonsaiScheme,
    config: AnubisConfig,
    layout: BonsaiLayout,
    domain: PersistenceDomain<B>,
    codec: DataCodec,
    hasher: BonsaiHasher,
    counter_cache: MetadataCache<CtrEntry>,
    tree_cache: MetadataCache<Block>,
    /// On-chip persistent register: the Merkle root (eagerly updated).
    root: Root,
    /// Canonical zero-state content of a *full* node at each level (the
    /// value a never-written interior node logically holds). Level 0 is
    /// the zero block.
    canon: Vec<Block>,
    /// Canonical zero-state content of the *last* (possibly ragged) node
    /// at each level.
    edge: Vec<Block>,
    /// On-chip persistent register: interrupted page re-encryption.
    reenc_log: Option<ReencLog>,
    /// Words repaired by the SEC-DED decoder on the data read path.
    ecc_corrections: u64,
    /// Osiris probes that hit the stop-loss / minor-overflow boundary.
    stop_loss_events: u64,
    /// Snapshot images the restore path rejected (parse failure or
    /// epoch behind the sealed anchor).
    snapshot_rejected: u64,
    cost: OpCost,
    totals: CostAccum,
    pending: Vec<WriteOp>,
    /// Volatile cache of MAC-verified line fingerprints: reads of
    /// unmodified lines skip the MAC recomputation (cleared on crash).
    mac_cache: MacCache,
    /// Data seals deferred to commit time, where the whole group is
    /// sealed through the batch crypto path: `(addr, iv, plaintext)`.
    seal_jobs: Vec<(BlockAddr, IvCounter, Block)>,
    /// Indices into `pending` of the placeholder (ciphertext, side) ops
    /// each seal job fills in, parallel to `seal_jobs`.
    seal_slots: Vec<(usize, usize)>,
    /// Reused output buffer for the batch seal (allocation-free steady
    /// state).
    seal_out: Vec<SealedBlock>,
    telemetry: Telemetry,
}

impl BonsaiController {
    /// Builds a controller over a fresh all-zero in-memory NVM image.
    ///
    /// The initial tree state (all counters zero, all nodes absent) is
    /// represented lazily: unwritten NVM reads as zeros, and the on-chip
    /// root is initialized to the digest of that all-zero tree.
    pub fn new(scheme: BonsaiScheme, config: &AnubisConfig) -> Self {
        Self::assemble(scheme, config, |layout| {
            PersistenceDomain::new(layout.device_bytes())
        })
    }
}

impl<B: NvmBackend> BonsaiController<B> {
    /// Shared construction over any persistence domain.
    fn assemble(
        scheme: BonsaiScheme,
        config: &AnubisConfig,
        make_domain: impl FnOnce(&BonsaiLayout) -> PersistenceDomain<B>,
    ) -> Self {
        let counter_cache: MetadataCache<CtrEntry> =
            MetadataCache::new(config.counter_cache_bytes, config.counter_cache_ways);
        let tree_cache: MetadataCache<Block> =
            MetadataCache::new(config.tree_cache_bytes, config.tree_cache_ways);
        let layout = BonsaiLayout::new(
            config,
            counter_cache.num_slots() as u64,
            tree_cache.num_slots() as u64,
        );
        let domain = make_domain(&layout);
        let hasher = BonsaiHasher::new(config.key);
        let (canon, edge) = Self::zero_state_contents(&hasher, &layout);
        let root = Root(hasher.digest(&edge[layout.geometry().top_level()]));
        let mut controller = BonsaiController {
            scheme,
            config: config.clone(),
            layout,
            domain,
            codec: DataCodec::new(config.key),
            hasher,
            counter_cache,
            tree_cache,
            root,
            canon,
            edge,
            reenc_log: None,
            ecc_corrections: 0,
            stop_loss_events: 0,
            snapshot_rejected: 0,
            cost: OpCost::zero(),
            totals: CostAccum::default(),
            pending: Vec::new(),
            mac_cache: MacCache::default(),
            seal_jobs: Vec::new(),
            seal_slots: Vec::new(),
            seal_out: Vec::new(),
            telemetry: Telemetry::global(),
        };
        let regions = controller.layout.regions();
        controller.domain.device_mut().register_regions(regions);
        let spares = controller.layout.spare_pool();
        controller.domain.device_mut().install_spare_pool(spares);
        controller
    }

    /// Reopens a controller over an existing device image (e.g. a
    /// `FileBackend` replayed from disk after the previous process died).
    ///
    /// The on-chip persistent registers (Merkle root, re-encryption log)
    /// are restored from the register mirrors the previous incarnation
    /// committed alongside each group; the bad-block remap table is
    /// reloaded from its persisted region. The caller must still run
    /// recovery ([`crate::Supervisor::recover`]) before serving reads:
    /// reopen restores *registers*, recovery restores *verified state*.
    ///
    /// A corrupt persisted quarantine table does not fail the reopen; the
    /// controller proceeds with an empty table and the second element
    /// carries [`RecoveryError::CorruptImage`] for the supervisor to feed
    /// into targeted repair ([`crate::Supervisor::repair_then_recover`]).
    ///
    /// A backend opened against a sealed freshness anchor (see
    /// `anubis_nvm::FileBackend::open_with_anchor`) may instead report a
    /// freshness violation: the hint is then
    /// [`RecoveryError::RollbackDetected`] or
    /// [`RecoveryError::FreshnessAnchorViolation`], which the supervisor
    /// refuses outright rather than repairing — stale-but-consistent
    /// state must never be served.
    pub fn reopen(
        scheme: BonsaiScheme,
        config: &AnubisConfig,
        backend: B,
    ) -> (Self, Option<RecoveryError>) {
        let mut c = Self::assemble(scheme, config, move |layout| {
            PersistenceDomain::with_backend(layout.device_bytes(), backend)
        });
        if let Some(b) = c.domain.reg(REG_ROOT) {
            c.root = Root(b.word(0));
        }
        if let Some(meta) = c.domain.reg(REG_REENC) {
            if meta.word(0) == 1 {
                let old = c.domain.reg(REG_REENC_OLD).unwrap_or_else(Block::zeroed);
                c.reenc_log = Some(ReencLog {
                    leaf: meta.word(1),
                    old: SplitCounterBlock::from_block(&old),
                    next_line: meta.word(2).min(LINES_PER_COUNTER_BLOCK) as u8,
                });
            }
        }
        let hint = freshness_hint(c.domain.freshness()).or_else(|| c.reload_quarantine_table());
        (c, hint)
    }

    /// Records a snapshot image rejected by the restore path (parse
    /// failure or an epoch behind the sealed anchor) for the
    /// `snapshot_rejected_total` counter.
    pub fn note_snapshot_rejected(&mut self) {
        self.snapshot_rejected += 1;
    }

    /// Restores a captured domain snapshot, refusing one whose epoch is
    /// behind the device's current freshness epoch — a substituted stale
    /// snapshot must never silently replace newer committed state. A
    /// refusal is counted in `snapshot_rejected_total`.
    ///
    /// # Errors
    ///
    /// [`anubis_nvm::NvmError::Snapshot`] with
    /// [`anubis_nvm::SnapshotError::StaleEpoch`] for a rolled-back
    /// snapshot; other [`anubis_nvm::NvmError`]s from the apply itself.
    pub fn restore_snapshot(
        &mut self,
        snap: &anubis_nvm::Snapshot,
    ) -> Result<(), anubis_nvm::NvmError> {
        match self.domain.apply_snapshot(snap) {
            Err(e) => {
                self.note_snapshot_rejected();
                Err(e)
            }
            Ok(()) => Ok(()),
        }
    }

    /// Reloads the persisted bad-block remap table from the qtable
    /// region; returns the corrupt-image hint on parse failure.
    fn reload_quarantine_table(&mut self) -> Option<RecoveryError> {
        let blocks: Vec<Block> = (0..self.layout.qtable_blocks())
            .map(|i| self.domain.device().peek(self.layout.qtable_addr(i)))
            .collect();
        match blocks.first() {
            // Fresh image: no table was ever persisted.
            None => None,
            Some(header) if header.is_zeroed() => None,
            Some(_) => match self.domain.device_mut().load_quarantine_table(&blocks) {
                Ok(()) => None,
                Err(_) => Some(RecoveryError::CorruptImage {
                    what: "quarantine table",
                }),
            },
        }
    }

    /// Computes the canonical zero-state node contents per level.
    ///
    /// Fresh memory is all zeros, and materializing a consistent tree for
    /// terabytes of leaves is out of the question. Instead, a zero block
    /// read at an interior-node address is interpreted as that node's
    /// *canonical zero-state content*: the parent of 8 canonical children.
    /// All full nodes of a level share one content (`canon`); the ragged
    /// right edge differs (`edge`). O(levels) work instead of O(leaves).
    fn zero_state_contents(
        hasher: &BonsaiHasher,
        layout: &BonsaiLayout,
    ) -> (Vec<Block>, Vec<Block>) {
        let g = layout.geometry();
        let mut canon = vec![Block::zeroed()];
        let mut edge = vec![Block::zeroed()];
        for level in 1..g.num_levels() {
            let full_child = hasher.digest(&canon[level - 1]);
            canon.push(hasher.parent_block(&[full_child; 8]));
            let last = NodeId::new(level, g.nodes_at(level) - 1);
            let children: Vec<NodeId> = g.children(last).collect();
            let digests: Vec<u64> = children
                .iter()
                .map(|c| {
                    if c.index == g.nodes_at(level - 1) - 1 {
                        hasher.digest(&edge[level - 1])
                    } else {
                        full_child
                    }
                })
                .collect();
            edge.push(hasher.parent_block(&digests));
        }
        (canon, edge)
    }

    /// The content a never-written node logically holds.
    fn canonical_node(&self, node: NodeId) -> Block {
        let g = self.layout.geometry();
        if node.index == g.nodes_at(node.level) - 1 {
            self.edge[node.level]
        } else {
            self.canon[node.level]
        }
    }

    /// Reads a tree node from NVM, substituting the canonical zero-state
    /// content for never-written (all-zero) interior nodes. A *real*
    /// interior node is all-zero only if all eight stored digests are
    /// zero — probability ≈ 2⁻⁵¹² — so the sentinel is safe.
    fn nvm_read_node(&mut self, node: NodeId) -> Result<Block, MemError> {
        let raw = self.nvm_read(self.layout.node_addr(node))?;
        if node.level >= 1 && raw.is_zeroed() {
            Ok(self.canonical_node(node))
        } else {
            Ok(raw)
        }
    }

    /// The scheme this controller runs.
    pub fn scheme(&self) -> BonsaiScheme {
        self.scheme
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnubisConfig {
        &self.config
    }

    /// The memory layout (for experiments that tamper with NVM directly).
    pub fn layout(&self) -> &BonsaiLayout {
        &self.layout
    }

    /// The on-chip root register.
    pub fn root(&self) -> Root {
        self.root
    }

    /// Counter-cache statistics (hits, misses, clean/dirty evictions —
    /// the Fig. 7 data).
    pub fn counter_cache_stats(&self) -> &anubis_cache::CacheStats {
        self.counter_cache.stats()
    }

    /// Tree-cache statistics.
    pub fn tree_cache_stats(&self) -> &anubis_cache::CacheStats {
        self.tree_cache.stats()
    }

    /// Direct access to the persistence domain (tamper API, device stats).
    pub fn domain_mut(&mut self) -> &mut PersistenceDomain<B> {
        &mut self.domain
    }

    /// Read-only access to the persistence domain.
    pub fn domain(&self) -> &PersistenceDomain<B> {
        &self.domain
    }

    /// Total data words repaired by the SEC-DED decoder (correctable
    /// bit-flip faults absorbed on the read path).
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections
    }

    /// Osiris probes that hit the stop-loss / minor-overflow boundary
    /// (each one surfaced as [`RecoveryError::StopLossExceeded`]).
    pub fn stop_loss_events(&self) -> u64 {
        self.stop_loss_events
    }

    /// The telemetry handle the controller records spans and counters
    /// through (defaults to the process-global registry).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Publishes current device/cache/controller counters into the
    /// telemetry registry. See [`MemoryController::publish_telemetry`].
    pub fn publish_telemetry(&self) {
        if !self.telemetry.enabled() {
            return;
        }
        let t = &self.telemetry;
        let scheme = self.scheme_name();
        let dev = self.domain.device().stats().snapshot();
        t.counter_set("nvm_reads_total", scheme, dev.reads);
        t.counter_set("nvm_writes_total", scheme, dev.writes);
        t.counter_set(
            "nvm_max_writes_to_one_block",
            scheme,
            dev.max_writes_to_one_block,
        );
        for (region, n) in &dev.writes_by_region {
            t.counter_set("nvm_region_writes_total", region, *n);
        }
        let shadow = dev
            .writes_by_region
            .iter()
            .filter(|(r, _)| *r == "sct" || *r == "smt")
            .map(|(_, n)| *n)
            .sum::<u64>();
        t.counter_set("shadow_table_writes_total", scheme, shadow);
        t.counter_set("persist_writes_total", scheme, self.domain.persist_writes());
        t.counter_set("ecc_corrections_total", scheme, self.ecc_corrections);
        t.counter_set("stop_loss_events_total", scheme, self.stop_loss_events);
        let ctr = self.counter_cache.stats();
        t.counter_set("cache_hits_total", "counter", ctr.hits);
        t.counter_set("cache_misses_total", "counter", ctr.misses);
        if let Some(rate) = ctr.hit_rate() {
            t.gauge_set("cache_hit_rate", "counter", rate);
        }
        let tree = self.tree_cache.stats();
        t.counter_set("cache_hits_total", "tree", tree.hits);
        t.counter_set("cache_misses_total", "tree", tree.misses);
        if let Some(rate) = tree.hit_rate() {
            t.gauge_set("cache_hit_rate", "tree", rate);
        }
        t.counter_set("cache_hits_total", "mac", self.mac_cache.hits());
        t.counter_set("cache_misses_total", "mac", self.mac_cache.misses());
        let quarantine = self.domain.device().quarantine_table();
        t.gauge_set("quarantined_blocks", scheme, quarantine.len() as f64);
        t.gauge_set(
            "quarantine_spares_left",
            scheme,
            quarantine.spares_left() as f64,
        );
        t.counter_set(
            "quarantine_lost_lines_total",
            scheme,
            quarantine.lost_lines(),
        );
        t.gauge_set("wpq_occupancy", scheme, self.domain.wpq_occupancy() as f64);
        t.gauge_set("wpq_capacity", scheme, self.domain.wpq_capacity() as f64);
        t.counter_set(
            "wal_rejected_total",
            scheme,
            self.domain.device().backend().frames_rejected(),
        );
        t.counter_set("snapshot_rejected_total", scheme, self.snapshot_rejected);
        let rolled_back = matches!(
            self.domain.freshness(),
            anubis_nvm::Freshness::RolledBack { .. }
        );
        t.counter_set("rollback_detected_total", scheme, rolled_back as u64);
    }

    /// Runs crash recovery with an explicit lane count. `lanes == 1` is
    /// the serial path; any lane count produces a bit-identical
    /// [`RecoveryReport`] and final NVM image (see [`crate::parallel`]).
    /// [`MemoryController::recover`] resolves the lane count from
    /// [`crate::parallel::recovery_lanes`] instead.
    ///
    /// # Errors
    ///
    /// Same classes as [`MemoryController::recover`].
    pub fn recover_with_lanes(&mut self, lanes: usize) -> Result<RecoveryReport, RecoveryError> {
        recovery::recover(self, lanes)
    }

    // ------------------------------------------------------------------
    // Cost-counted primitives
    // ------------------------------------------------------------------

    fn nvm_read(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        self.cost.nvm_reads += 1;
        self.read_through(addr)
    }

    /// Reads a block without charging the timing model (side blocks ride
    /// the same DIMM transfer as their data block).
    fn nvm_read_free(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        self.read_through(addr)
    }

    /// Store-to-load forwarding: the controller must observe writes it has
    /// staged for the current commit group but not yet pushed to the WPQ
    /// (e.g. a dirty tree node evicted and re-fetched within one op).
    fn read_through(&mut self, addr: BlockAddr) -> Result<Block, MemError> {
        if let Some(op) = self.pending.iter().rev().find(|op| op.addr == addr) {
            return Ok(op.block);
        }
        Ok(self.domain.read(addr)?)
    }

    fn stage(&mut self, addr: BlockAddr, block: Block) {
        self.cost.nvm_writes += 1;
        self.pending.push(WriteOp::new(addr, block));
    }

    /// Stages a write without charging the timing model (side blocks).
    fn stage_free(&mut self, addr: BlockAddr, block: Block) {
        self.pending.push(WriteOp::new(addr, block));
    }

    /// Stages a data-line seal for the current commit group without
    /// computing it yet: placeholder ciphertext/side ops hold the group
    /// positions, and [`resolve_seals`](Self::resolve_seals) fills them in
    /// at commit time through the batch crypto path. This is how the write
    /// path — scalar and batched alike — routes every seal of a commit
    /// group through one `seal_batch_into` call.
    fn stage_sealed(&mut self, dev: BlockAddr, side_addr: BlockAddr, iv: IvCounter, data: Block) {
        self.cost.hash_ops += 2; // pad + MAC
        let data_idx = self.pending.len();
        self.stage(dev, Block::zeroed());
        let side_idx = self.pending.len();
        self.stage_free(side_addr, Block::zeroed());
        self.seal_jobs.push((dev, iv, data));
        self.seal_slots.push((data_idx, side_idx));
    }

    /// Seals every deferred data line of the current group in one batch
    /// and patches the placeholder ops. Also primes the MAC cache: a
    /// freshly sealed line is by construction MAC-verified.
    fn resolve_seals(&mut self) {
        if self.seal_jobs.is_empty() {
            return;
        }
        self.codec
            .seal_batch_into(&self.seal_jobs, &mut self.seal_out);
        for (((dev, iv, _), (data_idx, side_idx)), sealed) in self
            .seal_jobs
            .iter()
            .zip(&self.seal_slots)
            .zip(&self.seal_out)
        {
            self.pending[*data_idx].block = sealed.ciphertext;
            let mut side = Block::zeroed();
            side.set_word(0, sealed.ecc);
            side.set_word(1, sealed.mac);
            self.pending[*side_idx].block = side;
            self.codec
                .note_sealed(&mut self.mac_cache, *dev, *iv, sealed);
        }
        self.seal_jobs.clear();
        self.seal_slots.clear();
    }

    fn commit(&mut self) -> Result<(), MemError> {
        self.resolve_seals();
        if self.pending.is_empty() {
            return Ok(());
        }
        let ops = std::mem::take(&mut self.pending);
        let regs = self.reg_mirrors();
        self.domain.commit_group_with_regs(ops, &regs)?;
        Ok(())
    }

    /// Backend mirrors of the on-chip persistent registers, committed
    /// (and made durable) with every group so a restart can restore them
    /// via [`BonsaiController::reopen`]. The mirrors ride the same
    /// backend barrier as the group's writes: a crash before the ack
    /// drops both together.
    fn reg_mirrors(&self) -> [(u8, Block); 3] {
        let mut root = Block::zeroed();
        root.set_word(0, self.root.0);
        let mut meta = Block::zeroed();
        let mut old = Block::zeroed();
        if let Some(log) = &self.reenc_log {
            meta.set_word(0, 1);
            meta.set_word(1, log.leaf);
            meta.set_word(2, log.next_line as u64);
            old = log.old.to_block();
        }
        [(REG_ROOT, root), (REG_REENC, meta), (REG_REENC_OLD, old)]
    }

    fn digest(&mut self, content: &Block) -> u64 {
        self.cost.hash_ops += 1;
        self.hasher.digest(content)
    }

    // ------------------------------------------------------------------
    // Cache management with shadow hooks
    // ------------------------------------------------------------------

    /// Inserts a verified tree node, handling the displaced victim and the
    /// AGIT-Read fill hook.
    fn insert_tree_node(&mut self, node: NodeId, content: Block) {
        let addr = self.layout.node_addr(node);
        let outcome = self.tree_cache.insert(addr, content);
        if let Some(ev) = outcome.evicted {
            self.writeback_tree_victim(ev);
        }
        if self.scheme.shadows_on_fill() {
            let slot = outcome.slot.linear(self.tree_cache.ways()) as u64;
            let entry = ShadowAddrEntry::new(node).to_block();
            let smt = self.layout.smt_slot(slot);
            self.stage(smt, entry);
        }
    }

    fn writeback_tree_victim(&mut self, ev: Eviction<Block>) {
        if ev.dirty {
            if self.scheme.is_lazy() {
                let node = self
                    .layout
                    .node_of_addr(ev.addr)
                    .expect("tree cache keys are node addresses");
                self.lazy_propagate_digest(node, &ev.value)
                    .expect("digest propagation only reads/writes the device");
            }
            self.stage(ev.addr, ev.value);
        }
    }

    /// Inserts a verified counter block, handling the victim and the
    /// AGIT-Read fill hook.
    fn insert_counter(&mut self, leaf: NodeId, entry: CtrEntry) {
        let addr = self.layout.node_addr(leaf);
        let outcome = self.counter_cache.insert(addr, entry);
        if let Some(ev) = outcome.evicted {
            if ev.dirty {
                let block = ev.value.ctr.to_block();
                if self.scheme.is_lazy() {
                    let node = self
                        .layout
                        .node_of_addr(ev.addr)
                        .expect("counter cache keys are leaf addresses");
                    self.lazy_propagate_digest(node, &block)
                        .expect("digest propagation only reads/writes the device");
                }
                self.stage(ev.addr, block);
            }
        }
        if self.scheme.shadows_on_fill() {
            let slot = outcome.slot.linear(self.counter_cache.ways()) as u64;
            let block = ShadowAddrEntry::new(leaf).to_block();
            let sct = self.layout.sct_slot(slot);
            self.stage(sct, block);
        }
    }

    /// AGIT-Plus hook: stage the shadow entry for a counter block the
    /// first time it is modified during its residency.
    fn track_counter_if_first_mod(&mut self, leaf: NodeId) {
        if !self.scheme.shadows_on_first_mod() {
            return;
        }
        let addr = self.layout.node_addr(leaf);
        let entry = self
            .counter_cache
            .peek_mut(addr)
            .expect("just-modified counter block is resident");
        if entry.tracked {
            return;
        }
        entry.tracked = true;
        let slot = self
            .counter_cache
            .slot_of(addr)
            .expect("resident")
            .linear(self.counter_cache.ways()) as u64;
        let block = ShadowAddrEntry::new(leaf).to_block();
        let sct = self.layout.sct_slot(slot);
        self.stage(sct, block);
    }

    fn track_tree_node_if_first_mod(&mut self, node: NodeId, first_mod: bool) {
        if self.scheme.shadows_on_first_mod() && first_mod {
            let addr = self.layout.node_addr(node);
            let slot = self
                .tree_cache
                .slot_of(addr)
                .expect("just-modified tree node is resident")
                .linear(self.tree_cache.ways()) as u64;
            let block = ShadowAddrEntry::new(node).to_block();
            let smt = self.layout.smt_slot(slot);
            self.stage(smt, block);
        }
    }

    // ------------------------------------------------------------------
    // Verified fetch paths
    // ------------------------------------------------------------------

    /// Ensures an interior node is resident and verified. Fetches the
    /// missing suffix of the path to the first cached ancestor (or the
    /// root register) and verifies top-down.
    fn ensure_tree_node(&mut self, node: NodeId) -> Result<(), MemError> {
        debug_assert!(node.level >= 1, "counter blocks use ensure_counter");
        // One lookup records the hit/miss; retries use `contains` so a
        // thrash-retry doesn't double-count.
        if self
            .tree_cache
            .lookup(self.layout.node_addr(node))
            .is_some()
        {
            return Ok(());
        }
        for _attempt in 0..8 {
            if self.tree_cache.contains(self.layout.node_addr(node)) {
                return Ok(());
            }
            self.fetch_tree_chain(node)?;
        }
        panic!("tree cache thrashing: cannot keep path for {node} resident");
    }

    fn fetch_tree_chain(&mut self, node: NodeId) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        // Collect the missing suffix: node itself plus uncached ancestors.
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(p) = g.parent(cur) {
            if self.tree_cache.contains(self.layout.node_addr(p)) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        // Fetch and verify top-down.
        for n in chain.into_iter().rev() {
            let content = self.nvm_read_node(n)?;
            let d = self.digest(&content);
            match g.parent(n) {
                None => {
                    if Root(d) != self.root {
                        return Err(MemError::Integrity {
                            node: n,
                            against: IntegrityWitness::RootRegister,
                        });
                    }
                }
                Some(p) => {
                    let p_addr = self.layout.node_addr(p);
                    let stored = self
                        .tree_cache
                        .peek(p_addr)
                        .expect("parent fetched before child")
                        .word(g.child_slot(n));
                    if stored != d {
                        return Err(MemError::Integrity {
                            node: n,
                            against: IntegrityWitness::ParentDigest,
                        });
                    }
                }
            }
            self.insert_tree_node(n, content);
        }
        Ok(())
    }

    /// Ensures the counter block `leaf` is resident and verified.
    fn ensure_counter(&mut self, leaf: NodeId) -> Result<(), MemError> {
        debug_assert_eq!(leaf.level, 0);
        let addr = self.layout.node_addr(leaf);
        if self.counter_cache.lookup(addr).is_some() {
            return Ok(());
        }
        for _attempt in 0..8 {
            if self.counter_cache.contains(addr) {
                return Ok(());
            }
            let content = self.nvm_read(addr)?;
            let d = self.digest(&content);
            let g = self.layout.geometry().clone();
            match g.parent(leaf) {
                None => {
                    // Single-leaf tree: the leaf digest *is* the root.
                    if Root(d) != self.root {
                        return Err(MemError::Integrity {
                            node: leaf,
                            against: IntegrityWitness::RootRegister,
                        });
                    }
                }
                Some(p) => {
                    self.ensure_tree_node(p)?;
                    let stored = self
                        .tree_cache
                        .peek(self.layout.node_addr(p))
                        .expect("ensured above")
                        .word(g.child_slot(leaf));
                    if stored != d {
                        return Err(MemError::Integrity {
                            node: leaf,
                            against: IntegrityWitness::ParentDigest,
                        });
                    }
                }
            }
            let entry = CtrEntry {
                ctr: SplitCounterBlock::from_block(&content),
                since_persist: 0,
                tracked: false,
            };
            self.insert_counter(leaf, entry);
        }
        if self.counter_cache.contains(addr) {
            return Ok(());
        }
        panic!("counter cache thrashing: cannot keep {leaf} resident");
    }

    // ------------------------------------------------------------------
    // Eager tree update
    // ------------------------------------------------------------------

    /// Propagates a changed counter block up the tree (eager scheme):
    /// updates every ancestor's stored digest in the cache and finally the
    /// on-chip root register. Under strict persistence the updated nodes
    /// are also staged for writeback.
    fn update_path(&mut self, leaf: NodeId) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        let leaf_addr = self.layout.node_addr(leaf);
        let leaf_block = self
            .counter_cache
            .peek(leaf_addr)
            .expect("leaf resident during path update")
            .ctr
            .to_block();
        let mut child = leaf;
        let mut child_digest = self.digest(&leaf_block);
        while let Some(parent) = g.parent(child) {
            self.ensure_tree_node(parent)?;
            let p_addr = self.layout.node_addr(parent);
            let slot = g.child_slot(child);
            {
                let p_block = self.tree_cache.peek_mut(p_addr).expect("ensured above");
                p_block.set_word(slot, child_digest);
            }
            let first_mod = self.tree_cache.mark_dirty(p_addr);
            self.track_tree_node_if_first_mod(parent, first_mod);
            let updated = *self.tree_cache.peek(p_addr).expect("still resident");
            if self.scheme == BonsaiScheme::StrictPersist {
                self.stage(p_addr, updated);
                self.tree_cache.mark_clean(p_addr);
            }
            child_digest = self.digest(&updated);
            child = parent;
        }
        self.root = Root(child_digest);
        Ok(())
    }

    /// Lazy-scheme digest propagation: `child` is being written back with
    /// `content`; update its parent's stored digest — in the cache if the
    /// parent is resident, otherwise read-modify-write the parent in NVM,
    /// which is itself a writeback that cascades upward. Writing back the
    /// top node refreshes the root register (the only time the lazy
    /// scheme's root advances).
    fn lazy_propagate_digest(&mut self, child: NodeId, content: &Block) -> Result<(), MemError> {
        let g = self.layout.geometry().clone();
        let d = self.digest(content);
        let Some(parent) = g.parent(child) else {
            self.root = Root(d);
            return Ok(());
        };
        let slot = g.child_slot(child);
        let p_addr = self.layout.node_addr(parent);
        if self.tree_cache.contains(p_addr) {
            self.tree_cache
                .peek_mut(p_addr)
                .expect("checked resident")
                .set_word(slot, d);
            self.tree_cache.mark_dirty(p_addr);
            return Ok(());
        }
        let mut p_block = self.nvm_read_node(parent)?;
        p_block.set_word(slot, d);
        // Writing the parent back is a writeback of the parent: cascade.
        self.lazy_propagate_digest(parent, &p_block)?;
        self.stage(p_addr, p_block);
        Ok(())
    }

    /// Orderly shutdown for the lazy scheme: write back dirty blocks
    /// bottom-up, propagating digests, until the cache is clean and the
    /// root register reflects the fully persisted tree.
    fn lazy_flush(&mut self) -> Result<(), MemError> {
        loop {
            // Dirty counters first, then the lowest-level dirty tree node.
            let next_counter = self
                .counter_cache
                .iter_resident()
                .find(|(_, _, _, dirty)| *dirty)
                .map(|(_, addr, entry, _)| (addr, entry.ctr.to_block()));
            let next = next_counter.or_else(|| {
                self.tree_cache
                    .iter_resident()
                    .filter(|(_, _, _, dirty)| *dirty)
                    .min_by_key(|(_, addr, _, _)| {
                        self.layout
                            .node_of_addr(*addr)
                            .map(|n| n.level)
                            .unwrap_or(usize::MAX)
                    })
                    .map(|(_, addr, block, _)| (addr, *block))
            });
            let Some((addr, block)) = next else { break };
            let node = self.layout.node_of_addr(addr).expect("metadata address");
            self.lazy_propagate_digest(node, &block)?;
            self.stage(addr, block);
            if node.level == 0 {
                self.counter_cache.mark_clean(addr);
            } else {
                self.tree_cache.mark_clean(addr);
            }
            self.commit()?;
        }
        self.commit()?;
        self.domain.drain_wpq();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page re-encryption (minor-counter overflow)
    // ------------------------------------------------------------------

    /// Handles a minor-counter overflow for `leaf`: bumps the major
    /// counter, resets minors, persistently re-encrypts all 64 lines of
    /// the page, all crash-safely via the on-chip re-encryption log.
    fn reencrypt_page(&mut self, leaf: NodeId) -> Result<(), MemError> {
        let leaf_addr = self.layout.node_addr(leaf);
        let old = self
            .counter_cache
            .peek(leaf_addr)
            .expect("leaf resident before re-encryption")
            .ctr;
        // Step 1+2 (atomic from recovery's view): activate the log and
        // install the new counter state, root included, persisting the new
        // counter block. If the commit group is lost, recovery REDOes it
        // from the log.
        let fresh = SplitCounterBlock::with_major(old.major() + 1);
        self.reenc_log = Some(ReencLog {
            leaf: leaf.index,
            old,
            next_line: 0,
        });
        {
            let entry = self
                .counter_cache
                .peek_mut(leaf_addr)
                .expect("leaf resident");
            entry.ctr = fresh;
            entry.since_persist = 0;
        }
        self.counter_cache.mark_dirty(leaf_addr);
        self.track_counter_if_first_mod(leaf);
        self.stage(leaf_addr, fresh.to_block());
        self.counter_cache.mark_clean(leaf_addr);
        self.update_path(leaf)?;
        self.commit()?;
        // Step 3: re-encrypt lines one by one; the log's next_line tracks
        // progress so a crash resumes exactly where it stopped.
        for line in 0..LINES_PER_COUNTER_BLOCK as usize {
            self.reencrypt_line(leaf.index, &old, old.major() + 1, line)?;
            self.commit()?;
            if let Some(log) = &mut self.reenc_log {
                log.next_line = line as u8 + 1;
            }
        }
        // Step 4: done.
        self.reenc_log = None;
        Ok(())
    }

    /// Re-encrypts one line of a page from its old counter to
    /// `(new_major, 0)`. Also used by recovery to finish an interrupted
    /// re-encryption (where the "already done" probe matters).
    fn reencrypt_line(
        &mut self,
        leaf_index: u64,
        old: &SplitCounterBlock,
        new_major: u64,
        line: usize,
    ) -> Result<(), MemError> {
        let Some(data_addr) = self.layout.line_of(leaf_index, line) else {
            return Ok(()); // ragged last page
        };
        let dev = self.layout.data_addr(data_addr);
        let side = self.layout.side_addr(data_addr);
        let ciphertext = self.nvm_read(dev)?;
        let side_block = self.nvm_read_free(side)?;
        let sealed = anubis_crypto::SealedBlock {
            ciphertext,
            ecc: side_block.word(0),
            mac: side_block.word(1),
        };
        let new_ctr = IvCounter::split(new_major, 0);
        let plaintext = if old.major() == 0 && old.minor(line) == 0 {
            // Zero-state line: plaintext is zero by convention.
            Block::zeroed()
        } else {
            let old_ctr = IvCounter::split(old.major(), old.minor(line) as u64);
            self.cost.hash_ops += 1;
            match self.codec.probe(dev, old_ctr, &sealed) {
                Some(pt) => pt,
                None => {
                    // Already re-encrypted (recovery redoing the boundary
                    // line): verify it opens under the new counter.
                    self.cost.hash_ops += 1;
                    match self.codec.probe(dev, new_ctr, &sealed) {
                        Some(_) => return Ok(()),
                        None => {
                            return Err(MemError::Crypto(anubis_crypto::CryptoError::EccMismatch))
                        }
                    }
                }
            }
        };
        self.stage_sealed(dev, side, new_ctr, plaintext);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn validate(&self, addr: DataAddr) -> Result<(), MemError> {
        if addr.index() < self.layout.data_blocks() {
            Ok(())
        } else {
            Err(MemError::OutOfRange {
                addr,
                capacity_blocks: self.layout.data_blocks(),
            })
        }
    }

    fn begin_op(&mut self) {
        self.cost = OpCost::zero();
        self.pending.clear();
        self.seal_jobs.clear();
        self.seal_slots.clear();
    }

    /// Body of one logical write: counter maintenance, overflow-driven
    /// page re-encryption, the (deferred) data seal and the tree update.
    /// The caller owns `begin_op`, the final `commit` and the cost
    /// recording, so scalar `write` and grouped `write_batch` share it.
    fn write_inner(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError> {
        let (leaf, line) = self.layout.counter_of(addr);
        self.ensure_counter(leaf)?;
        let leaf_addr = self.layout.node_addr(leaf);

        // Track *before* any mutation so AGIT-Plus has the shadow entry
        // committed (or staged in the same group) ahead of the change.
        self.counter_cache.mark_dirty(leaf_addr);
        self.track_counter_if_first_mod(leaf);

        // Minor-counter overflow → crash-safe page re-encryption.
        let would_overflow = {
            let entry = self.counter_cache.peek(leaf_addr).expect("ensured");
            entry.ctr.minor(line) == MINOR_MAX
        };
        if would_overflow {
            self.commit()?; // don't mix the tracking entry into reenc groups
            self.reencrypt_page(leaf)?;
        }

        // Increment the counter.
        let (iv, persist_now) = {
            let entry = self.counter_cache.peek_mut(leaf_addr).expect("resident");
            let outcome = entry.ctr.increment(line);
            debug_assert_eq!(outcome, anubis_crypto::CounterIncrement::Minor);
            entry.since_persist = entry.since_persist.saturating_add(1);
            let persist =
                self.scheme.uses_stop_loss() && entry.since_persist >= self.config.stop_loss;
            if persist {
                entry.since_persist = 0;
            }
            (
                IvCounter::split(entry.ctr.major(), entry.ctr.minor(line) as u64),
                persist,
            )
        };
        self.counter_cache.mark_dirty(leaf_addr);
        if persist_now {
            let block = self
                .counter_cache
                .peek(leaf_addr)
                .expect("resident")
                .ctr
                .to_block();
            self.stage(leaf_addr, block);
            self.counter_cache.mark_clean(leaf_addr);
        }
        if matches!(
            self.scheme,
            BonsaiScheme::StrictPersist | BonsaiScheme::CounterWriteThrough
        ) {
            let block = self
                .counter_cache
                .peek(leaf_addr)
                .expect("resident")
                .ctr
                .to_block();
            self.stage(leaf_addr, block);
            self.counter_cache.mark_clean(leaf_addr);
        }

        // Stage the data seal; the crypto itself is deferred to commit
        // time, where the whole group goes through the batch seal path.
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);
        self.stage_sealed(dev, side_addr, iv, data);

        // Eager tree update up to the on-chip root (lazy defers digest
        // propagation to writeback time).
        if !self.scheme.is_lazy() {
            self.update_path(leaf)?;
        }
        Ok(())
    }
}

impl<B: NvmBackend> MemoryController for BonsaiController<B> {
    type Backend = B;

    fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    fn domain(&self) -> &PersistenceDomain<B> {
        &self.domain
    }

    fn domain_mut(&mut self) -> &mut PersistenceDomain<B> {
        &mut self.domain
    }

    fn read(&mut self, addr: DataAddr) -> Result<Block, MemError> {
        self.validate(addr)?;
        self.begin_op();
        let (leaf, line) = self.layout.counter_of(addr);
        self.ensure_counter(leaf)?;
        let leaf_addr = self.layout.node_addr(leaf);
        let ctr = self.counter_cache.peek(leaf_addr).expect("ensured").ctr;
        let dev = self.layout.data_addr(addr);
        let side_addr = self.layout.side_addr(addr);

        let result = if ctr.major() == 0 && ctr.minor(line) == 0 {
            // Never-written line: must still be in the zero state.
            let stored = self.nvm_read(dev)?;
            let side = self.nvm_read_free(side_addr)?;
            if stored.is_zeroed() && side.is_zeroed() {
                Ok(Block::zeroed())
            } else {
                Err(MemError::Crypto(
                    anubis_crypto::CryptoError::DataMacMismatch,
                ))
            }
        } else {
            let ciphertext = self.nvm_read(dev)?;
            let side = self.nvm_read_free(side_addr)?;
            let sealed = anubis_crypto::SealedBlock {
                ciphertext,
                ecc: side.word(0),
                mac: side.word(1),
            };
            self.cost.hash_ops += 2; // pad + MAC verify
            let iv = IvCounter::split(ctr.major(), ctr.minor(line) as u64);
            match self
                .codec
                .open_correcting_cached(&mut self.mac_cache, dev, iv, &sealed)
            {
                Ok((pt, fixed)) => {
                    self.ecc_corrections += u64::from(fixed);
                    Ok(pt)
                }
                Err(e) => Err(MemError::from(e)),
            }
        };
        let value = result?;
        self.commit()?; // persist any shadow/eviction traffic from fills
        self.totals.record(false, self.cost);
        Ok(value)
    }

    fn write(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError> {
        self.validate(addr)?;
        self.begin_op();
        self.write_inner(addr, data)?;
        self.commit()?;
        self.totals.record(true, self.cost);
        Ok(())
    }

    fn write_batch(&mut self, items: &[(DataAddr, Block)]) -> Result<(), MemError> {
        for (addr, _) in items {
            self.validate(*addr)?;
        }
        self.begin_op();
        for (addr, data) in items {
            self.cost = OpCost::zero();
            self.write_inner(*addr, *data)?;
            // Keep the accumulated group comfortably inside the persist
            // queue: one write stages at most a handful of ops (data +
            // side + counters + eager tree path), so flushing at this
            // watermark never overruns `PREG_CAPACITY`.
            if self.pending.len() >= crate::GROUP_FLUSH_WATERMARK {
                self.commit()?;
            }
            self.totals.record(true, self.cost);
        }
        self.commit()
    }

    fn crash(&mut self) {
        self.domain.power_fail();
        self.counter_cache.invalidate_all();
        self.tree_cache.invalidate_all();
        self.pending.clear();
        self.seal_jobs.clear();
        self.seal_slots.clear();
        // MAC-verification cache is volatile state: it dies with power.
        self.mac_cache.clear();
        // `root` and `reenc_log` are on-chip persistent registers: kept.
    }

    fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        recovery::recover(self, crate::parallel::recovery_lanes())
    }

    fn shutdown_flush(&mut self) -> Result<(), MemError> {
        self.begin_op();
        if self.scheme.is_lazy() {
            return self.lazy_flush();
        }
        // Drain dirty counters.
        let dirty_ctrs: Vec<(BlockAddr, SplitCounterBlock)> = self
            .counter_cache
            .iter_resident()
            .filter(|(_, _, _, dirty)| *dirty)
            .map(|(_, addr, entry, _)| (addr, entry.ctr))
            .collect();
        for (addr, ctr) in dirty_ctrs {
            self.stage(addr, ctr.to_block());
            self.counter_cache.mark_clean(addr);
        }
        // Drain dirty tree nodes.
        let dirty_nodes: Vec<(BlockAddr, Block)> = self
            .tree_cache
            .iter_resident()
            .filter(|(_, _, _, dirty)| *dirty)
            .map(|(_, addr, block, _)| (addr, *block))
            .collect();
        for (addr, block) in dirty_nodes {
            self.stage(addr, block);
            self.tree_cache.mark_clean(addr);
        }
        self.commit()?;
        self.domain.drain_wpq();
        Ok(())
    }

    fn last_cost(&self) -> OpCost {
        self.cost
    }

    fn total_cost(&self) -> &CostAccum {
        &self.totals
    }

    fn reset_costs(&mut self) {
        self.totals.reset();
        self.counter_cache.reset_stats();
        self.tree_cache.reset_stats();
        self.domain.device_mut().reset_stats();
    }

    fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    fn publish_telemetry(&self) {
        Self::publish_telemetry(self);
    }
}

#[cfg(test)]
mod tests;
