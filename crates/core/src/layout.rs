//! Physical memory layout: where data, counters, tree nodes and shadow
//! tables live in the NVM address space.

use crate::config::AnubisConfig;
use anubis_itree::{NodeId, TreeGeometry};
use anubis_nvm::{BlockAddr, Region, RegionAllocator, RemapTable};

/// Index of a 64-byte line within the *data region* — the address space
/// the CPU sees. Newtype so data addresses cannot be confused with device
/// block addresses (which also cover metadata regions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DataAddr(u64);

impl DataAddr {
    /// Creates a data address from a line index.
    pub const fn new(index: u64) -> Self {
        DataAddr(index)
    }

    /// The line index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for DataAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "D{:#x}", self.0)
    }
}

impl From<u64> for DataAddr {
    fn from(v: u64) -> Self {
        DataAddr(v)
    }
}

/// Data lines covered by one split-counter block (one 4 KiB page).
pub const LINES_PER_COUNTER_BLOCK: u64 = 64;

/// Data lines covered by one SGX leaf node.
pub const LINES_PER_SGX_LEAF: u64 = 8;

/// NVM layout for the Bonsai (general-tree) controller family.
///
/// Regions, in order: `data`, `side` (per-line ECC+MAC words, physically
/// co-located with data on a real DIMM — see DESIGN.md), `counters`
/// (split-counter blocks, the tree leaves), `tree` (interior nodes),
/// `sct` (Shadow Counter Table), `smt` (Shadow Merkle-tree Table),
/// `spare` (bad-block quarantine pool) and `qtable` (the persisted remap
/// table).
#[derive(Clone, Debug)]
pub struct BonsaiLayout {
    data: Region,
    side: Region,
    counters: Region,
    tree: Region,
    sct: Region,
    smt: Region,
    spare: Region,
    qtable: Region,
    geometry: TreeGeometry,
    total_blocks: u64,
    regions: RegionAllocator,
}

impl BonsaiLayout {
    /// Computes the layout for a configuration. `sct_slots`/`smt_slots`
    /// are the shadow-table lengths (= cache slot counts).
    pub fn new(config: &AnubisConfig, sct_slots: u64, smt_slots: u64) -> Self {
        let n_data = config.data_blocks().max(LINES_PER_COUNTER_BLOCK);
        let n_ctr = n_data.div_ceil(LINES_PER_COUNTER_BLOCK);
        let geometry = TreeGeometry::new(n_ctr, 8);
        let mut alloc = RegionAllocator::new();
        let data = alloc.alloc("data", n_data);
        let side = alloc.alloc("side", n_data);
        let counters = alloc.alloc("counters", n_ctr);
        let tree = alloc.alloc("tree", geometry.interior_blocks().max(1));
        let sct = alloc.alloc("sct", sct_slots);
        let smt = alloc.alloc("smt", smt_slots);
        let n_spare = config.spare_blocks.max(1);
        let spare = alloc.alloc("spare", n_spare);
        // Sized for the table's full capacity: remapped entries plus an
        // equal budget of in-place retirements (see RemapTable::capacity).
        let qtable = alloc.alloc("qtable", RemapTable::blocks_for(2 * n_spare));
        let total_blocks = alloc.total_blocks();
        BonsaiLayout {
            data,
            side,
            counters,
            tree,
            sct,
            smt,
            spare,
            qtable,
            geometry,
            total_blocks,
            regions: alloc,
        }
    }

    /// Total device size needed, in bytes.
    pub fn device_bytes(&self) -> u64 {
        self.total_blocks * 64
    }

    /// The region map for device statistics attribution.
    pub fn regions(&self) -> RegionAllocator {
        self.regions.clone()
    }

    /// The integrity-tree shape (leaves = counter blocks).
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Number of data lines.
    pub fn data_blocks(&self) -> u64 {
        self.data.len()
    }

    /// Device address of a data line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (callers validate first).
    pub fn data_addr(&self, addr: DataAddr) -> BlockAddr {
        self.data.nth(addr.index())
    }

    /// Device address of a data line's side block (ECC + MAC words).
    pub fn side_addr(&self, addr: DataAddr) -> BlockAddr {
        self.side.nth(addr.index())
    }

    /// The counter block (tree leaf) covering a data line, and the line's
    /// slot within it.
    pub fn counter_of(&self, addr: DataAddr) -> (NodeId, usize) {
        let leaf = addr.index() / LINES_PER_COUNTER_BLOCK;
        let slot = (addr.index() % LINES_PER_COUNTER_BLOCK) as usize;
        (NodeId::new(0, leaf), slot)
    }

    /// The data line covered by counter leaf `leaf` at minor slot `slot`.
    pub fn line_of(&self, leaf: u64, slot: usize) -> Option<DataAddr> {
        let idx = leaf * LINES_PER_COUNTER_BLOCK + slot as u64;
        (idx < self.data.len()).then_some(DataAddr::new(idx))
    }

    /// Device address of any tree node: leaves map into the counter
    /// region, interior nodes into the tree region.
    pub fn node_addr(&self, node: NodeId) -> BlockAddr {
        if node.level == 0 {
            self.counters.nth(node.index)
        } else {
            self.tree.nth(self.geometry.interior_offset(node))
        }
    }

    /// Inverse of [`BonsaiLayout::node_addr`] for metadata addresses.
    pub fn node_of_addr(&self, addr: BlockAddr) -> Option<NodeId> {
        if let Some(off) = self.counters.offset_of(addr) {
            Some(NodeId::new(0, off))
        } else {
            self.tree
                .offset_of(addr)
                .filter(|&off| off < self.geometry.interior_blocks())
                .map(|off| self.geometry.locate_interior(off))
        }
    }

    /// Device address of SCT slot `i`.
    pub fn sct_slot(&self, i: u64) -> BlockAddr {
        self.sct.nth(i)
    }

    /// Device address of SMT slot `i`.
    pub fn smt_slot(&self, i: u64) -> BlockAddr {
        self.smt.nth(i)
    }

    /// Number of SCT slots.
    pub fn sct_slots(&self) -> u64 {
        self.sct.len()
    }

    /// Number of SMT slots.
    pub fn smt_slots(&self) -> u64 {
        self.smt.len()
    }

    /// The quarantine spare pool: device addresses reserved for remapping
    /// retired blocks.
    pub fn spare_pool(&self) -> Vec<BlockAddr> {
        (0..self.spare.len()).map(|i| self.spare.nth(i)).collect()
    }

    /// Device address of the `i`-th block of the persisted remap table.
    pub fn qtable_addr(&self, i: u64) -> BlockAddr {
        self.qtable.nth(i)
    }

    /// Capacity of the remap-table region, in blocks.
    pub fn qtable_blocks(&self) -> u64 {
        self.qtable.len()
    }
}

/// NVM layout for the SGX-style controller family.
///
/// Regions: `data`, `side`, `leaves` (SGX counter leaves, 8 lines each),
/// `tree` (interior SGX nodes, excluding the on-chip top node), `st`
/// (the ASIT Shadow Table), `spare` (bad-block quarantine pool) and
/// `qtable` (the persisted remap table).
#[derive(Clone, Debug)]
pub struct SgxLayout {
    data: Region,
    side: Region,
    leaves: Region,
    tree: Region,
    st: Region,
    spare: Region,
    qtable: Region,
    geometry: TreeGeometry,
    total_blocks: u64,
    regions: RegionAllocator,
}

impl SgxLayout {
    /// Computes the layout; `st_slots` is the Shadow Table length
    /// (= combined metadata-cache slot count).
    pub fn new(config: &AnubisConfig, st_slots: u64) -> Self {
        let n_data = config.data_blocks().max(LINES_PER_SGX_LEAF);
        let n_leaves = n_data.div_ceil(LINES_PER_SGX_LEAF);
        let geometry = TreeGeometry::new(n_leaves, 8);
        let mut alloc = RegionAllocator::new();
        let data = alloc.alloc("data", n_data);
        let side = alloc.alloc("side", n_data);
        let leaves = alloc.alloc("leaves", n_leaves);
        // The top node lives on-chip; it has no NVM home.
        let interior_wo_top = geometry.interior_blocks().saturating_sub(1);
        let tree = alloc.alloc("tree", interior_wo_top.max(1));
        let st = alloc.alloc("st", st_slots);
        let n_spare = config.spare_blocks.max(1);
        let spare = alloc.alloc("spare", n_spare);
        let qtable = alloc.alloc("qtable", RemapTable::blocks_for(2 * n_spare));
        let total_blocks = alloc.total_blocks();
        SgxLayout {
            data,
            side,
            leaves,
            tree,
            st,
            spare,
            qtable,
            geometry,
            total_blocks,
            regions: alloc,
        }
    }

    /// Total device size needed, in bytes.
    pub fn device_bytes(&self) -> u64 {
        self.total_blocks * 64
    }

    /// The region map for device statistics attribution.
    pub fn regions(&self) -> RegionAllocator {
        self.regions.clone()
    }

    /// The tree shape (leaves = SGX counter leaves).
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    /// Number of data lines.
    pub fn data_blocks(&self) -> u64 {
        self.data.len()
    }

    /// Device address of a data line.
    pub fn data_addr(&self, addr: DataAddr) -> BlockAddr {
        self.data.nth(addr.index())
    }

    /// Device address of a data line's side block.
    pub fn side_addr(&self, addr: DataAddr) -> BlockAddr {
        self.side.nth(addr.index())
    }

    /// The leaf covering a data line, and the line's counter slot in it.
    pub fn leaf_of(&self, addr: DataAddr) -> (NodeId, usize) {
        let leaf = addr.index() / LINES_PER_SGX_LEAF;
        let slot = (addr.index() % LINES_PER_SGX_LEAF) as usize;
        (NodeId::new(0, leaf), slot)
    }

    /// Whether `node` is the on-chip top node (no NVM home).
    pub fn is_on_chip(&self, node: NodeId) -> bool {
        node == self.geometry.top()
    }

    /// Device address of a tree node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the on-chip top node.
    pub fn node_addr(&self, node: NodeId) -> BlockAddr {
        assert!(
            !self.is_on_chip(node),
            "the top node lives on-chip, not in NVM"
        );
        if node.level == 0 {
            self.leaves.nth(node.index)
        } else {
            self.tree.nth(self.geometry.interior_offset(node))
        }
    }

    /// Inverse of [`SgxLayout::node_addr`] for metadata addresses.
    pub fn node_of_addr(&self, addr: BlockAddr) -> Option<NodeId> {
        if let Some(off) = self.leaves.offset_of(addr) {
            Some(NodeId::new(0, off))
        } else {
            self.tree
                .offset_of(addr)
                .filter(|&off| off + 1 < self.geometry.interior_blocks().max(1) + 1)
                .map(|off| self.geometry.locate_interior(off))
                .filter(|n| !self.is_on_chip(*n))
        }
    }

    /// Device address of ST slot `i`.
    pub fn st_slot(&self, i: u64) -> BlockAddr {
        self.st.nth(i)
    }

    /// Number of ST slots.
    pub fn st_slots(&self) -> u64 {
        self.st.len()
    }

    /// The quarantine spare pool: device addresses reserved for remapping
    /// retired blocks.
    pub fn spare_pool(&self) -> Vec<BlockAddr> {
        (0..self.spare.len()).map(|i| self.spare.nth(i)).collect()
    }

    /// Device address of the `i`-th block of the persisted remap table.
    pub fn qtable_addr(&self, i: u64) -> BlockAddr {
        self.qtable.nth(i)
    }

    /// Capacity of the remap-table region, in blocks.
    pub fn qtable_blocks(&self) -> u64 {
        self.qtable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnubisConfig {
        AnubisConfig::small_test()
    }

    #[test]
    fn bonsai_regions_cover_everything_disjointly() {
        let l = BonsaiLayout::new(&cfg(), 64, 64);
        // 1 MiB data = 16384 lines, 256 counter blocks; 64 quarantine
        // spares plus 1 + ceil(128/4) = 33 remap-table blocks (the table
        // holds up to 2x the pool: remaps plus in-place retirements).
        assert_eq!(l.data_blocks(), 16384);
        assert_eq!(l.geometry().num_leaves(), 256);
        assert_eq!(l.spare_pool().len(), 64);
        assert_eq!(l.qtable_blocks(), RemapTable::blocks_for(128));
        assert_eq!(
            l.device_bytes() / 64,
            16384 + 16384 + 256 + l.geometry().interior_blocks() + 128 + 64 + 33
        );
    }

    #[test]
    fn quarantine_regions_are_disjoint_from_metadata() {
        let b = BonsaiLayout::new(&cfg(), 64, 64);
        let spares = b.spare_pool();
        assert!(spares.iter().all(|a| b.node_of_addr(*a).is_none()));
        assert!(b.node_of_addr(b.qtable_addr(0)).is_none());
        let s = SgxLayout::new(&cfg(), 128);
        let spares = s.spare_pool();
        assert!(spares.iter().all(|a| s.node_of_addr(*a).is_none()));
        assert!(s.node_of_addr(s.qtable_addr(0)).is_none());
    }

    #[test]
    fn bonsai_counter_mapping() {
        let l = BonsaiLayout::new(&cfg(), 64, 64);
        let (leaf, slot) = l.counter_of(DataAddr::new(130));
        assert_eq!(leaf, NodeId::new(0, 2));
        assert_eq!(slot, 2);
        assert_eq!(l.line_of(2, 2), Some(DataAddr::new(130)));
        assert_eq!(l.line_of(10_000, 0), None);
    }

    #[test]
    fn bonsai_node_addr_roundtrip() {
        let l = BonsaiLayout::new(&cfg(), 64, 64);
        let g = l.geometry().clone();
        for level in 0..g.num_levels() {
            for index in [0, g.nodes_at(level) - 1] {
                let node = NodeId::new(level, index);
                assert_eq!(l.node_of_addr(l.node_addr(node)), Some(node));
            }
        }
        // Data addresses are not metadata.
        assert_eq!(l.node_of_addr(l.data_addr(DataAddr::new(0))), None);
    }

    #[test]
    fn bonsai_shadow_slots() {
        let l = BonsaiLayout::new(&cfg(), 10, 20);
        assert_eq!(l.sct_slots(), 10);
        assert_eq!(l.smt_slots(), 20);
        assert_ne!(l.sct_slot(0), l.smt_slot(0));
    }

    #[test]
    fn sgx_leaf_mapping() {
        let l = SgxLayout::new(&cfg(), 128);
        let (leaf, slot) = l.leaf_of(DataAddr::new(17));
        assert_eq!(leaf, NodeId::new(0, 2));
        assert_eq!(slot, 1);
        assert_eq!(l.geometry().num_leaves(), 16384 / 8);
    }

    #[test]
    fn sgx_top_is_on_chip() {
        let l = SgxLayout::new(&cfg(), 128);
        let top = l.geometry().top();
        assert!(l.is_on_chip(top));
        // All non-top nodes have NVM addresses that roundtrip.
        let g = l.geometry().clone();
        for level in 0..g.num_levels() {
            for index in [0, g.nodes_at(level) - 1] {
                let node = NodeId::new(level, index);
                if node == top {
                    continue;
                }
                assert_eq!(l.node_of_addr(l.node_addr(node)), Some(node), "node {node}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "on-chip")]
    fn sgx_top_addr_panics() {
        let l = SgxLayout::new(&cfg(), 128);
        let _ = l.node_addr(l.geometry().top());
    }

    #[test]
    fn data_addr_display_and_from() {
        let a: DataAddr = 255u64.into();
        assert_eq!(a.index(), 255);
        assert_eq!(a.to_string(), "D0xff");
    }

    #[test]
    fn tiny_capacity_clamps() {
        let c = cfg().with_capacity(64); // one line
        let l = BonsaiLayout::new(&c, 1, 1);
        assert_eq!(l.data_blocks(), 64, "clamped to one full counter block");
        let s = SgxLayout::new(&c, 1);
        assert_eq!(s.data_blocks(), 8, "clamped to one full leaf");
    }
}
