//! Per-operation cost accounting for the timing simulator.

use core::ops::AddAssign;

/// The memory-controller work performed by one data-path operation.
///
/// The timing simulator (`anubis-sim`) converts these into nanoseconds
/// with the PCM latency model; the controllers just count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// NVM block reads on the critical path (data, counters, tree nodes).
    pub nvm_reads: u32,
    /// NVM block writes issued (data, metadata, shadow entries). Writes
    /// are posted through the WPQ, so they cost queue occupancy rather
    /// than stall time — unless the queue backs up.
    pub nvm_writes: u32,
    /// Hash/MAC/pad computations on the critical path (digest checks,
    /// MAC seals, ECC probes).
    pub hash_ops: u32,
    /// Hash computations *off* the critical path (e.g. the ASIT
    /// shadow-protection tree, maintained by a dedicated engine while the
    /// data write retires). Counted for energy/efficiency reporting; the
    /// timing model does not stall on them.
    pub bg_hash_ops: u32,
}

impl OpCost {
    /// A zero cost.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total NVM block transfers.
    pub fn nvm_ops(&self) -> u32 {
        self.nvm_reads + self.nvm_writes
    }
}

impl AddAssign for OpCost {
    fn add_assign(&mut self, rhs: Self) {
        self.nvm_reads += rhs.nvm_reads;
        self.nvm_writes += rhs.nvm_writes;
        self.hash_ops += rhs.hash_ops;
        self.bg_hash_ops += rhs.bg_hash_ops;
    }
}

/// Cumulative costs split by operation kind, for overhead reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostAccum {
    /// Number of data reads served.
    pub reads: u64,
    /// Number of data writes served.
    pub writes: u64,
    /// Total NVM reads across all ops.
    pub nvm_reads: u64,
    /// Total NVM writes across all ops.
    pub nvm_writes: u64,
    /// Total critical-path hash ops across all ops.
    pub hash_ops: u64,
    /// Total background hash ops across all ops.
    pub bg_hash_ops: u64,
}

impl CostAccum {
    /// Records one completed data op.
    pub fn record(&mut self, is_write: bool, cost: OpCost) {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.nvm_reads += cost.nvm_reads as u64;
        self.nvm_writes += cost.nvm_writes as u64;
        self.hash_ops += cost.hash_ops as u64;
        self.bg_hash_ops += cost.bg_hash_ops as u64;
    }

    /// NVM writes per data write — the endurance/write-amplification
    /// metric from the paper's §6.2 discussion.
    pub fn writes_per_data_write(&self) -> Option<f64> {
        (self.writes > 0).then(|| self.nvm_writes as f64 / self.writes as f64)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = OpCost {
            nvm_reads: 1,
            nvm_writes: 2,
            hash_ops: 3,
            bg_hash_ops: 1,
        };
        a += OpCost {
            nvm_reads: 10,
            nvm_writes: 20,
            hash_ops: 30,
            bg_hash_ops: 4,
        };
        assert_eq!(
            a,
            OpCost {
                nvm_reads: 11,
                nvm_writes: 22,
                hash_ops: 33,
                bg_hash_ops: 5
            }
        );
        assert_eq!(a.nvm_ops(), 33);
        assert_eq!(OpCost::zero(), OpCost::default());
    }

    #[test]
    fn accum_records_and_ratios() {
        let mut acc = CostAccum::default();
        assert_eq!(acc.writes_per_data_write(), None);
        acc.record(
            true,
            OpCost {
                nvm_reads: 0,
                nvm_writes: 3,
                hash_ops: 1,
                bg_hash_ops: 0,
            },
        );
        acc.record(
            true,
            OpCost {
                nvm_reads: 0,
                nvm_writes: 1,
                hash_ops: 1,
                bg_hash_ops: 2,
            },
        );
        acc.record(
            false,
            OpCost {
                nvm_reads: 2,
                nvm_writes: 0,
                hash_ops: 1,
                bg_hash_ops: 0,
            },
        );
        assert_eq!(acc.reads, 1);
        assert_eq!(acc.writes, 2);
        assert_eq!(acc.nvm_writes, 4);
        assert_eq!(acc.writes_per_data_write(), Some(2.0));
        assert_eq!(acc.bg_hash_ops, 2);
        acc.reset();
        assert_eq!(acc, CostAccum::default());
    }
}
