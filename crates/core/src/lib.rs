//! # Anubis — secure, recoverable non-volatile memory controllers
//!
//! A from-scratch reproduction of **"Anubis: Ultra-Low Overhead and
//! Recovery Time for Secure Non-Volatile Memories"** (Zubair & Awad,
//! ISCA 2019).
//!
//! The crate implements the paper's memory-controller schemes over the
//! substrates in the sibling crates (`anubis-nvm`, `anubis-crypto`,
//! `anubis-cache`, `anubis-itree`):
//!
//! | Scheme | Tree | Recovery | Paper section |
//! |--------|------|----------|---------------|
//! | [`BonsaiScheme::WriteBack`] | general 8-ary | unrecoverable after metadata loss | §6.1 ① |
//! | [`BonsaiScheme::StrictPersist`] | general 8-ary | trivial (everything persisted) | §6.1 ② |
//! | [`BonsaiScheme::Osiris`] | general 8-ary | O(memory): fix every counter, rebuild whole tree | §6.1 ③ |
//! | [`BonsaiScheme::AgitRead`] | general 8-ary | O(cache): shadow-tracked blocks only | §4.2.1 |
//! | [`BonsaiScheme::AgitPlus`] | general 8-ary | O(cache): tracked on first modification | §4.2.2 |
//! | [`SgxScheme::WriteBack`] | SGX-style | **impossible** (lost interior nodes) | §6.2 ① |
//! | [`SgxScheme::StrictPersist`] | SGX-style | trivial | §6.2 ② |
//! | [`SgxScheme::Osiris`] | SGX-style | **impossible** (leaves don't determine tree) | §6.2 ③ |
//! | [`SgxScheme::Asit`] | SGX-style | O(cache): integrity-protected shadow copy | §4.3 |
//!
//! Both controller families expose the same surface: [`MemoryController`]
//! with `read`/`write`/`crash`/`recover`, per-operation [`OpCost`]s for
//! the timing simulator, and honest integrity verification (tampering
//! with NVM contents is *detected*, not assumed away).
//!
//! # Quickstart
//!
//! ```
//! use anubis::{AnubisConfig, BonsaiController, BonsaiScheme, DataAddr, MemoryController};
//! use anubis_nvm::Block;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = AnubisConfig::small_test();
//! let mut mem = BonsaiController::new(BonsaiScheme::AgitPlus, &config);
//! mem.write(DataAddr::new(7), Block::filled(0xAB))?;
//! mem.crash();                       // power failure: caches lost
//! let report = mem.recover()?;       // Algorithm 1, O(cache) work
//! assert_eq!(mem.read(DataAddr::new(7))?, Block::filled(0xAB));
//! assert!(report.estimated_ns() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod error;
mod layout;
mod shadow;
mod shadow_tree;

pub mod bonsai;
pub mod parallel;
pub mod recovery;
pub mod sgx;
pub mod supervisor;

pub use bonsai::{BonsaiController, BonsaiScheme};
pub use config::AnubisConfig;
pub use cost::{CostAccum, OpCost};
pub use error::{freshness_hint, MemError, RecoveryError};
pub use layout::{BonsaiLayout, DataAddr, SgxLayout, LINES_PER_COUNTER_BLOCK};
pub use recovery::RecoveryReport;
pub use sgx::{SgxController, SgxScheme};
pub use shadow::{ShadowAddrEntry, StEntry};
pub use supervisor::{RecoveryOutcome, RepairSummary, Supervised, SupervisedRecovery, Supervisor};

pub use anubis_telemetry as telemetry;

use anubis_nvm::{Block, NvmBackend, PersistenceDomain};

/// Pending-op watermark at which [`MemoryController::write_batch`]
/// overrides flush their accumulated commit group. One write stages at
/// most a handful of ops (data + side + counters + an eager tree path),
/// so flushing here keeps the group safely inside the persist queue's
/// `PREG_CAPACITY` of 64.
pub(crate) const GROUP_FLUSH_WATERMARK: usize = 24;

/// The uniform controller surface shared by every scheme.
///
/// A controller owns the NVM persistence domain, the metadata caches and
/// the on-chip persistent registers (tree root, shadow root). The timing
/// simulator drives it op by op, reading [`MemoryController::last_cost`]
/// after each call; crash-recovery experiments call
/// [`MemoryController::crash`] at arbitrary points and then
/// [`MemoryController::recover`].
///
/// Controllers are generic over the [`NvmBackend`] their persistence
/// domain stores blocks in: the default in-memory map for simulation, or
/// a durable file-backed store (see `anubis_nvm::FileBackend`) for
/// restart-survivable images. [`MemoryController::Backend`] names that
/// choice so harnesses stay generic over both.
pub trait MemoryController {
    /// The storage backend of the controller's persistence domain.
    type Backend: NvmBackend;

    /// Scheme name for reports (e.g. `"agit-plus"`).
    fn scheme_name(&self) -> &'static str;

    /// Reads and decrypts the data line at `addr`, verifying counters
    /// against the integrity tree and data against its MAC.
    ///
    /// # Errors
    ///
    /// [`MemError::Integrity`] on any verification failure;
    /// [`MemError::Nvm`] on device errors (including powered-off).
    fn read(&mut self, addr: DataAddr) -> Result<Block, MemError>;

    /// Encrypts and persists `data` at `addr`, updating counters and the
    /// integrity tree according to the scheme.
    ///
    /// # Errors
    ///
    /// Same classes as [`MemoryController::read`].
    fn write(&mut self, addr: DataAddr, data: Block) -> Result<(), MemError>;

    /// Writes a group of `(addr, data)` lines.
    ///
    /// The default is the scalar loop. Controllers override this to share
    /// commit groups across several writes and to push every data seal of
    /// a group through the batch crypto path in one pass. Overrides must
    /// leave the device in a state bit-identical to the scalar loop (the
    /// `write_batch_equiv` suite holds them to it).
    ///
    /// # Errors
    ///
    /// Same classes as [`MemoryController::write`]; on error, writes
    /// before the failing item may already be persisted (matching the
    /// scalar loop).
    fn write_batch(&mut self, items: &[(DataAddr, Block)]) -> Result<(), MemError> {
        for (addr, data) in items {
            self.write(*addr, *data)?;
        }
        Ok(())
    }

    /// Simulates a power failure: every volatile structure (caches,
    /// shadow-tree interior, write buffers outside the WPQ) is lost; the
    /// device, the WPQ (via ADR) and on-chip persistent registers survive.
    fn crash(&mut self);

    /// Restores power and runs the scheme's recovery algorithm.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] if the scheme cannot restore a verified state
    /// (e.g. write-back after losing dirty metadata, or detected
    /// tampering).
    fn recover(&mut self) -> Result<RecoveryReport, RecoveryError>;

    /// Gracefully drains all dirty metadata to NVM (orderly shutdown).
    ///
    /// # Errors
    ///
    /// [`MemError::Nvm`] on device errors.
    fn shutdown_flush(&mut self) -> Result<(), MemError>;

    /// Read-only access to the controller's persistence domain — used by
    /// fault-injection campaigns to inspect the lifetime persist-write
    /// counter and by experiments to read device statistics.
    fn domain(&self) -> &PersistenceDomain<Self::Backend>;

    /// Mutable access to the persistence domain — the hook through which
    /// fault-injection campaigns arm [`anubis_nvm::FaultPlan`]s and
    /// tamper experiments corrupt NVM contents.
    fn domain_mut(&mut self) -> &mut PersistenceDomain<Self::Backend>;

    /// Cost of the most recent `read`/`write` call, for the timing model.
    fn last_cost(&self) -> OpCost;

    /// Cumulative costs since construction or the last reset.
    fn total_cost(&self) -> &CostAccum;

    /// Resets cumulative cost counters (e.g. after cache warm-up).
    fn reset_costs(&mut self);

    /// Redirects the controller's observability output to `t` (controllers
    /// default to the process-global registry). Schemes without
    /// instrumentation may ignore the handle.
    fn set_telemetry(&mut self, t: telemetry::Telemetry) {
        let _ = t;
    }

    /// Publishes the controller's current counters (device stats, cache
    /// hit rates, WPQ occupancy, ECC corrections) into its telemetry
    /// registry. Cheap no-op when telemetry is disabled; called by the
    /// simulator at epoch boundaries and end-of-run.
    fn publish_telemetry(&self) {}
}
