//! Error types for the memory controllers and recovery.

use crate::layout::DataAddr;
use anubis_crypto::{CounterError, CryptoError};
use anubis_itree::NodeId;
use anubis_nvm::{BlockAddr, NvmError};
use core::fmt;

/// Errors from the run-time data path.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// Device/persistence-domain failure.
    Nvm(NvmError),
    /// Cryptographic verification failure (ECC or data MAC).
    Crypto(CryptoError),
    /// Integrity-tree verification failure.
    Integrity {
        /// The node whose digest/MAC did not verify.
        node: NodeId,
        /// What the node was being checked against.
        against: IntegrityWitness,
    },
    /// Data address beyond the configured capacity.
    OutOfRange {
        /// Offending data address.
        addr: DataAddr,
        /// Data capacity in blocks.
        capacity_blocks: u64,
    },
}

/// What a failed integrity check was verified against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityWitness {
    /// The parent node's stored digest (Bonsai).
    ParentDigest,
    /// The on-chip root register (Bonsai top node).
    RootRegister,
    /// The node's own MAC against its parent counter (SGX-style).
    NodeMac,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Nvm(e) => write!(f, "nvm error: {e}"),
            MemError::Crypto(e) => write!(f, "crypto error: {e}"),
            MemError::Integrity { node, against } => {
                let w = match against {
                    IntegrityWitness::ParentDigest => "parent digest",
                    IntegrityWitness::RootRegister => "root register",
                    IntegrityWitness::NodeMac => "node MAC",
                };
                write!(f, "integrity violation at {node} (checked against {w})")
            }
            MemError::OutOfRange {
                addr,
                capacity_blocks,
            } => {
                write!(
                    f,
                    "data address {addr} beyond capacity of {capacity_blocks} blocks"
                )
            }
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Nvm(e) => Some(e),
            MemError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl MemError {
    /// True when the op was cut short by a (simulated) power loss: the
    /// write is unacknowledged and the machine must crash and recover
    /// before touching the controller again.
    pub fn is_power_loss(&self) -> bool {
        matches!(self, MemError::Nvm(NvmError::PowerLost))
    }

    /// True when the error is a *detected* integrity/corruption failure —
    /// the typed outcomes the fault-injection harness accepts in place of
    /// correct data (never silent wrong data).
    pub fn is_detected_corruption(&self) -> bool {
        matches!(self, MemError::Crypto(_) | MemError::Integrity { .. })
    }
}

impl From<NvmError> for MemError {
    fn from(e: NvmError) -> Self {
        MemError::Nvm(e)
    }
}

impl From<CryptoError> for MemError {
    fn from(e: CryptoError) -> Self {
        MemError::Crypto(e)
    }
}

/// Errors from post-crash recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The rebuilt tree's root does not match the on-chip register
    /// (Algorithm 1 line 20 / write-back loss detection).
    RootMismatch,
    /// The Shadow Table failed its own integrity tree check
    /// (Algorithm 2 line 2): tampered or corrupted shadow region.
    ShadowTableTampered,
    /// A recovered SGX node failed MAC verification against its parent
    /// counter (Algorithm 2 line 10).
    NodeMacMismatch {
        /// Address of the failing node.
        addr: BlockAddr,
    },
    /// Osiris could not find any counter within the stop-loss window that
    /// passes the ECC sanity check for a data line.
    CounterNotRecovered {
        /// Address of the unrecoverable data line.
        addr: BlockAddr,
    },
    /// The scheme fundamentally cannot recover this tree style (e.g.
    /// Osiris with an SGX tree whose interior nodes were lost).
    SchemeCannotRecover {
        /// Explanation of the structural limitation.
        reason: &'static str,
    },
    /// Replaying Osiris trials hit the stop-loss / minor-overflow
    /// boundary for a counter block — the stale block read from NVM is
    /// corrupted (a correct persist schedule never loses that many
    /// updates).
    StopLossExceeded {
        /// The counter block (leaf index) being repaired.
        leaf: u64,
        /// The underlying counter-arithmetic error.
        source: CounterError,
    },
    /// A verified shadow table tracked more distinct nodes than the
    /// metadata cache can hold — impossible for a shadow table written by
    /// this controller, so it indicates NVM corruption that slipped past
    /// (or colluded with) the shadow-root check. Surfaced as an error
    /// rather than a panic so a torn write can never abort recovery.
    ShadowCapacityExceeded {
        /// Address of the node that did not fit.
        addr: BlockAddr,
    },
    /// A data line failed read verification during the recovery
    /// supervisor's scrub pass (after the fast path already succeeded or
    /// was repaired) — the hint handed to targeted repair.
    ScrubFailed {
        /// The failing data line.
        addr: DataAddr,
    },
    /// A reopened device image carried a corrupted persistent structure
    /// (e.g. a quarantine table whose header or payload failed to parse).
    /// Non-structural: the controller proceeds with a fresh copy of the
    /// structure and the supervisor feeds this hint into targeted repair
    /// (rung 3) to rebuild whatever the corrupt structure protected.
    CorruptImage {
        /// Which persistent structure failed to parse.
        what: &'static str,
    },
    /// The reopened image is *older* than the sealed freshness anchor:
    /// durable state was rolled back to an earlier internally-consistent
    /// version between death and restart. Unlike corruption this state
    /// verifies perfectly — only the anchor proves it is stale — so the
    /// supervisor refuses recovery outright rather than repairing into
    /// serving it.
    RollbackDetected {
        /// Epoch the sealed anchor proves the device reached.
        anchored_epoch: u64,
        /// Older epoch the reopened image carries.
        image_epoch: u64,
    },
    /// The freshness anchor itself is missing or corrupt, so the image's
    /// epoch cannot be verified. Conservative refusal under the strict
    /// policy; resolvable only by the explicit operator override
    /// (`ANUBIS_ANCHOR_OVERRIDE=1`), never by silent default-epoch
    /// acceptance.
    FreshnessAnchorViolation {
        /// What happened to the anchor (`"anchor missing"` /
        /// `"anchor corrupt"`).
        what: &'static str,
        /// The unverifiable epoch the image carries.
        image_epoch: u64,
    },
    /// Device failure during recovery.
    Nvm(NvmError),
}

impl RecoveryError {
    /// True for freshness refusals: errors that mean the durable state
    /// must not be served *even though it may verify perfectly* — the
    /// supervisor returns them immediately instead of escalating, and
    /// they are distinct from `Degraded` outcomes (which preserve
    /// committed data) and from structural errors (which mean the scheme
    /// cannot recover).
    pub fn is_refusal(&self) -> bool {
        matches!(
            self,
            RecoveryError::RollbackDetected { .. } | RecoveryError::FreshnessAnchorViolation { .. }
        )
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::RootMismatch => {
                write!(
                    f,
                    "rebuilt tree root does not match the on-chip root register"
                )
            }
            RecoveryError::ShadowTableTampered => {
                write!(f, "shadow table failed SHADOW_TREE_ROOT verification")
            }
            RecoveryError::NodeMacMismatch { addr } => {
                write!(f, "recovered node at {addr} failed MAC verification")
            }
            RecoveryError::CounterNotRecovered { addr } => {
                write!(
                    f,
                    "no counter candidate passed the ECC check for data line {addr}"
                )
            }
            RecoveryError::SchemeCannotRecover { reason } => {
                write!(f, "scheme cannot recover: {reason}")
            }
            RecoveryError::StopLossExceeded { leaf, source } => {
                write!(f, "counter block {leaf} is corrupted: {source}")
            }
            RecoveryError::ShadowCapacityExceeded { addr } => {
                write!(
                    f,
                    "shadow table tracks more nodes than the metadata cache holds \
                     (node at {addr} does not fit)"
                )
            }
            RecoveryError::ScrubFailed { addr } => {
                write!(f, "data line {addr} failed verification during scrub")
            }
            RecoveryError::CorruptImage { what } => {
                write!(f, "reopened device image has a corrupt {what}")
            }
            RecoveryError::RollbackDetected {
                anchored_epoch,
                image_epoch,
            } => {
                write!(
                    f,
                    "rollback detected: image at epoch {image_epoch} is older than the \
                     sealed freshness anchor (epoch {anchored_epoch})"
                )
            }
            RecoveryError::FreshnessAnchorViolation { what, image_epoch } => {
                write!(
                    f,
                    "freshness {what}: image epoch {image_epoch} cannot be verified \
                     against the sealed anchor"
                )
            }
            RecoveryError::Nvm(e) => write!(f, "nvm error during recovery: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for RecoveryError {
    fn from(e: NvmError) -> Self {
        RecoveryError::Nvm(e)
    }
}

/// Maps a backend's freshness-anchor verdict to the recovery refusal it
/// implies, if any. `Untracked`, `Fresh`, and explicitly `Overridden`
/// states carry no hint.
pub fn freshness_hint(f: anubis_nvm::Freshness) -> Option<RecoveryError> {
    match f {
        anubis_nvm::Freshness::RolledBack {
            anchored_epoch,
            image_epoch,
        } => Some(RecoveryError::RollbackDetected {
            anchored_epoch,
            image_epoch,
        }),
        anubis_nvm::Freshness::TailForged {
            anchored_epoch: _,
            image_epoch,
        } => Some(RecoveryError::FreshnessAnchorViolation {
            what: "tail forged (frames appended beyond the one-barrier crash window)",
            image_epoch,
        }),
        anubis_nvm::Freshness::AnchorMissing { image_epoch } => {
            Some(RecoveryError::FreshnessAnchorViolation {
                what: "anchor missing",
                image_epoch,
            })
        }
        anubis_nvm::Freshness::AnchorCorrupt { image_epoch } => {
            Some(RecoveryError::FreshnessAnchorViolation {
                what: "anchor corrupt",
                image_epoch,
            })
        }
        anubis_nvm::Freshness::Untracked
        | anubis_nvm::Freshness::Fresh { .. }
        | anubis_nvm::Freshness::Overridden { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = MemError::Integrity {
            node: NodeId::new(2, 5),
            against: IntegrityWitness::RootRegister,
        };
        assert!(e.to_string().contains("L2#5"));
        assert!(RecoveryError::RootMismatch.to_string().contains("root"));
        let e = RecoveryError::NodeMacMismatch {
            addr: BlockAddr::new(0x40),
        };
        assert!(e.to_string().contains("0x40"));
    }

    #[test]
    fn conversions() {
        let n = NvmError::PoweredOff;
        assert_eq!(MemError::from(n.clone()), MemError::Nvm(n.clone()));
        assert_eq!(RecoveryError::from(n.clone()), RecoveryError::Nvm(n));
        let c = CryptoError::EccMismatch;
        assert_eq!(MemError::from(c.clone()), MemError::Crypto(c));
    }
}
